#!/usr/bin/env python3
"""Record a workload trace once, replay it against two systems.

Statistically identical workloads are usually enough for comparisons;
byte-identical ones are better.  This records 200 YCSB operations to a
trace file, replays that exact sequence against RFP-Jakiro and
ServerReply-KV, and checks the GET results agree operation for
operation — different transports, same semantics, zero nuisance
variables.

Run:  python examples/trace_replay.py
"""

import io
import os
import tempfile

from repro.baselines import build_serverreply_kv
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv import Jakiro
from repro.sim import Simulator
from repro.workloads import (
    WorkloadSpec,
    YcsbWorkload,
    read_trace,
    record_workload,
)


def replay(trace_path, build_client):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    client = build_client(sim, cluster)
    results = []

    def body(sim):
        for op in read_trace(trace_path):
            if op.is_get:
                results.append((yield from client.get(op.key)))
            else:
                yield from client.put(op.key, op.value)

    sim.process(body(sim))
    sim.run()
    return results, sim.now


def main() -> None:
    spec = WorkloadSpec(records=256, get_fraction=0.7, seed=11)
    with tempfile.NamedTemporaryFile(suffix=".trace", delete=False) as handle:
        trace_path = handle.name
    try:
        count = record_workload(YcsbWorkload(spec), "recorder", 200, trace_path)
        size = os.path.getsize(trace_path)
        print(f"recorded {count} operations ({size} bytes) to a trace\n")

        jakiro_results, jakiro_time = replay(
            trace_path,
            lambda sim, cluster: Jakiro(sim, cluster, threads=2).connect(
                cluster.client_machines[0]
            ),
        )
        reply_results, reply_time = replay(
            trace_path,
            lambda sim, cluster: build_serverreply_kv(
                sim, cluster, threads=2
            ).connect(cluster.client_machines[0]),
        )
        gets = len(jakiro_results)
        agree = sum(1 for a, b in zip(jakiro_results, reply_results) if a == b)
        print(f"GETs replayed:        {gets}")
        print(f"results agreeing:     {agree}/{gets}")
        print(f"RFP simulated time:   {jakiro_time:8.1f} us")
        print(f"reply simulated time: {reply_time:8.1f} us")
        assert agree == gets, "transports disagreed on a GET!"
        print("\nByte-identical inputs, byte-identical outputs — only the")
        print("simulated clock differs.  Note the direction: one unloaded")
        print("client is *slower* over RFP (an RDMA Read costs more than an")
        print("unloaded pushed reply — the paper's Fig. 13 15th-percentile")
        print("observation).  RFP's win is aggregate throughput under load,")
        print("where the server's out-bound pipeline is the bottleneck;")
        print("see examples/paradigm_comparison.py for that side.")
    finally:
        os.unlink(trace_path)


if __name__ == "__main__":
    main()
