#!/usr/bin/env python3
"""Port RFP to different hardware and watch the parameters adapt.

The paper stresses that R and F depend on the NIC (§3.2): rerun the
selection pipeline on three hardware generations — ConnectX-2 (20 Gbps),
the paper's ConnectX-3 (40 Gbps), and ConnectX-4 (100 Gbps) — and on a
hypothetical NIC with *no* in/out-bound asymmetry, where the whole
paradigm stops paying.

Run:  python examples/custom_hardware.py
"""

from repro.bench.extensions import SYMMETRIC_CLUSTER
from repro.bench.harness import Scale, run_kv
from repro.core import derive_size_bounds
from repro.hw import CONNECTX2, CONNECTX3, CONNECTX4, pipeline_service_time
from repro.hw.specs import ClusterSpec, MachineSpec
from repro.workloads import WorkloadSpec

SIZES = [32, 64, 128, 192, 256, 384, 512, 640, 768, 1024, 1536, 2048, 4096, 8192]


def model_curve(nic):
    """The NIC's in-bound IOPS-vs-size curve from the pipeline model."""
    return [
        (
            size,
            1.0
            / pipeline_service_time(
                nic.inbound_base_us,
                size,
                nic.effective_bandwidth_bytes_per_us,
                nic.softmax_order,
            ),
        )
        for size in SIZES
    ]


def main() -> None:
    print("1) The useful fetch range [L, H] per NIC generation:\n")
    print(f"{'nic':28s} {'asym':>6s} {'L':>6s} {'H':>6s}")
    for nic in (CONNECTX2, CONNECTX3, CONNECTX4):
        curve = model_curve(nic)
        lower, upper = derive_size_bounds(
            [s for s, _ in curve], [r for _, r in curve]
        )
        asym = nic.inbound_peak_mops / nic.outbound_peak_mops
        print(f"{nic.name:28s} {asym:6.1f} {lower:6d} {upper:6d}")
    print(
        "\n   Faster links push H upward: with more bandwidth, larger"
        "\n   fetches stay IOPS-limited longer."
    )

    print("\n2) Jakiro vs ServerReply across hardware (95% GET, 32 B):\n")
    scale = Scale.fast()
    spec = WorkloadSpec(records=scale.records)
    print(f"{'cluster':28s} {'jakiro':>8s} {'reply':>8s} {'gain':>6s}")
    for label, nic in (
        ("ConnectX-2 / 20 Gbps", CONNECTX2),
        ("ConnectX-3 / 40 Gbps", CONNECTX3),
        ("ConnectX-4 / 100 Gbps", CONNECTX4),
    ):
        cluster = ClusterSpec(machine=MachineSpec(nic=nic), machines=8)
        jakiro = run_kv("jakiro", spec, scale=scale, cluster_spec=cluster)
        reply = run_kv("serverreply", spec, scale=scale, cluster_spec=cluster)
        gain = jakiro.throughput_mops / reply.throughput_mops
        print(
            f"{label:28s} {jakiro.throughput_mops:8.2f} "
            f"{reply.throughput_mops:8.2f} {gain:5.1f}x"
        )

    jakiro = run_kv("jakiro", spec, scale=scale, cluster_spec=SYMMETRIC_CLUSTER)
    reply = run_kv("serverreply", spec, scale=scale, cluster_spec=SYMMETRIC_CLUSTER)
    gain = jakiro.throughput_mops / reply.throughput_mops
    print(
        f"{'hypothetical symmetric NIC':28s} {jakiro.throughput_mops:8.2f} "
        f"{reply.throughput_mops:8.2f} {gain:5.1f}x"
    )
    print(
        "\n   The gain tracks the asymmetry: on symmetric hardware remote"
        "\n   fetching is pure overhead — the paradigm exists because of"
        "\n   Observation 1."
    )


if __name__ == "__main__":
    main()
