#!/usr/bin/env python3
"""The paper's headline comparison: RFP vs server-reply vs server-bypass.

Runs the same read-intensive KV workload against Jakiro (RFP),
ServerReply, RDMA-Memcached, and Pilaf (server-bypass), then prints the
Figure 1 story: why each paradigm lands where it does.

Run:  python examples/paradigm_comparison.py
"""

from repro.bench import Scale, run_kv
from repro.workloads import WorkloadSpec

SYSTEMS = [
    ("jakiro", 6, "RFP: server processes, client fetches (in-bound only)"),
    ("serverreply", 6, "server-reply: capped by out-bound RDMA (~2.1 MOPS)"),
    ("memcached", 16, "RDMA-Memcached: CPU-bound shared-structure server"),
    ("pilaf", 4, "server-bypass: pays ~3 one-sided reads per GET"),
]


def main() -> None:
    spec = WorkloadSpec(records=8192, get_fraction=0.95)
    scale = Scale.fast()
    print(f"workload: {spec.describe()}\n")
    print(f"{'system':14s} {'MOPS':>6s} {'mean us':>8s} {'p99 us':>8s}  why")
    baseline = None
    for name, threads, why in SYSTEMS:
        result = run_kv(name, spec, server_threads=threads, scale=scale)
        if name == "jakiro":
            baseline = result.throughput_mops
        print(
            f"{name:14s} {result.throughput_mops:6.2f} "
            f"{result.mean_latency():8.2f} {result.percentile_latency(99):8.2f}"
            f"  {why}"
        )
    print(
        "\nThe paper's claim: RFP improves throughput by 1.6x-4x over both "
        "prior paradigms."
    )
    print(f"Here Jakiro sustains {baseline:.2f} MOPS on the same workload.")


if __name__ == "__main__":
    main()
