#!/usr/bin/env python3
"""Reproduce the §3.2 parameter-selection procedure end to end.

1. measure the IOPS-vs-size curve of the NIC (the Fig. 5 benchmark),
2. derive the useful fetch range [L, H] from it,
3. measure the Fig. 9 throughput-vs-process-time crossover and derive
   the retry bound N,
4. enumerate (R, F) candidates against sampled result sizes (Eq. 2).

The paper's testbed lands on N=5, L=256, H=1024, and (R=5, F=256) for
32-byte values — this run re-derives all of them from the simulator.

Run:  python examples/parameter_tuning.py
"""

from repro.bench.calibration import (
    inbound_iops_curve,
    measured_fetch_round_trip_us,
    model_inbound_iops,
)
from repro.bench.figures import run_fig9
from repro.bench.harness import Scale
from repro.core import ResultSampler, derive_retry_bound, derive_size_bounds
from repro.core.params import select_parameters
from repro.workloads import UniformValues, WorkloadSpec, YcsbWorkload


def main() -> None:
    scale = Scale.fast()

    print("1) IOPS-vs-size sweep (Fig. 5 microbenchmark):")
    sizes = [32, 64, 128, 192, 256, 384, 512, 640, 768, 1024, 2048, 4096]
    curve = inbound_iops_curve(sizes, window_us=1500.0)
    for size, mops in curve:
        print(f"   {size:5d} B  {mops:6.2f} MOPS")
    lower, upper = derive_size_bounds([s for s, _ in curve], [m for _, m in curve])
    print(f"   => useful fetch range [L, H] = [{lower}, {upper}]  (paper: [256, 1024])")

    print("\n2) Remote fetching vs server-reply (Fig. 9 microbenchmark)...")
    fig9 = run_fig9(scale)
    round_trip = measured_fetch_round_trip_us()
    retry_bound, crossover = derive_retry_bound(
        [row[0] for row in fig9.rows],
        [row[1] for row in fig9.rows],
        [row[2] for row in fig9.rows],
        fetch_round_trip_us=round_trip,
    )
    print(f"   crossover at P ≈ {crossover} us, fetch RTT {round_trip:.2f} us")
    print(f"   => retry upper bound N = {retry_bound}  (paper: 5)")

    print("\n3) Pre-run sampling of result sizes (32-byte-value workload):")
    sampler = ResultSampler(seed=7)
    workload = YcsbWorkload(WorkloadSpec(records=1024))
    sampler.observe_many(size + 9 for size in workload.result_sizes(2000))
    print(f"   sampled {sampler.seen} results, p50 = {sampler.percentile(50):.0f} B")

    choice = select_parameters(
        sampler.sizes(), model_inbound_iops(), retry_bound, lower, upper
    )
    print(f"   => chosen (R, F) = ({choice.retry_bound}, {choice.fetch_size})"
          "  (paper: R=5, F=256)")

    print("\n4) Same procedure for the mixed 32B-8KB workload:")
    mixed = YcsbWorkload(WorkloadSpec(records=1024, value_sizes=UniformValues()))
    mixed_sampler = ResultSampler(seed=8)
    mixed_sampler.observe_many(size + 9 for size in mixed.result_sizes(2000))
    mixed_choice = select_parameters(
        mixed_sampler.sizes(), model_inbound_iops(), retry_bound, lower, upper
    )
    print(f"   => chosen (R, F) = ({mixed_choice.retry_bound}, "
          f"{mixed_choice.fetch_size})")
    print("   (the paper quotes F=640 here; Eq. 2 as published favours the\n"
          "    smaller F — see EXPERIMENTS.md for the discussion)")


if __name__ == "__main__":
    main()
