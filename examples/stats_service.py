#!/usr/bin/env python3
"""The porting-cost claim, demonstrated with a second application.

A metrics/statistics RPC service (the intro's "applications with simple
statistic operations") is written once against the RPC stub interface.
Switching it from legacy server-reply to RFP is the one-word change
``transport="rfp"`` — no data-structure redesign, no application edits —
and buys ~2.5× the throughput.  (Contrast with server-bypass, where the
same port would mean designing a remotely-probeable lock-free structure
for the aggregation state.)

Run:  python examples/stats_service.py
"""

from repro.apps import StatsService
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator, ThroughputMeter

WINDOW_US = 2500.0


def run_service(transport: str) -> tuple:
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    # The only transport-aware line in the whole application:
    service = StatsService(sim, cluster, threads=4, transport=transport)

    meter = ThroughputMeter(window_start=WINDOW_US * 0.25, window_end=WINDOW_US)
    metrics = [f"api.endpoint.{i}.latency".encode() for i in range(32)]

    def workload(sim, client, offset):
        index = offset
        while True:
            yield from client.record(metrics[index % 32], float(index % 100))
            meter.record(sim.now)
            index += 1

    clients = [service.connect(cluster.client_machines[i % 7]) for i in range(35)]
    for index, client in enumerate(clients):
        sim.process(workload(sim, client, index * 13))
    sim.run(until=WINDOW_US)

    # One final query through a fresh client, to show reads work too.
    sim2_probe = {}

    def probe(sim):
        sim2_probe["snap"] = yield from clients[0].query(metrics[0])

    sim.process(probe(sim))
    sim.run(until=WINDOW_US + 50.0)
    return meter.mops(elapsed=WINDOW_US * 0.75), sim2_probe["snap"]


def main() -> None:
    print("Identical application, two transports:\n")
    results = {}
    for transport in ("serverreply", "rfp"):
        mops, snapshot = run_service(transport)
        results[transport] = mops
        print(
            f"  transport={transport:12s} {mops:5.2f} MOPS of RECORDs   "
            f"(sample metric: n={snapshot.count}, mean={snapshot.mean:.1f})"
        )
    gain = results["rfp"] / results["serverreply"]
    print(
        f"\nPorting cost: one constructor argument."
        f"\nThroughput gain: {gain:.1f}x — the server stopped issuing"
        f"\nout-bound replies and its NIC now serves only in-bound reads."
    )


if __name__ == "__main__":
    main()
