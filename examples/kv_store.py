#!/usr/bin/env python3
"""Jakiro in action: the paper's in-memory KV store under YCSB load.

Implements the Fig. 8(a) flow — the client-side GET is literally
``client_send`` + ``client_recv`` under the RPC stubs — and measures a
read-intensive uniform workload against the store, reporting throughput,
latency, and the retry behaviour of Table 3.

Run:  python examples/kv_store.py
"""

import numpy as np

from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv import Jakiro
from repro.sim import Simulator, ThroughputMeter
from repro.workloads import WorkloadSpec, YcsbWorkload

WINDOW_US = 3000.0
CLIENT_THREADS = 35


def main() -> None:
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    jakiro = Jakiro(sim, cluster, threads=6)

    workload = YcsbWorkload(WorkloadSpec(records=8192, get_fraction=0.95))
    jakiro.preload(workload.dataset())
    print(f"preloaded {jakiro.store.size()} pairs: {workload.spec.describe()}")

    warmup = WINDOW_US * 0.25
    meter = ThroughputMeter(window_start=warmup, window_end=WINDOW_US)
    clients = []

    def driver(sim, client, operations):
        for op in operations:
            if op.is_get:
                yield from client.get(op.key)
            else:
                yield from client.put(op.key, op.value)
            meter.record(sim.now)

    for index in range(CLIENT_THREADS):
        client = jakiro.connect(cluster.client_machines[index % 7])
        clients.append(client)
        sim.process(driver(sim, client, workload.operations(f"c{index}")))
    sim.run(until=WINDOW_US)

    latencies = np.concatenate([c.latency_samples() for c in clients])
    attempts = np.concatenate([c.fetch_attempt_samples() for c in clients])
    print(f"\nthroughput:       {meter.mops(elapsed=WINDOW_US - warmup):.2f} MOPS "
          "(paper: ~5.5)")
    print(f"mean latency:     {np.mean(latencies):.2f} us (paper: 5.78)")
    print(f"99th percentile:  {np.percentile(latencies, 99):.2f} us (paper: <7)")
    print(f"retries N>1:      {100 * np.mean(attempts > 1):.3f}% of requests "
          "(paper: ~0.1%)")
    print(f"largest N:        {int(attempts.max())} (paper: 4-9)")
    print(f"store hit rate:   "
          f"{jakiro.store.counters.hits.value / max(1, jakiro.store.counters.gets.value):.3f}")


if __name__ == "__main__":
    main()
