#!/usr/bin/env python3
"""Watch the hybrid fetch/server-reply switch react to server load.

A single client talks to an RFP server whose request process time is
stepped up (overload) and back down (recovery).  The trace shows:

- fast phase: pure remote fetching, zero server replies,
- overload: after two consecutive slow calls (>R failed retries), the
  client publishes its mode flag and the server starts pushing replies,
- recovery: the response-time header field drops below the threshold and
  the client switches back to remote fetching.

Run:  python examples/mode_switching.py
"""

from repro.core import Mode, RfpClient, RfpServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator

PHASES = [
    ("fast", 0.5, 8),
    ("overloaded", 20.0, 8),
    ("recovered", 0.5, 8),
]


def main() -> None:
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    load = {"process_us": 0.5}

    def handler(payload, context):
        return payload, load["process_us"]

    server = RfpServer(sim, cluster, cluster.server, handler, threads=2)
    client = RfpClient(sim, cluster.client_machines[0], server)

    def session(sim):
        for phase, process_us, calls in PHASES:
            load["process_us"] = process_us
            print(f"\n--- {phase}: server process time {process_us} us ---")
            for index in range(calls):
                before = client.mode
                began = sim.now
                yield from client.call(f"{phase}-{index}".encode())
                latency = sim.now - began
                marker = ""
                if client.mode is not before:
                    marker = f"   <-- switched {before.name} -> {client.mode.name}"
                print(
                    f"t={sim.now:9.2f}  call {index}: {latency:6.2f} us  "
                    f"mode={client.mode.name}{marker}"
                )

    sim.process(session(sim))
    sim.run()

    print(f"\nswitches to server-reply:  {client.policy.switches_to_reply}")
    print(f"switches back to fetching: {client.policy.switches_to_fetch}")
    print(f"replies pushed by server:  {server.stats.replies_sent.value}")
    assert client.mode is Mode.REMOTE_FETCH, "should have recovered"


if __name__ == "__main__":
    main()
