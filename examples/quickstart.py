#!/usr/bin/env python3
"""Quickstart: an RFP echo RPC in ~40 lines.

Builds the paper's 8-machine testbed in the simulator, starts an RFP
server whose handler upper-cases its input, connects one client, and
runs a few calls — printing what happened at each step.

Run:  python examples/quickstart.py
"""

from repro.core import RfpClient, RfpServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def shout_handler(payload: bytes, context) -> tuple:
    """The application: returns (response, process_time_us)."""
    return payload.upper(), 0.5


def main() -> None:
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = RfpServer(
        sim, cluster, cluster.server, shout_handler, threads=2, name="echo"
    )
    client = RfpClient(sim, cluster.client_machines[0], server)

    def session(sim):
        for message in (b"hello rfp", b"remote fetching paradigm", b"eurosys 2017"):
            response = yield from client.call(message)
            print(f"t={sim.now:8.2f} us  {message!r} -> {response!r}")

    sim.process(session(sim))
    sim.run()

    stats = client.stats
    print(f"\ncalls:            {stats.calls.value}")
    print(f"mean latency:     {stats.latency_us.mean():.2f} us")
    print(f"fetch attempts:   {stats.fetch_attempts.mean():.2f} per call")
    print(f"server replies:   {server.stats.replies_sent.value} "
          "(0 = the server NIC only ever served in-bound reads)")


if __name__ == "__main__":
    main()
