"""Fig. 19 — throughput vs GET percentage under Zipf(0.99) skew."""

from conftest import column

from repro.bench.figures import run_fig19


def test_fig19_skewed(regenerate):
    result = regenerate(run_fig19)
    jakiro = column(result, "jakiro_mops")
    reply = column(result, "serverreply_mops")
    memcached = column(result, "memcached_mops")

    # EREW partitioning tolerates the skew: Jakiro keeps its peak.
    assert min(jakiro) > 0.85 * max(jakiro)
    assert 4.7 <= max(jakiro) <= 6.1
    # ServerReply unchanged (still out-bound capped).
    assert 1.9 <= max(reply) <= 2.4
    # Memcached *benefits* from locality at 95% GET: close to the
    # out-bound ceiling (paper: ~2.1), far above its uniform 1.3.
    assert memcached[0] > 1.6
    # Jakiro still beats both under every mix.
    for j, r, m in zip(jakiro, reply, memcached):
        assert j > 1.5 * r
        assert j > 1.5 * m
