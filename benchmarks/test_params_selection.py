"""§3.2 — the parameter-selection procedure rediscovers the paper's
constants from the simulated hardware."""

from repro.bench.figures import run_params


def test_parameter_selection(regenerate):
    result = regenerate(run_params)
    values = {row[0]: row[1] for row in result.rows}
    # N = 5 (paper: 5 at the P ≈ 7 µs crossover; we land at 7-9 µs).
    assert 4 <= values["N (retry upper bound)"] <= 6
    assert 6.0 <= values["crossover process time (us)"] <= 10.0
    # The useful fetch range matches the paper's [256, 1024].
    assert values["L (bytes)"] == 256
    assert values["H (bytes)"] == 1024
    # 32-byte values select R=N, F=256 — exactly the paper's choice.
    assert values["chosen R, 32B values"] == values["N (retry upper bound)"]
    assert values["chosen F, 32B values"] == 256
