"""Cluster layer — throughput through a single-shard crash (RF=2).

The runner itself audits the hard claims and raises on any breach
(zero lost acknowledged writes, exactly one failover, protocol and
NIC-silence invariants on every shard); the assertions here pin the
throughput envelope on top.
"""

from conftest import column

from repro.bench.cluster_runs import run_ext_cluster_failover


def test_cluster_failover(regenerate):
    result = regenerate(run_ext_cluster_failover)
    phases = column(result, "phase")
    fraction = column(result, "fraction_of_pre")
    lost = column(result, "lost_acked_writes")
    acked = column(result, "acked_keys")
    assert phases == ["pre", "dip", "post"]
    # Killing one of three shards mid-window keeps aggregate throughput
    # >= 60% of pre-failure during the detection/takeover dip...
    assert fraction[1] >= 0.6
    # ...and the rebalanced cluster recovers to >= 90% of pre-failure.
    assert fraction[2] >= 0.9
    # Primary-backup writes survive the crash: nothing acked was lost.
    assert lost == [0, 0, 0]
    assert acked[0] > 0
