"""Ablation — remove the in/out-bound asymmetry and RFP's premise dies."""

from repro.bench.extensions import run_ablation_symmetric


def test_ablation_symmetric_nic(regenerate):
    result = regenerate(run_ablation_symmetric)
    by_nic = {row[0]: row for row in result.rows}
    asymmetric = next(v for k, v in by_nic.items() if "ConnectX" in k)
    symmetric = next(v for k, v in by_nic.items() if "symmetric" in k)
    # On the real NIC, remote fetching wins big...
    assert asymmetric[3] > 2.0
    # ...and on a symmetric NIC it buys nothing (here it even loses:
    # the client pays reads without any server-side windfall).
    assert symmetric[3] < 1.1
    # Server-reply itself is indifferent: its ceiling is the out-bound
    # pipeline either way.
    assert abs(symmetric[2] - asymmetric[2]) / asymmetric[2] < 0.10
