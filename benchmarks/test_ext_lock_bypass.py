"""Extension — §5: DrTM-style CAS-locked bypass vs Jakiro."""

from repro.bench.extensions import run_ext_lock_bypass


def test_lock_bypass_amplification_and_contention(regenerate):
    result = regenerate(run_ext_lock_bypass)
    by_dist = {row[0]: row for row in result.rows}
    uniform = by_dist["uniform"]
    zipfian = by_dist["zipfian"]
    # Even uncontended, 3+ verbs per op keep the locked store well below
    # Jakiro.
    assert uniform[1] > 1.8 * uniform[2]
    # Skew murders the locked design (hot-key CAS storms)...
    assert zipfian[2] < 0.7 * uniform[2]
    assert zipfian[3] > 0.5  # real CAS retries per op
    # ...while EREW Jakiro does not care.
    assert zipfian[1] > 0.9 * uniform[1]
