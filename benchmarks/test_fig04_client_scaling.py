"""Fig. 4 — server in-bound IOPS vs number of client threads."""

from conftest import column

from repro.bench.figures import run_fig4


def test_fig4_client_scaling(regenerate):
    result = regenerate(run_fig4)
    clients = column(result, "client_threads")
    inbound = column(result, "inbound_mops")
    peak = max(inbound)
    peak_at = clients[inbound.index(peak)]
    # Peak ~11.26 MOPS reached in the 21-49 thread range.
    assert 10.3 <= peak <= 12.2
    assert 14 <= peak_at <= 49
    # Mild sag past the peak (client-side issuing contention), not a cliff.
    assert inbound[-1] < peak
    assert inbound[-1] > 0.6 * peak
    # Far too few clients cannot saturate the NIC.
    assert inbound[0] < 0.75 * peak
