"""Fig. 15 — client CPU utilization vs request process time."""

from conftest import column

from repro.bench.figures import run_fig15


def test_fig15_client_cpu(regenerate):
    result = regenerate(run_fig15)
    times = column(result, "process_time_us")
    cpu = column(result, "client_cpu_percent")
    in_reply = column(result, "clients_in_reply_mode")

    # Remote fetching spins: ~100% CPU at small process times.
    assert cpu[0] > 90.0
    # After the switch the client blocks: below 30% (the paper's bound).
    assert cpu[-1] < 30.0
    # The drop coincides with clients actually switching mode.
    assert in_reply[0] == 0
    assert in_reply[-1] > 30  # nearly all 35 clients switched
    # Utilization is monotone non-increasing with process time.
    assert all(a >= b - 1e-6 for a, b in zip(cpu, cpu[1:]))
