"""Fig. 20 — latency CDF under the skewed read-intensive workload."""

from repro.bench.figures import run_fig20


def test_fig20_skewed_latency_cdf(regenerate):
    result = regenerate(run_fig20)
    mean_row = result.rows[-1]
    assert mean_row[0] == "mean"
    _, jakiro_mean, reply_mean, memcached_mean = mean_row
    # Jakiro performs best in average latency under skew too (§4.4.3).
    assert jakiro_mean < reply_mean
    assert jakiro_mean < memcached_mean
    assert 4.5 <= jakiro_mean <= 9.0
