"""Regenerates ext-txn-structures: the twice-built queue's crossover.

The shape under test is Table 1 applied to a data structure: the
one-sided build starts at ~3 remote round-trips per op (FAA + payload
+ ready, header + CAS + slot) and *grows* as racing consumers lose CAS
claims, while the RFP-RPC build is pinned at exactly 1 request per op
at every contention level — so past the paper's ~2-3 round-trip
crossover the RPC queue wins throughput outright.  The transactional
side of every condition must come back spotless: zero torn key groups,
zero lost acked writes, zero aborts leaking effects.
"""

from conftest import column

from repro.bench.cluster_runs import run_ext_txn_structures


def test_one_sided_queue_loses_past_the_crossover(regenerate):
    result = regenerate(run_ext_txn_structures)
    rows = {
        (structure, clients): (cost, mops, retries)
        for structure, clients, cost, mops, retries in zip(
            column(result, "structure"),
            column(result, "queue_clients"),
            column(result, "remote_ops_per_op"),
            column(result, "queue_mops"),
            column(result, "cas_retries"),
        )
    }
    counts = sorted({clients for _, clients in rows})
    assert len(counts) >= 3, "need a contention sweep to show a trend"

    # The RPC build's cost is structural: 1 request per op, flat (the
    # exact integer identity is enforced by run_ext_txn_structures).
    for clients in counts:
        cost, _, retries = rows[("rfp", clients)]
        assert abs(cost - 1.0) < 1e-9
        assert retries == 0

    # The one-sided build starts near its uncontended 3 verbs/op and
    # amplifies under contention (lost CAS races, header re-reads).
    costs = [rows[("one-sided", clients)][0] for clients in counts]
    assert 2.5 <= costs[0] <= 3.5, "uncontended cost should be ~3 verbs/op"
    assert costs == sorted(costs), f"amplification must not shrink: {costs}"
    assert costs[-1] > 3.0, "contention never pushed past the crossover"
    assert rows[("one-sided", counts[-1])][2] > 0, "no CAS race ever lost?"

    # Past the crossover the RPC queue wins outright — and by a margin
    # that grows with contention.
    ratios = [
        rows[("rfp", clients)][1] / rows[("one-sided", clients)][1]
        for clients in counts
    ]
    assert ratios[-1] > 1.5, f"RFP should win clearly at peak contention: {ratios}"
    assert ratios[-1] > ratios[0], f"RFP's edge should grow with contention: {ratios}"


def test_transactions_commit_cleanly_under_queue_load(regenerate):
    result = regenerate(run_ext_txn_structures)
    assert all(value == 0 for value in column(result, "torn_groups"))
    assert all(value == 0 for value in column(result, "lost_acked_writes"))
    assert all(value > 0 for value in column(result, "txn_committed"))
