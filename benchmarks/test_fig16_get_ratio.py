"""Fig. 16 — throughput vs GET percentage, uniform workload."""

from conftest import column

from repro.bench.figures import run_fig16


def test_fig16_get_ratio(regenerate):
    result = regenerate(run_fig16)
    jakiro = column(result, "jakiro_mops")
    reply = column(result, "serverreply_mops")
    memcached = column(result, "memcached_mops")

    # Jakiro holds its peak regardless of the GET/PUT mix.
    assert min(jakiro) > 0.9 * max(jakiro)
    assert 4.9 <= max(jakiro) <= 6.1
    # ServerReply pinned at its out-bound ceiling for every mix.
    assert min(reply) > 0.9 * max(reply)
    assert 1.9 <= max(reply) <= 2.4
    # Memcached degrades as writes grow (global-lock serialization).
    assert memcached == sorted(memcached, reverse=True)
    # The paper's 14x headline at 95% PUT (generous band).
    assert jakiro[-1] / memcached[-1] > 8.0
