"""Table 3 — remote-fetch retry counts under the four workloads."""

from conftest import column

from repro.bench.figures import run_tab3


def test_tab3_retry_distribution(regenerate):
    result = regenerate(run_tab3)
    slow_percent = column(result, "percent_N_gt_1")
    largest = column(result, "largest_N")
    # The overwhelming majority of fetches succeed on the first read:
    # N>1 stays in the sub-percent regime for every workload (paper:
    # 0.09-0.13%).
    for value in slow_percent:
        assert value < 2.0
    # There are *some* retries (the heavy-tail process times exist)...
    assert max(slow_percent) > 0.0
    # ...and the worst case is a handful of reads, not dozens (paper: 4-9).
    assert 1 <= max(largest) <= 15
