"""Fig. 14 — hybrid switch: throughput vs request process time."""

from conftest import column

from repro.bench.figures import run_fig14


def test_fig14_hybrid_switch(regenerate):
    result = regenerate(run_fig14)
    times = column(result, "process_time_us")
    jakiro = column(result, "jakiro_mops")
    reply = column(result, "serverreply_mops")
    no_switch = column(result, "jakiro_no_switch_mops")

    # Below the crossover Jakiro wins big (paper: 30-320%).
    assert jakiro[0] > 2.0 * reply[0]
    # At the largest process time the hybrid matches server-reply
    # (it *is* server-reply there after switching).
    assert abs(jakiro[-1] - reply[-1]) / reply[-1] < 0.15
    # Jakiro never loses to server-reply at any process time.
    for j, r in zip(jakiro, reply):
        assert j >= 0.95 * r
    # The no-switch ablation tracks the hybrid's throughput closely —
    # the switch is about client CPU (Fig. 15), not throughput.
    for j, n in zip(jakiro, no_switch):
        assert abs(j - n) / max(j, n) < 0.15
