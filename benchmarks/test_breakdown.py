"""Latency decomposition — where each microsecond of Fig. 13 lives."""

from conftest import column

from repro.bench.breakdown import run_breakdown


def test_latency_breakdown(regenerate):
    result = regenerate(run_breakdown)
    times = column(result, "process_time_us")
    send = column(result, "send_us")
    server = column(result, "server_us")
    fetch = column(result, "fetch_us")
    total = column(result, "total_us")
    # Phases tile the total.
    for s, v, f, t in zip(send, server, fetch, total):
        assert abs((s + v + f) - t) / t < 0.02
        assert s > 0 and v > 0 and f > 0
    # As the server gets slower, the server phase absorbs the latency...
    assert server == sorted(server)
    assert server[-1] > 5 * server[0]
    # ...and the NIC phases relax below their saturated values.
    assert send[-1] <= send[0] + 0.5
