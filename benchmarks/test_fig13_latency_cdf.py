"""Fig. 13 — latency CDF of the three systems at peak load (uniform)."""

from conftest import column

from repro.bench.figures import run_fig13


def test_fig13_latency_cdf(regenerate):
    result = regenerate(run_fig13)
    mean_row = result.rows[-1]
    assert mean_row[0] == "mean"
    _, jakiro_mean, reply_mean, memcached_mean = mean_row
    # Ordering: Jakiro < ServerReply < Memcached (paper: 5.78/12.06/14.76).
    assert jakiro_mean < reply_mean < memcached_mean
    # Jakiro mean in the paper's ballpark and ~2x better than ServerReply.
    assert 4.5 <= jakiro_mean <= 8.5
    assert reply_mean > 1.7 * jakiro_mean
    # Jakiro's 99th percentile stays close to its median (short tail).
    p99 = dict(zip(column(result, "percentile"), column(result, "jakiro_us")))[99]
    p50 = dict(zip(column(result, "percentile"), column(result, "jakiro_us")))[50]
    assert p99 < 1.5 * p50
