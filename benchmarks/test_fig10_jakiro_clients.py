"""Fig. 10 — Jakiro throughput vs number of client threads."""

from conftest import column

from repro.bench.figures import run_fig10


def test_fig10_jakiro_client_scaling(regenerate):
    result = regenerate(run_fig10)
    clients = column(result, "client_threads")
    mops = column(result, "jakiro_mops")
    peak = max(mops)
    # Peak ~5.5 MOPS (half the in-bound IOPS: ~2 in-bound ops per call).
    assert 4.9 <= peak <= 6.1
    # Reached by the 21-49 thread range.
    peak_at = clients[mops.index(peak)]
    assert peak_at <= 49
    # Slight decline at 70 threads, not a collapse.
    assert 0.85 * peak <= mops[-1] <= peak
    # 7 threads nowhere near saturation.
    assert mops[0] < 0.65 * peak
