"""Cluster layer — live vnode rebalancing under a pinned Zipf hot-set.

The runner audits the hard claims and raises on any breach (every move
cut over cleanly, zero lost acknowledged writes, donors in-bound-only,
the baseline moved nothing, rebalanced post >= 1.5x baseline post); the
assertions here pin the throughput envelope on top.
"""

from conftest import column

from repro.bench.cluster_runs import run_ext_cluster_rebalance


def test_cluster_rebalance(regenerate):
    result = regenerate(run_ext_cluster_rebalance)
    conditions = column(result, "rebalance")
    phases = column(result, "phase")
    mops = column(result, "mops")
    moved = column(result, "moved_vnodes")
    lost = column(result, "lost_acked_writes")
    assert conditions == ["off"] * 3 + ["on"] * 3
    assert phases == ["pre", "spread", "post"] * 2
    # Identical skewed workloads: both conditions start equally pinned.
    assert abs(mops[0] - mops[3]) / mops[0] < 0.05
    # The baseline never escapes the hot shard's NIC ceiling...
    assert max(mops[0:3]) / min(mops[0:3]) < 1.1
    # ...while the rebalanced run clears 1.5x of it post-spread (the
    # runner enforces the same bar; this pins it in the bench suite).
    assert mops[5] >= 1.5 * mops[2]
    # The moves happened, and only on the rebalance-enabled condition.
    assert moved[0:3] == [0, 0, 0]
    assert moved[3] >= 1
    # Nothing acknowledged was lost under live migration.
    assert lost == [0] * 6
