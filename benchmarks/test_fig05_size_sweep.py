"""Fig. 5 — IOPS of both directions vs payload size."""

from conftest import column

from repro.bench.figures import run_fig5


def test_fig5_size_sweep(regenerate):
    result = regenerate(run_fig5)
    sizes = column(result, "size_bytes")
    inbound = dict(zip(sizes, column(result, "inbound_mops")))
    outbound = dict(zip(sizes, column(result, "outbound_mops")))
    # ~5x asymmetry at small payloads.
    assert inbound[32] / outbound[32] > 4.0
    # In-bound flat to ~256 B (the L bound of §3.2).
    assert inbound[256] > 0.93 * inbound[32]
    # Both monotone non-increasing in size.
    ordered = sorted(sizes)
    assert all(
        inbound[a] >= inbound[b] * 0.999 for a, b in zip(ordered, ordered[1:])
    )
    # Convergence above 2 KB: bandwidth dominates both directions.
    assert abs(inbound[2048] - outbound[2048]) / inbound[2048] < 0.35
    assert abs(inbound[4096] - outbound[4096]) / inbound[4096] < 0.15
