"""Cluster layer — crash, recovery transfer, and ring rejoin (RF=2).

The runner audits the hard claims and raises on any breach (handoff
before the post window, pre-crash ring restored exactly, zero lost
acknowledged writes per final-ring replica, donors in-bound-only through
the transfer, post >= 95% of pre); the assertions here pin the
throughput envelope on top.
"""

from conftest import column

from repro.bench.cluster_runs import run_ext_cluster_rejoin


def test_cluster_rejoin(regenerate):
    result = regenerate(run_ext_cluster_rejoin)
    phases = column(result, "phase")
    fraction = column(result, "fraction_of_pre")
    lost = column(result, "lost_acked_writes")
    acked = column(result, "acked_keys")
    assert phases == ["pre", "dip", "outage", "rejoin", "post"]
    # The detection/takeover dip stays shallow...
    assert fraction[1] >= 0.6
    # ...the two-shard outage holds most of the throughput...
    assert fraction[2] >= 0.8
    # ...the transfer coexists with live load instead of stalling it...
    assert fraction[3] >= 0.8
    # ...and the restored three-shard cluster is within 5% of pre-crash.
    assert fraction[4] >= 0.95
    # Nothing acknowledged was lost anywhere in the cycle.
    assert lost == [0, 0, 0, 0, 0]
    assert acked[0] > 0
