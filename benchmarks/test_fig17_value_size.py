"""Fig. 17 — throughput vs value size (uniform, 95% GET, F=640)."""

from conftest import column

from repro.bench.figures import run_fig17


def test_fig17_value_size(regenerate):
    result = regenerate(run_fig17)
    sizes = column(result, "value_bytes")
    jakiro = column(result, "jakiro_mops")
    reply = column(result, "serverreply_mops")
    memcached = column(result, "memcached_mops")
    fixed = {
        s: (j, r, m)
        for s, j, r, m in zip(sizes, jakiro, reply, memcached)
        if isinstance(s, int)
    }

    # Jakiro wins decisively for small and medium values.
    for size in (32, 512):
        if size in fixed:
            j, r, m = fixed[size]
            assert j > 1.5 * r
            assert j > 1.5 * m
    # The edge narrows but persists through 1-2 KB (the paper's 60% end
    # of the 60-280% band).
    for size in (1024, 2048):
        if size in fixed:
            j, r, m = fixed[size]
            assert j > 1.1 * r
    # At 4 KB+ bandwidth levels the field (paper: comparable at 4096).
    j4, r4, m4 = fixed[4096]
    assert 0.5 * j4 < r4 < 2.0 * j4
    assert 0.5 * j4 < m4 < 2.0 * j4
    # The mixed 32B-8KB row: with a byte-uniform mix the 40 Gbps link is
    # the binding constraint for every system, so Jakiro only ties here
    # (the paper's 3.58 MOPS exceeds the link's byte budget for this mix;
    # see EXPERIMENTS.md).
    mixed = result.rows[-1]
    assert mixed[0] == "32-8192 mix"
    assert mixed[1] > 0.8 * mixed[2]
    assert mixed[1] > 0.8 * mixed[3]
