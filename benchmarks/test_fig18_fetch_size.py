"""Fig. 18 — Jakiro throughput under different fetch sizes F."""

from conftest import column

from repro.bench.figures import run_fig18


def test_fig18_fetch_size(regenerate):
    result = regenerate(run_fig18)
    values = column(result, "value_bytes")
    by_fetch = {
        fetch: column(result, f"F={fetch}") for fetch in (256, 512, 640, 748, 1024)
    }
    by_value = {v: {f: by_fetch[f][i] for f in by_fetch} for i, v in enumerate(values)}

    # For tiny values the smallest F is optimal and bigger fetches only
    # waste pipeline time (the paper: "throughput for smaller value size
    # decreases slightly compared with smaller fetching size").
    tiny = by_value[32]
    assert tiny[256] >= 0.95 * max(tiny.values())
    assert tiny[1024] < tiny[256]
    # For 512 B values, F=256 needs a second read: F=640 clearly wins.
    mid = by_value[512]
    assert mid[640] > 1.10 * mid[256]
    # For values beyond every F (2048 B), all fetch sizes need two reads
    # and land close together.
    big = by_value[2048]
    assert max(big.values()) < 1.4 * min(big.values())
    # F=640 is a good all-round choice for values it covers in one read
    # (response = value + ~9 B of framing, so coverage ends near 624 B).
    for value in values:
        if isinstance(value, int) and value <= 512:
            best = max(by_value[value].values())
            assert by_value[value][640] >= 0.75 * best
