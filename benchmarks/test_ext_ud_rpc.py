"""Extension — §5: HERD-style UC/UD RPC vs the RC paradigms."""

from repro.bench.extensions import run_ext_ud_rpc


def test_ud_rpc_tradeoffs(regenerate):
    result = regenerate(run_ext_ud_rpc)
    rows = {(row[0], row[1]): row for row in result.rows}
    rfp = rows[("rfp (RC)", 0.0)][2]
    reply = rows[("server-reply (RC)", 0.0)][2]
    herd_clean = rows[("herd (UC/UD)", 0.0)][2]
    herd_lossy = rows[("herd (UC/UD)", 0.05)][2]
    # The §5 ordering: UD replies beat RC server-reply, RFP beats both.
    assert herd_clean > 1.5 * reply
    assert rfp > 1.2 * herd_clean
    # Loss is not free: retransmit machinery costs measurable throughput.
    assert herd_lossy < herd_clean
    assert rows[("herd (UC/UD)", 0.05)][3] > 0  # retransmits happened
