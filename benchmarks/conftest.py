"""Shared fixtures for the figure/table regeneration benches.

Each bench file regenerates one paper figure or table at fast scale,
asserts the *shape* the paper reports (who wins, by what factor, where
crossovers fall), and records the wall time via pytest-benchmark.  Run
with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.
"""

import pytest

from repro.bench.harness import Scale
from repro.bench.report import format_result


@pytest.fixture(scope="session")
def scale():
    """Fast measurement scale (windows sized for CI, shapes preserved)."""
    return Scale.fast()


@pytest.fixture()
def regenerate(benchmark, scale):
    """Run one experiment under pytest-benchmark and print its table."""

    def run(runner):
        result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
        print()
        print(format_result(result))
        return result

    return run


def column(result, name):
    """Extract one column of an ExperimentResult as a list."""
    index = result.columns.index(name)
    return [row[index] for row in result.rows]
