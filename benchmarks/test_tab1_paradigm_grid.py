"""Table 1 — the full design-choice grid, measured (incl. the
"meaningless" corner)."""

from repro.bench.figures import run_tab1


def test_tab1_paradigm_grid(regenerate):
    result = regenerate(run_tab1)
    mops = {row[0]: row[4] for row in result.rows}
    # RFP tops the grid.
    assert mops["RFP"] == max(mops.values())
    assert mops["RFP"] > 2.0 * mops["server-reply"]
    # Bypass sits between: it avoids the out-bound cap but pays
    # amplification.
    assert mops["server-reply"] < mops["server-bypass"] < mops["RFP"]
    # The meaningless corner buys nothing over plain server-reply.
    assert mops["meaningless"] <= 1.1 * mops["server-reply"]
