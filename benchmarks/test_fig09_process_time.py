"""Fig. 9 — repeated remote fetching vs server-reply vs process time."""

from conftest import column

from repro.bench.figures import run_fig9


def test_fig9_process_time(regenerate):
    result = regenerate(run_fig9)
    times = column(result, "process_time_us")
    fetch = column(result, "remote_fetch_mops")
    reply = column(result, "server_reply_mops")
    # Fetching dominates at small process times (>2x at P=1).
    assert fetch[0] > 2.0 * reply[0]
    # The gain shrinks below 10% somewhere in the paper's 7-10 us range.
    crossover = next(
        (t for t, f, r in zip(times, fetch, reply) if f <= 1.10 * r), None
    )
    assert crossover is not None
    assert 5 <= crossover <= 10
    # Server-reply starts at its out-bound ceiling (~2 MOPS).
    assert 1.7 <= reply[0] <= 2.3
    # Fetch throughput decays monotonically with process time.
    assert fetch == sorted(fetch, reverse=True)
