"""Cluster layer — aggregate throughput vs shard count (1 -> 6)."""

from conftest import column

from repro.bench.cluster_runs import run_ext_cluster_scaling


def test_cluster_scaling(regenerate):
    result = regenerate(run_ext_cluster_scaling)
    shards = column(result, "shards")
    aggregate = column(result, "aggregate_mops")
    assert shards == [1, 3, 6]
    # One shard pins at the familiar ~5.5 MOPS per-NIC in-bound ceiling.
    assert 4.9 <= aggregate[0] <= 6.1
    # Three shards better than double it.
    assert aggregate[1] > 2.0 * aggregate[0]
    # Six shards do not regress, but the fixed 60-thread client
    # population is now the limit, not the server NICs: well short of a
    # linear 2x over three shards.
    assert aggregate[1] <= aggregate[2] < 1.5 * aggregate[1]
