"""Fig. 11 — Jakiro vs Pilaf, uniform 50% GET, 20 Gbps NICs."""

from conftest import column

from repro.bench.figures import run_fig11


def test_fig11_jakiro_vs_pilaf(regenerate):
    result = regenerate(run_fig11)
    jakiro = column(result, "jakiro_mops")
    pilaf = column(result, "pilaf_mops")
    # The paper's headline: ~4x across 32-256 B values.
    for j, p in zip(jakiro, pilaf):
        assert j > 2.5 * p
    # Pilaf lands near its measured 1.3 MOPS under 50% GET.
    assert 0.8 <= max(pilaf) <= 2.0
    # Jakiro stays in the ~4.5-5.5 MOPS band on the 20 Gbps cluster.
    assert max(jakiro) > 4.0
