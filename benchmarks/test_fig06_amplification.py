"""Fig. 6 — server-bypass throughput vs RDMA operations per request."""

from conftest import column

from repro.bench.figures import run_fig6


def test_fig6_amplification(regenerate):
    result = regenerate(run_fig6)
    ops = column(result, "rdma_ops_per_request")
    throughput = column(result, "throughput_mops")
    inbound = column(result, "inbound_iops_mops")
    # Throughput collapses roughly as 1/k.
    assert throughput == sorted(throughput, reverse=True)
    ratio = throughput[0] / throughput[-1]
    assert ratio > 0.5 * (ops[-1] / ops[0])
    # Heavy amplification sinks below 1 MOPS (the paper's observation).
    assert throughput[-1] < 1.0
    # The NIC itself stays saturated: the requests get slower, not the NIC.
    assert min(inbound) > 0.8 * max(inbound)
    assert max(inbound) > 9.0
