"""Fig. 12 — Jakiro / ServerReply / RDMA-Memcached vs server threads."""

from conftest import column

from repro.bench.figures import run_fig12


def test_fig12_server_thread_scaling(regenerate):
    result = regenerate(run_fig12)
    threads = column(result, "server_threads")
    jakiro = column(result, "jakiro_mops")
    reply = column(result, "serverreply_mops")
    memcached = column(result, "memcached_mops")

    # Jakiro: ~5.5 MOPS from very few threads (networking offloaded).
    assert 4.9 <= max(jakiro) <= 6.1
    two_thread = jakiro[threads.index(2)]
    assert two_thread > 0.85 * max(jakiro)

    # ServerReply: peaks ~2.1 at 4-6 threads, then declines.
    assert 1.9 <= max(reply) <= 2.4
    assert reply[-1] < max(reply)

    # Memcached: CPU-bound, grows with threads up to 16, peaks ~1.3.
    assert memcached == sorted(memcached)
    assert 1.0 <= memcached[-1] <= 1.7

    # Headline factors at peak: ~160% over ServerReply, ~310% over
    # Memcached (allow generous slack on the fast scale).
    assert max(jakiro) > 2.2 * max(reply)
    assert max(jakiro) > 3.4 * max(memcached)
