"""Extension — §4.5: aggregate throughput scales with server machines."""

from conftest import column

from repro.bench.extensions import run_ext_multiserver


def test_multiserver_scaling(regenerate):
    result = regenerate(run_ext_multiserver)
    servers = column(result, "server_machines")
    aggregate = column(result, "aggregate_mops")
    assert servers == [1, 2, 3]
    # One server pins at the familiar ~5.5 MOPS in-bound ceiling.
    assert 4.9 <= aggregate[0] <= 6.1
    # Two servers nearly double it; three keep climbing until the fixed
    # client population becomes the limit.
    assert aggregate[1] > 1.7 * aggregate[0]
    assert aggregate[2] > aggregate[1]
