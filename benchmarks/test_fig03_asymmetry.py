"""Fig. 3 — in-bound vs out-bound IOPS vs server threads (32 B)."""

from conftest import column

from repro.bench.figures import run_fig3


def test_fig3_asymmetry(regenerate):
    result = regenerate(run_fig3)
    outbound = column(result, "outbound_mops")
    inbound = column(result, "inbound_mops")
    # Out-bound saturates around ~2.1 MOPS by 4 threads: the curve must
    # rise monotonically to its peak, then never rise again (mild sag
    # from contention past saturation is allowed).
    peak = outbound.index(max(outbound))
    assert 0 < peak < len(outbound) - 1
    rising = zip(outbound[: peak + 1], outbound[1 : peak + 1])
    assert all(earlier < later for earlier, later in rising)
    saturated = zip(outbound[peak:], outbound[peak + 1 :])
    assert all(earlier >= later for earlier, later in saturated)
    assert 1.8 <= max(outbound) <= 2.4
    # In-bound peak ~11.26 MOPS: the ~5x asymmetry.
    assert 10.3 <= max(inbound) <= 12.2
    assert max(inbound) / max(outbound) > 4.0
    # One server thread cannot saturate the out-bound pipeline.
    assert outbound[0] < 0.75 * max(outbound)
