"""Run provenance for checked-in benchmark artifacts.

Every ``BENCH_*.json`` at the repo root records the tree it was
generated from (git SHA + dirty flag) and the measurement scale, so a
trajectory comparison knows whether two artifacts are commensurable.
Deliberately dependency-free: both :mod:`repro.bench.speed` and
:mod:`repro.exp.artifact` stamp artifacts through this module.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Dict

__all__ = ["git_provenance", "scale_provenance"]

#: src/repro/provenance.py -> repo root.
_REPO_ROOT = Path(__file__).resolve().parents[2]


def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args],
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
        timeout=10,
    ).stdout.strip()


def git_provenance() -> Dict[str, object]:
    """``{"git_sha": ..., "git_dirty": ...}`` for the working tree.

    Falls back to ``"unknown"`` outside a git checkout (e.g. an sdist)
    rather than failing the benchmark that asked for a stamp.
    """
    try:
        sha = _git("rev-parse", "HEAD")
        dirty = bool(_git("status", "--porcelain"))
    except (OSError, subprocess.SubprocessError):
        return {"git_sha": "unknown", "git_dirty": False}
    return {"git_sha": sha, "git_dirty": dirty}


def scale_provenance(scale) -> Dict[str, object]:
    """JSON record of a :class:`~repro.bench.harness.Scale` (duck-typed
    so this module imports nothing from the bench layer)."""
    return {
        "window_us": float(scale.window_us),
        "warmup_fraction": float(scale.warmup_fraction),
        "records": int(scale.records),
        "full": bool(scale.full),
    }
