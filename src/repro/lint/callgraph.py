"""Static call graph over generator-based simulator code.

The atomicity analyzer needs one question answered: *starting from this
function, can any transitive call path reach a ``yield``?*  In the
cooperative simulator that is exactly the question "can simulated time
pass here" — the engine only switches processes at yields, so a region
with no reachable yield is atomic by construction.

:class:`ProjectIndex` is built once per lint run from the already-parsed
:class:`~repro.lint.base.FileContext` trees (no re-parsing, no imports
of the analyzed code) and shared by every project-scoped rule through
:class:`ProjectContext`.

Call resolution is deliberately conservative — this is a lint, not a
type checker:

- ``self.method()`` resolves inside the enclosing class, then through
  same-module base classes, then (if exactly one definition with that
  name exists anywhere in the run) project-wide.
- Bare ``helper()`` resolves to a module-level function in the same
  file.
- ``obj.attr.method()`` resolves project-wide only when the method name
  has exactly **one** definition in the analyzed files; ambiguous names
  (``get``, ``put``, ``record``, ...) stay unresolved and are *not*
  followed.

Unresolved calls are treated as non-yielding, so the analyzer can miss
a smuggled yield behind an ambiguous name — which is why
:func:`repro.sim.atomic.atomic_section` keeps its runtime checks as
defense in depth (a declared-atomic generator function fails at import
time regardless of what the call graph can see).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.base import FileContext

__all__ = ["CallSite", "FunctionInfo", "ProjectIndex", "ProjectContext"]

#: Trailing contract comment equivalent to the ``@atomic_section``
#: decorator, for code that cannot import :mod:`repro.sim`.
_ATOMIC_COMMENT = re.compile(r"#\s*sim:\s*atomic\b")

#: Decorator names recognized as the atomic contract.
_ATOMIC_DECORATORS = {"atomic_section"}


@dataclass(frozen=True)
class CallSite:
    """One outgoing call from a function body."""

    kind: str  #: ``"self"`` | ``"bare"`` | ``"attr"``
    name: str  #: method/function name (the terminal identifier)
    lineno: int


@dataclass
class FunctionInfo:
    """One module-level function or depth-1 method, classified."""

    path: str
    class_name: Optional[str]
    name: str
    lineno: int
    col: int
    is_generator: bool  #: contains any yield outside nested defs
    yields: bool  #: some yield may suspend on a simulator waitable
    atomic_declared: bool  #: @atomic_section or ``# sim: atomic``
    calls: List[CallSite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.class_name}.{self.name}" if self.class_name else self.name


def _walk_no_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested def/lambda."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _first_arg_name(node: ast.AST) -> Optional[str]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = list(node.args.posonlyargs) + list(node.args.args)
    return args[0].arg if args else None


def _call_sites(node: ast.AST, self_name: Optional[str]) -> List[CallSite]:
    sites: List[CallSite] = []
    for child in _walk_no_nested_functions(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Name):
            sites.append(CallSite("bare", func.id, child.lineno))
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                self_name is not None
                and isinstance(receiver, ast.Name)
                and receiver.id == self_name
            ):
                sites.append(CallSite("self", func.attr, child.lineno))
            else:
                sites.append(CallSite("attr", func.attr, child.lineno))
    return sites


def _may_pass_sim_time(node: ast.AST) -> bool:
    """Could this yield suspend the process on a simulator waitable?

    Data generators (``yield key, value``) iterate synchronously — no
    simulated time passes — so yields whose value demonstrably cannot be
    an Event/Process *or a delay* do not make their function "yielding"
    for atomicity purposes.  ``yield from`` always counts: the delegate
    could be anything.

    A **numeric** yield is the engine's direct-delay dispatch path
    (``yield 0.5`` suspends for half a microsecond), so numeric
    constants and arithmetic (``yield base + jitter``) count as passing
    simulated time — only values that can be neither a waitable nor a
    number (strings, bools, containers, comparisons) are exempt.
    """
    if isinstance(node, ast.YieldFrom):
        return True
    assert isinstance(node, ast.Yield)
    value = node.value
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return type(value.value) is int or type(value.value) is float
    if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return False
    if isinstance(value, (ast.BoolOp, ast.Compare, ast.JoinedStr)):
        return False
    # BinOp deliberately counts: arithmetic may compute a delay.
    return True


def _yield_flags(node: ast.AST) -> Tuple[bool, bool]:
    """(is_generator, yields_sim_time) for one function body."""
    is_generator = False
    sim_time = False
    for child in _walk_no_nested_functions(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            is_generator = True
            if _may_pass_sim_time(child):
                sim_time = True
    return is_generator, sim_time


def _declared_atomic(node: ast.AST, lines: Sequence[str]) -> bool:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for decorator in node.decorator_list:
        terminal = decorator
        if isinstance(terminal, ast.Call):
            terminal = terminal.func
        name = (
            terminal.attr
            if isinstance(terminal, ast.Attribute)
            else terminal.id if isinstance(terminal, ast.Name) else None
        )
        if name in _ATOMIC_DECORATORS:
            return True
    if 0 < node.lineno <= len(lines):
        if _ATOMIC_COMMENT.search(lines[node.lineno - 1]):
            return True
    return False


class ProjectIndex:
    """Functions and their outgoing calls across every analyzed file."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        #: (path, class_name) -> {method name -> info}
        self._methods: Dict[Tuple[str, Optional[str]], Dict[str, FunctionInfo]] = {}
        #: (path, name) -> module-level function
        self._module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        #: bare name -> every definition in the run
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: (path, class_name) -> base-class names (for same-module MRO walk)
        self._bases: Dict[Tuple[str, str], List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[FileContext]) -> "ProjectIndex":
        index = cls()
        for context in files:
            index._index_file(context)
        return index

    def _index_file(self, context: FileContext) -> None:
        lines = context.lines
        for statement in context.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(context.path, None, statement, lines)
            elif isinstance(statement, ast.ClassDef):
                self._bases[(context.path, statement.name)] = [
                    base.id
                    for base in statement.bases
                    if isinstance(base, ast.Name)
                ]
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(context.path, statement.name, member, lines)

    def _add(
        self,
        path: str,
        class_name: Optional[str],
        node: ast.AST,
        lines: Sequence[str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_generator, sim_time = _yield_flags(node)
        info = FunctionInfo(
            path=path,
            class_name=class_name,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            is_generator=is_generator,
            yields=sim_time,
            atomic_declared=_declared_atomic(node, lines),
            calls=_call_sites(node, _first_arg_name(node) if class_name else None),
        )
        self.functions.append(info)
        self._methods.setdefault((path, class_name), {})[info.name] = info
        if class_name is None:
            self._module_functions[(path, info.name)] = info
        self._by_name.setdefault(info.name, []).append(info)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find(self, class_name: Optional[str], name: str) -> Optional[FunctionInfo]:
        """First definition of ``class_name.name`` (or bare ``name``)."""
        for info in self._by_name.get(name, []):
            if info.class_name == class_name:
                return info
        return None

    def definitions(self, name: str) -> List[FunctionInfo]:
        return list(self._by_name.get(name, []))

    def resolve(self, caller: FunctionInfo, call: CallSite) -> Optional[FunctionInfo]:
        """Resolve one call site, or ``None`` when unknown/ambiguous."""
        if call.kind == "self":
            seen = set()
            class_name: Optional[str] = caller.class_name
            while class_name is not None and class_name not in seen:
                seen.add(class_name)
                methods = self._methods.get((caller.path, class_name), {})
                if call.name in methods:
                    return methods[call.name]
                bases = self._bases.get((caller.path, class_name), [])
                class_name = bases[0] if bases else None
            definitions = self._by_name.get(call.name, [])
            return definitions[0] if len(definitions) == 1 else None
        if call.kind == "bare":
            return self._module_functions.get((caller.path, call.name))
        definitions = self._by_name.get(call.name, [])
        return definitions[0] if len(definitions) == 1 else None

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def yield_path(
        self, root: FunctionInfo
    ) -> Optional[List[Tuple[FunctionInfo, Optional[CallSite]]]]:
        """Shortest-found call chain from ``root`` to a yielding function.

        Returns ``[(root, call), ..., (yielder, None)]`` or ``None`` if
        no resolved path reaches a yield.  ``root`` itself yielding is a
        one-element chain.
        """
        if root.yields:
            return [(root, None)]
        stack: List[Tuple[FunctionInfo, List[Tuple[FunctionInfo, Optional[CallSite]]]]]
        stack = [(root, [])]
        visited = {id(root)}
        while stack:
            info, trail = stack.pop()
            for call in info.calls:
                callee = self.resolve(info, call)
                if callee is None or id(callee) in visited:
                    continue
                visited.add(id(callee))
                extended = trail + [(info, call)]
                if callee.yields:
                    return extended + [(callee, None)]
                stack.append((callee, extended))
        return None


class ProjectContext:
    """Every parsed file of one lint run plus the shared call graph.

    Built once by the engine; the index is computed lazily on first use
    so runs that select only per-file rules never pay for it.
    """

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files: Tuple[FileContext, ...] = tuple(files)

    @cached_property
    def index(self) -> ProjectIndex:
        return ProjectIndex.build(self.files)
