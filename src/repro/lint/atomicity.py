"""Cross-yield atomicity analysis for simulator processes.

Three rules, all built on the shared single-parse contexts:

``atomic-section-yields`` (project-scoped)
    A function declared atomic (``@atomic_section`` decorator or a
    ``# sim: atomic`` contract comment on its ``def`` line) must have no
    transitive call path that reaches a ``yield``.  The call graph comes
    from :mod:`repro.lint.callgraph`; the offending chain is spelled out
    in the message so the fix is obvious.

``cross-yield-rmw`` (per-file)
    Inside a generator-based process, flags the stale-snapshot pattern:
    an attribute of ``self`` read *before* a yield and written *after*
    it without re-reading in between.  Everything the process observed
    before the yield may have changed while it was suspended — ring
    membership, shard status, transfer watermarks — so writing back a
    pre-yield snapshot silently resurrects dead state.  Re-reading the
    attribute after the last intervening yield (including via
    ``+=``-style augmented assignment, which reads and writes in one
    statement) is the sanctioned fix and silences the rule.

``listener-must-not-yield`` (project-scoped)
    A generator function registered via ``*.subscribe(...)`` is almost
    certainly a bug: the membership/coordinator listener protocol calls
    listeners synchronously, so passing a generator function just builds
    a generator object and discards it — the body never runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.base import FileContext, Rule, Violation
from repro.lint.callgraph import ProjectContext, _walk_no_nested_functions

__all__ = ["ATOMICITY_RULES"]


# ----------------------------------------------------------------------
# atomic-section-yields
# ----------------------------------------------------------------------


def _format_chain(chain: List[Tuple[object, Optional[object]]]) -> str:
    parts = []
    for info, call in chain:
        label = info.qualname  # type: ignore[attr-defined]
        if call is not None:
            label += f" (line {call.lineno})"  # type: ignore[attr-defined]
        parts.append(label)
    return " -> ".join(parts)


def check_atomic_section_yields(
    context: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    index = project.index
    for info in index.functions:
        if info.path != context.path or not info.atomic_declared:
            continue
        if info.is_generator:
            yield Violation(
                path=context.path,
                line=info.lineno,
                col=info.col,
                rule="atomic-section-yields",
                message=(
                    f"atomic section {info.qualname!r} contains yield; "
                    "a declared-atomic region must complete without "
                    "passing simulated time"
                ),
            )
            continue
        chain = index.yield_path(info)
        if chain is not None:
            yield Violation(
                path=context.path,
                line=info.lineno,
                col=info.col,
                rule="atomic-section-yields",
                message=(
                    f"atomic section {info.qualname!r} can reach a yield "
                    f"via {_format_chain(chain)}; every transitive call "
                    "from a declared-atomic region must be yield-free"
                ),
            )


# ----------------------------------------------------------------------
# cross-yield-rmw
# ----------------------------------------------------------------------


def _attr_path(node: ast.AST, root: str) -> Optional[str]:
    """Dotted path for ``self.a.b`` when rooted at ``root``, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == root:
        return ".".join(reversed(parts))
    return None


def _position(node: ast.AST) -> Tuple[int, int]:
    return (node.lineno, node.col_offset)


def _end_position(node: ast.AST) -> Tuple[int, int]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None:
        return _position(node)
    return (end_line, end_col or 0)


def check_cross_yield_rmw(context: FileContext) -> Iterator[Violation]:
    for fn in context.function_defs:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        body_nodes = list(_walk_no_nested_functions(fn))
        yields = sorted(
            _position(node)
            for node in body_nodes
            if isinstance(node, (ast.Yield, ast.YieldFrom))
        )
        if not yields:
            continue
        args = list(fn.args.posonlyargs) + list(fn.args.args)
        if not args:
            continue
        self_name = args[0].arg

        # Gather every read and write of each ``self``-rooted attribute
        # path, in source order.  An AugAssign target counts as both: it
        # re-reads the current value in the same statement it writes.
        reads: Dict[str, List[Tuple[int, int]]] = {}
        writes: Dict[str, List[Tuple[ast.Attribute, Tuple[int, int]]]] = {}
        # The revalidation window for a write runs to the end of its
        # *statement*: ``self.x = self.x + snap`` re-reads on the RHS,
        # which is after the target node but inside the same assignment.
        stmt_end: Dict[int, Tuple[int, int]] = {}
        for node in body_nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                end = _end_position(node)
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Attribute):
                            stmt_end[id(sub)] = end
        for node in body_nodes:
            if not isinstance(node, ast.Attribute):
                continue
            path = _attr_path(node, self_name)
            if path is None:
                continue
            if isinstance(node.ctx, ast.Store):
                writes.setdefault(path, []).append((node, _position(node)))
            elif isinstance(node.ctx, ast.Load):
                reads.setdefault(path, []).append(_position(node))
            else:  # AugStore does not exist since 3.9; AugAssign uses Store
                continue
        for node in body_nodes:
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                path = _attr_path(node.target, self_name)
                if path is not None:
                    reads.setdefault(path, []).append(_position(node.target))

        for path, write_list in writes.items():
            read_list = sorted(reads.get(path, []))
            for write_node, write_pos in write_list:
                before = [y for y in yields if y < write_pos]
                if not before:
                    continue
                last_yield = before[-1]
                # Stale only if some read happened before a yield that
                # precedes this write...
                stale_read = any(
                    read < yield_pos
                    for read in read_list
                    for yield_pos in before
                )
                if not stale_read:
                    continue
                # ...and the value was not re-read between the last
                # intervening yield and the end of the write statement.
                window_end = stmt_end.get(
                    id(write_node), _end_position(write_node)
                )
                revalidated = any(
                    last_yield < read <= window_end for read in read_list
                )
                if revalidated:
                    continue
                yield Violation(
                    path=context.path,
                    line=write_pos[0],
                    col=write_pos[1],
                    rule="cross-yield-rmw",
                    message=(
                        f"'{self_name}.{path}' is read before a yield and "
                        "written after it without re-reading; the pre-yield "
                        "snapshot may be stale — re-read (or use an "
                        "augmented assignment) after resuming"
                    ),
                )


# ----------------------------------------------------------------------
# listener-must-not-yield
# ----------------------------------------------------------------------


def check_listener_must_not_yield(
    context: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    index = project.index
    for node in context.nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "subscribe"):
            continue
        for arg in node.args:
            info = None
            if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
                # ``membership.subscribe(self.on_change)`` — resolve the
                # method name project-wide only when unambiguous.
                definitions = index.definitions(arg.attr)
                if len(definitions) == 1:
                    info = definitions[0]
            elif isinstance(arg, ast.Name):
                definitions = [
                    d
                    for d in index.definitions(arg.id)
                    if d.path == context.path and d.class_name is None
                ]
                if definitions:
                    info = definitions[0]
            if info is not None and info.is_generator:
                yield Violation(
                    path=context.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    rule="listener-must-not-yield",
                    message=(
                        f"{info.qualname!r} is a generator function "
                        "registered as a listener; listeners are invoked "
                        "synchronously, so the generator body would never "
                        "run — spawn a process from a plain function "
                        "instead"
                    ),
                )


ATOMICITY_RULES: Tuple[Rule, ...] = (
    Rule(
        name="atomic-section-yields",
        description=(
            "Declared-atomic functions (@atomic_section / '# sim: atomic') "
            "must have no transitive call path reaching a yield."
        ),
        check=check_atomic_section_yields,
        project=True,
    ),
    Rule(
        name="cross-yield-rmw",
        description=(
            "Flag attribute state read before a yield and written after it "
            "without re-reading (stale-snapshot read-modify-write)."
        ),
        check=check_cross_yield_rmw,
    ),
    Rule(
        name="listener-must-not-yield",
        description=(
            "Generator functions must not be registered via subscribe(); "
            "listeners run synchronously."
        ),
        check=check_listener_must_not_yield,
        project=True,
    ),
)
