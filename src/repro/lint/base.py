"""Shared lint vocabulary: violations, file contexts, and rules.

Split out of :mod:`repro.lint.rules` so the rule modules
(:mod:`repro.lint.rules`, :mod:`repro.lint.atomicity`,
:mod:`repro.lint.schema`) can all import the base types while
``rules.ALL_RULES`` assembles the full catalogue without an import
cycle.

A :class:`FileContext` is built **once** per file per lint run — the
tree is parsed once and the flattened node list / function-def list are
computed lazily and cached, so every rule shares one parse and one walk
instead of re-walking the tree per rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Iterator, List, Tuple, Union

__all__ = ["Violation", "FileContext", "Rule"]


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready mapping (the CLI's ``--json`` mode)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    tree: ast.Module
    source: str

    @property
    def is_sim_code(self) -> bool:
        """True for files under the simulator package itself.

        ``repro/sim`` owns the clock and the seeded RNG streams, so the
        wall-clock and RNG-construction bans do not apply inside it.
        """
        normalized = self.path.replace("\\", "/")
        return "repro/sim/" in normalized or normalized.startswith("sim/")

    @cached_property
    def nodes(self) -> Tuple[ast.AST, ...]:
        """Every node in the tree, walked once and shared by all rules."""
        return tuple(ast.walk(self.tree))

    @cached_property
    def function_defs(self) -> Tuple[ast.AST, ...]:
        """Every (sync or async) function definition in the tree."""
        return tuple(
            node
            for node in self.nodes
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )

    @cached_property
    def lines(self) -> Tuple[str, ...]:
        """Source split into lines (1-indexed via ``lines[lineno - 1]``)."""
        return tuple(self.source.splitlines())


class Rule:
    """A named lint rule.

    ``project=False`` (the default): ``check(context)`` sees one file.
    ``project=True``: ``check(context, project)`` additionally receives
    the :class:`repro.lint.callgraph.ProjectContext` shared by every
    file in the run — cross-file analyses (the atomicity call graph)
    ride the same single-parse contexts the per-file rules use.
    """

    def __init__(
        self,
        name: str,
        description: str,
        check: Union[
            Callable[[FileContext], Iterator[Violation]],
            Callable[[FileContext, Any], Iterator[Violation]],
        ],
        project: bool = False,
    ) -> None:
        self.name = name
        self.description = description
        self.check = check
        self.project = project

    def run(self, context: FileContext, project: Any) -> List[Violation]:
        if self.project:
            return list(self.check(context, project))  # type: ignore[call-arg]
        return list(self.check(context))  # type: ignore[call-arg]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "project" if self.project else "file"
        return f"Rule({self.name}, {scope})"
