"""Trace-phase schema registry and its static call-site validator.

The simulator's tracer is stringly typed: ``tracer.record(category,
label, **data)``.  The runtime invariant checkers
(:mod:`repro.lint.invariants`) dispatch on those strings, so a typo'd
label or a missing data field does not fail — it silently produces an
event no checker ever looks at.  This module closes that hole from both
ends:

- :data:`TRACE_SCHEMA` declares every trace category, every phase label
  inside it, and the data fields each phase requires (plus optional
  extras).  Phases a checker deliberately ignores are declared with
  ``checked=False`` so the registry stays the single source of truth.
- The ``trace-schema`` lint rule validates every ``*.record(...)`` call
  site statically against the registry: unknown categories, unknown or
  typo'd labels (with a did-you-mean suggestion), missing required
  fields, and stray fields are all violations at the call site.
- :func:`check_registry_coverage` cross-checks the registry against the
  checkers' handler tables: every handled label must be declared, and
  every declared phase must be either handled or explicitly marked
  ``checked=False``.

Trace *helpers* — methods like ``RfpClient._trace`` that wrap the
tracer and add implicit fields — are declared in :data:`TRACE_HELPERS`.
Calls through a registered helper are validated with the helper's
implicit fields credited; the dynamic label inside the helper body
itself is exempt.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.lint.base import FileContext, Rule, Violation

__all__ = [
    "PhaseSpec",
    "TraceHelper",
    "TRACE_SCHEMA",
    "TRACE_HELPERS",
    "CHECKER_CATEGORIES",
    "SCHEMA_RULES",
    "check_registry_coverage",
    "collect_record_call_sites",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One declared trace phase: its label and data-field contract."""

    label: str
    required: FrozenSet[str]
    optional: FrozenSet[str] = frozenset()
    #: False for phases deliberately not consumed by any runtime
    #: checker (fault-injection markers, best-effort diagnostics).
    checked: bool = True
    description: str = ""

    @property
    def allowed(self) -> FrozenSet[str]:
        return self.required | self.optional


def _phases(*specs: PhaseSpec) -> Dict[str, PhaseSpec]:
    return {spec.label: spec for spec in specs}


def _fs(*names: str) -> FrozenSet[str]:
    return frozenset(names)


#: category -> {label -> PhaseSpec}.  This is the single source of truth
#: for the trace vocabulary; the static rule, the coverage check, and
#: ``docs/lint.md`` all derive from it.
TRACE_SCHEMA: Dict[str, Dict[str, PhaseSpec]] = {
    "rfp.client": _phases(
        PhaseSpec(
            "request_sent",
            _fs("client", "channel", "seq", "bytes"),
            description="RPC request written into the server-side buffer.",
        ),
        PhaseSpec(
            "fetch_read",
            _fs("client", "channel", "seq", "attempt", "bytes"),
            description="One remote-fetch RDMA read attempt (size F).",
        ),
        PhaseSpec(
            "remainder_read",
            _fs("client", "channel", "seq", "bytes"),
            description="Second read for a response that exceeded F.",
        ),
        PhaseSpec(
            "fetch_success",
            _fs("client", "channel", "seq", "attempts"),
            description="Remote fetch observed a ready response.",
        ),
        PhaseSpec(
            "mode_switch",
            _fs("client", "channel", "seq", "to"),
            description="Hybrid policy switched the channel's mode.",
        ),
        PhaseSpec(
            "flag_published",
            _fs("client", "channel", "seq", "mode"),
            description="Mode flag written to the server-side byte.",
        ),
        PhaseSpec(
            "reply_received",
            _fs("client", "channel", "seq", "bytes"),
            description="Server-pushed reply landed in client memory.",
        ),
        PhaseSpec(
            "call_done",
            _fs("client", "channel", "seq", "latency_us", "mode"),
            description="Call completed; latency recorded.",
        ),
    ),
    "rfp.server": _phases(
        PhaseSpec(
            "response_published",
            _fs("client", "seq", "bytes", "response_time_us"),
            description="Response staged for remote fetch.",
        ),
        PhaseSpec(
            "reply_pushed",
            _fs("client", "seq", "bytes"),
            description="Server-reply mode: response written to client.",
        ),
        PhaseSpec(
            "mode_flag",
            _fs("client", "mode"),
            description="Server observed a client mode-flag write.",
        ),
    ),
    "cluster": _phases(
        PhaseSpec(
            "route",
            _fs("shard", "op", "client"),
            description="Cluster client routed an op to a shard.",
        ),
        PhaseSpec(
            "route_timeout",
            _fs("shard", "op", "client"),
            checked=False,
            description=(
                "Routed op timed out (diagnostic; the suspect/dead "
                "transitions it triggers are the checked phases)."
            ),
        ),
        PhaseSpec(
            "shard_killed",
            _fs("shard"),
            checked=False,
            description="Fault-injection marker: test killed a shard.",
        ),
        PhaseSpec(
            "suspect",
            _fs("shard", "reason"),
            description="Membership: HEALTHY shard turned SUSPECT.",
        ),
        PhaseSpec(
            "recovered",
            _fs("shard", "reason"),
            description="Membership: SUSPECT shard healed to HEALTHY.",
        ),
        PhaseSpec(
            "dead",
            _fs("shard", "reason"),
            description="Membership: shard declared DEAD.",
        ),
        PhaseSpec(
            "rejoin",
            _fs("shard", "reason"),
            description="Membership: DEAD shard re-admitted as RECOVERING.",
        ),
        PhaseSpec(
            "failover",
            _fs("shard", "successors"),
            description="Failover takeover decision for a dead shard.",
        ),
        PhaseSpec(
            "rebalance",
            _fs("removed", "survivors", "vnodes"),
            description="Ring surgery removing the dead shard's vnodes.",
        ),
        PhaseSpec(
            "transfer",
            _fs("shard", "donor", "keys", "bytes", "watermark", "target"),
            description="One recovery batch streamed from a donor.",
        ),
        PhaseSpec(
            "transfer_replan",
            _fs("shard", "donors", "ring", "watermark", "target"),
            description="Recovery replanned after a donor died mid-stream.",
        ),
        PhaseSpec(
            "handoff",
            _fs("shard", "donors", "ring", "watermark", "target"),
            description="Atomic ring re-entry + promotion of the rejoiner.",
        ),
        PhaseSpec(
            "transfer_abort",
            _fs("shard", "watermark", "target"),
            description="Recovery abandoned (shard died again mid-stream).",
        ),
        PhaseSpec(
            "migrate_start",
            _fs("shard", "donors", "vnodes", "target"),
            description="Vnode migration planned: shard = recipient.",
        ),
        PhaseSpec(
            "migrate_batch",
            _fs("shard", "donor", "keys", "bytes", "watermark", "target"),
            description="One vnode-migration batch streamed from a donor.",
        ),
        PhaseSpec(
            "migrate_cutover",
            _fs("shard", "donors", "vnodes", "watermark", "target"),
            description="Atomic token-ownership flip onto the recipient.",
        ),
        PhaseSpec(
            "migrate_abort",
            _fs("shard", "watermark", "target"),
            description="Vnode migration abandoned (membership changed).",
        ),
        PhaseSpec(
            "rebalance_pick",
            _fs("hot", "cold", "vnodes", "imbalance"),
            checked=False,
            description=(
                "Rebalance controller decision (diagnostic; the "
                "migrate_* phases it triggers are the checked ones)."
            ),
        ),
        PhaseSpec(
            "txn_begin",
            _fs("txn", "client", "keys", "participants"),
            description="Multi-key transaction opened (keys = declared count).",
        ),
        PhaseSpec(
            "txn_lock",
            _fs("txn", "key", "shard", "order"),
            description=(
                "Lock lease granted (key is hex, so trace order mirrors "
                "the sorted-bytes acquisition order the checker enforces)."
            ),
        ),
        PhaseSpec(
            "txn_commit",
            _fs("txn", "locks", "keys"),
            description=(
                "Atomic commit apply: every staged value installed and "
                "every lock released at one instant."
            ),
        ),
        PhaseSpec(
            "txn_abort",
            _fs("txn", "locks", "reason"),
            description="Transaction aborted; staging discarded, locks released.",
        ),
    ),
}


@dataclass(frozen=True)
class TraceHelper:
    """A method that wraps ``tracer.record`` and injects fields."""

    class_name: str
    method_name: str
    category: str
    implicit: FrozenSet[str] = field(default_factory=frozenset)


#: (class name, method name) -> helper spec.  Call sites
#: ``self.<method>(label, **data)`` inside the class are validated
#: against the helper's category with the implicit fields credited.
TRACE_HELPERS: Dict[Tuple[str, str], TraceHelper] = {
    ("RfpClient", "_trace"): TraceHelper(
        class_name="RfpClient",
        method_name="_trace",
        category="rfp.client",
        implicit=_fs("client", "channel"),
    ),
}


#: Which trace categories each runtime checker consumes.  Used by
#: :func:`check_registry_coverage` to pair handler tables with declared
#: phases.
CHECKER_CATEGORIES: Dict[str, FrozenSet[str]] = {
    "RfpInvariantChecker": _fs("rfp.client", "rfp.server"),
    "ClusterInvariantChecker": _fs("cluster"),
}


# ----------------------------------------------------------------------
# Static call-site validation
# ----------------------------------------------------------------------


def _receiver_terminal(func: ast.Attribute) -> Optional[str]:
    """Terminal identifier of the call receiver: ``a.b.record`` -> 'b'."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _is_tracer_receiver(name: Optional[str]) -> bool:
    return name is not None and (name == "tracer" or name.endswith("_tracer"))


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _suggest(word: str, candidates: Iterable[str]) -> str:
    matches = difflib.get_close_matches(word, list(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _iter_scoped_calls(
    tree: ast.Module,
) -> Iterator[Tuple[ast.Call, Optional[str], Optional[str]]]:
    """Yield every call with its enclosing (class, function) names."""

    def visit(
        node: ast.AST, class_name: Optional[str], func_name: Optional[str]
    ) -> Iterator[Tuple[ast.Call, Optional[str], Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name, None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, class_name, child.name)
            else:
                if isinstance(child, ast.Call):
                    yield child, class_name, func_name
                yield from visit(child, class_name, func_name)

    yield from visit(tree, None, None)


def _validate_fields(
    context: FileContext,
    call: ast.Call,
    spec: PhaseSpec,
    implicit: FrozenSet[str],
    where: str,
) -> Iterator[Violation]:
    given: Set[str] = set(implicit)
    open_ended = False
    for keyword in call.keywords:
        if keyword.arg is None:  # **splat — cannot see what it carries
            open_ended = True
        else:
            given.add(keyword.arg)
    allowed = spec.allowed | implicit
    unknown = sorted(given - allowed)
    for name in unknown:
        yield Violation(
            path=context.path,
            line=call.lineno,
            col=call.col_offset,
            rule="trace-schema",
            message=(
                f"{where}: field {name!r} is not declared for phase "
                f"{spec.label!r}{_suggest(name, allowed)}; declared fields "
                f"are {sorted(allowed)}"
            ),
        )
    if not open_ended:
        for name in sorted(spec.required - given):
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    f"{where}: phase {spec.label!r} requires field "
                    f"{name!r} which this call does not pass"
                ),
            )


def check_trace_schema(context: FileContext) -> Iterator[Violation]:
    for call, class_name, func_name in _iter_scoped_calls(context.tree):
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue

        # --- registered helper call: self._trace(label, **data) -------
        helper = (
            TRACE_HELPERS.get((class_name, func.attr))
            if class_name is not None
            else None
        )
        if helper is not None and isinstance(func.value, ast.Name):
            phases = TRACE_SCHEMA[helper.category]
            if not call.args:
                continue
            label = _literal_str(call.args[0])
            if label is None:
                yield Violation(
                    path=context.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule="trace-schema",
                    message=(
                        f"trace helper {helper.class_name}."
                        f"{helper.method_name} called with a dynamic "
                        "label; phase labels must be string literals so "
                        "the schema can be checked statically"
                    ),
                )
                continue
            if label not in phases:
                yield Violation(
                    path=context.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule="trace-schema",
                    message=(
                        f"unknown phase {label!r} in category "
                        f"{helper.category!r}{_suggest(label, phases)}; "
                        "declare it in repro.lint.schema.TRACE_SCHEMA"
                    ),
                )
                continue
            yield from _validate_fields(
                context,
                call,
                phases[label],
                helper.implicit,
                where=f"{helper.category}/{label}",
            )
            continue

        # --- direct tracer.record(category, label, **data) ------------
        if func.attr != "record":
            continue
        if not _is_tracer_receiver(_receiver_terminal(func)):
            continue  # meter.record(value), stats.x.record(...) etc.
        if len(call.args) < 2:
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    "tracer.record() must pass category and label as its "
                    "two positional arguments"
                ),
            )
            continue
        if len(call.args) > 2:
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    "tracer.record() takes exactly two positional "
                    "arguments (category, label); pass data fields by "
                    "keyword"
                ),
            )
            continue
        category = _literal_str(call.args[0])
        if category is None:
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    "tracer.record() called with a dynamic category; "
                    "categories must be string literals"
                ),
            )
            continue
        if category not in TRACE_SCHEMA:
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    f"unknown trace category {category!r}"
                    f"{_suggest(category, TRACE_SCHEMA)}; declare it in "
                    "repro.lint.schema.TRACE_SCHEMA"
                ),
            )
            continue
        phases = TRACE_SCHEMA[category]
        label = _literal_str(call.args[1])
        if label is None:
            in_helper = (class_name, func_name) in TRACE_HELPERS
            if not in_helper:
                yield Violation(
                    path=context.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule="trace-schema",
                    message=(
                        "tracer.record() called with a dynamic label "
                        "outside a registered trace helper; use literal "
                        "labels or register the helper in "
                        "repro.lint.schema.TRACE_HELPERS"
                    ),
                )
            continue
        if label not in phases:
            yield Violation(
                path=context.path,
                line=call.lineno,
                col=call.col_offset,
                rule="trace-schema",
                message=(
                    f"unknown phase {label!r} in category {category!r}"
                    f"{_suggest(label, phases)}; declare it in "
                    "repro.lint.schema.TRACE_SCHEMA"
                ),
            )
            continue
        yield from _validate_fields(
            context,
            call,
            phases[label],
            frozenset(),
            where=f"{category}/{label}",
        )


# ----------------------------------------------------------------------
# Registry <-> checker coverage
# ----------------------------------------------------------------------


def check_registry_coverage(
    registry: Optional[Mapping[str, Mapping[str, PhaseSpec]]] = None,
    handled: Optional[Mapping[str, Set[str]]] = None,
) -> List[str]:
    """Cross-check the registry against the runtime checkers.

    Returns a list of human-readable problems (empty when consistent):

    - a checker handles a label no declared phase carries;
    - a phase declared ``checked=True`` that no checker handles;
    - a phase declared ``checked=False`` that a checker *does* handle
      (the declaration is stale — flip it back to checked).

    ``registry`` and ``handled`` exist for tests; by default the real
    :data:`TRACE_SCHEMA` and the live checkers' handler tables are used.
    """
    if registry is None:
        registry = TRACE_SCHEMA
    if handled is None:
        # Imported lazily: invariants is runtime machinery and pulls in
        # nothing static, but keep the static layer importable alone.
        from repro.lint.invariants import (
            ClusterInvariantChecker,
            RfpInvariantChecker,
        )

        handled = {
            "RfpInvariantChecker": set(RfpInvariantChecker()._handlers),
            "ClusterInvariantChecker": set(ClusterInvariantChecker()._handlers),
        }

    problems: List[str] = []
    for checker_name in sorted(handled):
        categories = CHECKER_CATEGORIES.get(checker_name)
        if categories is None:
            problems.append(
                f"checker {checker_name!r} is not mapped to any category "
                "in repro.lint.schema.CHECKER_CATEGORIES"
            )
            continue
        declared = {
            label
            for category in categories
            for label in registry.get(category, {})
        }
        for label in sorted(set(handled[checker_name]) - declared):
            problems.append(
                f"{checker_name} handles label {label!r} but no phase "
                f"with that label is declared in {sorted(categories)}"
            )

    for category in sorted(registry):
        handled_here: Set[str] = set()
        for checker_name, categories in CHECKER_CATEGORIES.items():
            if category in categories:
                handled_here |= set(handled.get(checker_name, set()))
        for label in sorted(registry[category]):
            spec = registry[category][label]
            if spec.checked and label not in handled_here:
                problems.append(
                    f"phase {category}/{label} is declared checked but no "
                    "checker handles it; handle it or declare it with "
                    "checked=False"
                )
            elif not spec.checked and label in handled_here:
                problems.append(
                    f"phase {category}/{label} is declared checked=False "
                    "but a checker handles it; flip the declaration back"
                )
    return problems


# ----------------------------------------------------------------------
# Call-site discovery (used by the tier-1 gate to prove coverage)
# ----------------------------------------------------------------------


def collect_record_call_sites(
    paths: Iterable[str],
) -> List[Tuple[str, int, Optional[str], Optional[str]]]:
    """Every tracer ``record``/helper call under ``paths``.

    Returns ``(path, lineno, category, label)`` tuples; ``category`` or
    ``label`` is ``None`` when dynamic.  Parses files directly so the
    gate can assert the schema rule actually *sees* the sites it claims
    to validate (a discovery regression would otherwise silently pass).
    """
    from repro.lint.engine import iter_python_files

    sites: List[Tuple[str, int, Optional[str], Optional[str]]] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
        except (OSError, SyntaxError):
            continue
        for call, class_name, _func_name in _iter_scoped_calls(tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            helper = (
                TRACE_HELPERS.get((class_name, func.attr))
                if class_name is not None
                else None
            )
            if helper is not None and isinstance(func.value, ast.Name):
                label = _literal_str(call.args[0]) if call.args else None
                sites.append((path, call.lineno, helper.category, label))
                continue
            if func.attr != "record":
                continue
            if not _is_tracer_receiver(_receiver_terminal(func)):
                continue
            category = _literal_str(call.args[0]) if call.args else None
            label = _literal_str(call.args[1]) if len(call.args) > 1 else None
            sites.append((path, call.lineno, category, label))
    return sites


SCHEMA_RULES: Tuple[Rule, ...] = (
    Rule(
        name="trace-schema",
        description=(
            "tracer.record()/helper call sites must use declared "
            "categories, declared literal labels, and the declared data "
            "fields for each phase."
        ),
        check=check_trace_schema,
    ),
)
