"""Lint driver: file discovery, pragma suppression, rule dispatch.

The engine parses each file exactly once: the :class:`FileContext` built
here carries the tree (plus cached node/function-def walks) shared by
every rule, and a :class:`~repro.lint.callgraph.ProjectContext` over all
files of the run backs the project-scoped rules (the atomicity call
graph) without a second parse.

Violations can be suppressed per line with an explicit pragma::

    started = time.time()  # lint: disable=no-wall-clock -- CLI wall time

(``# lint: disable`` with no rule list suppresses every rule on that
line), or for a whole file with ``# lint: skip-file`` within the first
five lines.  Pragmas are deliberately loud: the point of the lint is
that exceptions to the determinism contract are visible in the diff.

Pragmas are read from the token stream, so pragma-shaped text inside a
string or docstring is ignored — only real comments suppress.

A suppression that stops matching anything is itself a defect (the
exception it documented is gone, or the rule name is typo'd), so the
engine can report stale pragmas as ``unused-suppression`` violations —
pass ``warn_unused_suppressions=True`` (CLI:
``--warn-unused-suppressions``).  A pragma is only judged when the run
actually exercised it: named pragmas require every listed rule to be
selected, bare pragmas require the full default rule set.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import FileContext, Rule, Violation
from repro.lint.callgraph import ProjectContext
from repro.lint.rules import ALL_RULES

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_DISABLE_PRAGMA = re.compile(r"#\s*lint:\s*disable(?:=([\w\-, ]+))?")
_SKIP_FILE_PRAGMA = re.compile(r"#\s*lint:\s*skip-file")

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    "build",
    "dist",
}


@dataclass
class _Pragma:
    """One ``# lint: disable`` comment and whether it earned its keep."""

    lineno: int
    col: int
    names: Optional[Set[str]]  #: None = bare pragma (all rules)
    used: bool = False


@dataclass
class _FileState:
    """Everything the engine derives from one file before rules run."""

    context: Optional[FileContext]
    pragmas: Dict[int, _Pragma] = field(default_factory=dict)
    skipped: bool = False
    parse_error: Optional[Violation] = None


def _pragmas_from_comments(
    comments: Iterable[Tuple[int, int, str]],
) -> Tuple[bool, Dict[int, _Pragma]]:
    """(skip_file, pragmas) from ``(lineno, col, text)`` comment tokens."""
    skip = False
    pragmas: Dict[int, _Pragma] = {}
    for lineno, col, text in comments:
        if lineno <= 5 and _SKIP_FILE_PRAGMA.search(text):
            skip = True
        match = _DISABLE_PRAGMA.search(text)
        if not match:
            continue
        listed = match.group(1)
        names: Optional[Set[str]]
        if listed is None:
            names = None
        else:
            # ``disable=a,b -- reason`` — the documented trailer; rule
            # names use single hyphens, so ``--`` always ends the list.
            listed = listed.split("--", 1)[0]
            names = {name.strip() for name in listed.split(",") if name.strip()}
        pragmas[lineno] = _Pragma(lineno=lineno, col=col, names=names)
    return skip, pragmas


def _extract_pragmas(source: str) -> Tuple[bool, Dict[int, _Pragma]]:
    """Scan the token stream for pragma comments.

    Tokenizing (rather than scanning raw lines) keeps pragma-shaped text
    inside strings/docstrings from being treated as real suppressions.
    Files that fail to tokenize fall back to the raw line scan — they
    will surface a ``syntax-error`` violation from the parse anyway.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            index = line.find("#")
            if index >= 0:
                comments.append((lineno, index, line[index:]))
    return _pragmas_from_comments(comments)


def _prepare(source: str, path: str) -> _FileState:
    """Tokenize + parse one file into a ready-to-lint state."""
    skipped, pragmas = _extract_pragmas(source)
    if skipped:
        return _FileState(context=None, skipped=True)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return _FileState(
            context=None,
            parse_error=Violation(
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                "syntax-error",
                f"file does not parse: {error.msg}",
            ),
        )
    return _FileState(
        context=FileContext(path=path, tree=tree, source=source),
        pragmas=pragmas,
    )


def _run_rules(
    state: _FileState,
    rules: Sequence[Rule],
    project: ProjectContext,
) -> List[Violation]:
    """Run ``rules`` over one prepared file, honoring its pragmas."""
    assert state.context is not None
    violations: List[Violation] = []
    for rule in rules:
        for violation in rule.run(state.context, project):
            pragma = state.pragmas.get(violation.line)
            if pragma is not None and (
                pragma.names is None or violation.rule in pragma.names
            ):
                pragma.used = True
                continue
            violations.append(violation)
    return violations


def _unused_suppressions(
    state: _FileState, rules: Sequence[Rule]
) -> List[Violation]:
    """Stale-pragma violations for one file (after every rule has run).

    A pragma is judged only when this run could have used it: a named
    pragma needs all its listed rules selected, a bare pragma needs the
    full default rule set (otherwise "unused" just means "not checked").
    """
    assert state.context is not None
    run_names = {rule.name for rule in rules}
    default_names = {rule.name for rule in ALL_RULES}
    violations: List[Violation] = []
    for pragma in state.pragmas.values():
        if pragma.used:
            continue
        if pragma.names is None:
            if not default_names <= run_names:
                continue
            what = "suppresses all rules"
        else:
            if not pragma.names <= run_names:
                continue
            what = f"suppresses {', '.join(sorted(pragma.names))}"
        violations.append(
            Violation(
                state.context.path,
                pragma.lineno,
                pragma.col,
                "unused-suppression",
                f"pragma {what} but nothing on this line violates them; "
                "remove the stale suppression",
            )
        )
    return violations


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    warn_unused_suppressions: bool = False,
) -> List[Violation]:
    """Lint one source string; returns violations sorted by position."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    state = _prepare(source, path)
    if state.skipped:
        return []
    if state.parse_error is not None:
        return [state.parse_error]
    assert state.context is not None
    project = ProjectContext([state.context])
    violations = _run_rules(state, active, project)
    if warn_unused_suppressions:
        violations.extend(_unused_suppressions(state, active))
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
    warn_unused_suppressions: bool = False,
) -> List[Violation]:
    """Lint one file on disk (as its own single-file project)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    shown = display_path if display_path is not None else path
    return lint_source(
        source,
        path=shown.replace(os.sep, "/"),
        rules=rules,
        warn_unused_suppressions=warn_unused_suppressions,
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    warn_unused_suppressions: bool = False,
) -> List[Violation]:
    """Lint every Python file under ``paths``; sorted, deterministic.

    All files are parsed up front so project-scoped rules (the atomicity
    call graph) see the whole run at once; per-file rules reuse the very
    same parsed contexts — one parse per file total.
    """
    active = list(rules) if rules is not None else list(ALL_RULES)
    violations: List[Violation] = []
    states: List[_FileState] = []
    for filepath in iter_python_files(paths):
        with open(filepath, "r", encoding="utf-8") as handle:
            source = handle.read()
        state = _prepare(source, filepath.replace(os.sep, "/"))
        if state.parse_error is not None:
            violations.append(state.parse_error)
        elif not state.skipped:
            states.append(state)
    project = ProjectContext(
        [state.context for state in states if state.context is not None]
    )
    for state in states:
        violations.extend(_run_rules(state, active, project))
        if warn_unused_suppressions:
            violations.extend(_unused_suppressions(state, active))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
