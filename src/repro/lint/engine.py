"""Lint driver: file discovery, pragma suppression, rule dispatch.

The engine parses each file once and hands the tree to every rule.
Violations can be suppressed per line with an explicit pragma::

    started = time.time()  # lint: disable=no-wall-clock -- CLI wall time

(`# lint: disable` with no rule list suppresses every rule on that
line), or for a whole file with ``# lint: skip-file`` within the first
five lines.  Pragmas are deliberately loud: the point of the lint is
that exceptions to the determinism contract are visible in the diff.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.rules import ALL_RULES, FileContext, Rule, Violation

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_DISABLE_PRAGMA = re.compile(r"#\s*lint:\s*disable(?:=([\w\-, ]+))?")
_SKIP_FILE_PRAGMA = re.compile(r"#\s*lint:\s*skip-file")

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    "build",
    "dist",
}


def _line_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule names (None = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_PRAGMA.search(line)
        if not match:
            continue
        listed = match.group(1)
        if listed is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {
                name.strip() for name in listed.split(",") if name.strip()
            }
    return suppressions


def _file_skipped(source: str) -> bool:
    head = source.splitlines()[:5]
    return any(_SKIP_FILE_PRAGMA.search(line) for line in head)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; returns violations sorted by position."""
    if _file_skipped(source):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                "syntax-error",
                f"file does not parse: {error.msg}",
            )
        ]
    context = FileContext(path=path, tree=tree, source=source)
    suppressions = _line_suppressions(source)
    violations: List[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        for violation in rule.check(context):
            suppressed = suppressions.get(violation.line)
            if violation.line in suppressions and (
                suppressed is None or violation.rule in suppressed
            ):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Violation]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    shown = display_path if display_path is not None else path
    return lint_source(source, path=shown.replace(os.sep, "/"), rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths``; sorted, deterministic."""
    violations: List[Violation] = []
    for filepath in iter_python_files(paths):
        violations.extend(lint_file(filepath, rules=rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
