"""AST lint rules for determinism and protocol discipline.

Each rule is a function ``check(context) -> Iterator[Violation]``
registered in :data:`ALL_RULES`.  Rules are pure AST walks — no imports
of the checked code are ever executed — so the lint is safe to run over
fixture files that are deliberately broken.

The determinism rules encode the simulator's contract (see
``src/repro/sim/core.py``): simulated time is the only clock and
:mod:`repro.sim.random` is the only randomness source, so identical
inputs always replay identical runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.atomicity import ATOMICITY_RULES
from repro.lint.base import FileContext, Rule, Violation
from repro.lint.schema import SCHEMA_RULES

__all__ = ["Violation", "FileContext", "Rule", "ALL_RULES", "rule_names"]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_no_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested def/lambda."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# no-wall-clock
# ----------------------------------------------------------------------

#: Callables that read the host clock (or block on it).  Any of these in
#: model code silently couples a "deterministic" run to the machine it
#: runs on.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: ``from time import <name>`` equivalents of the above.
_WALL_CLOCK_FROM_IMPORTS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    },
}


def check_no_wall_clock(context: FileContext) -> Iterator[Violation]:
    if context.is_sim_code:
        return
    for node in context.nodes:
        if isinstance(node, ast.ImportFrom) and node.module in _WALL_CLOCK_FROM_IMPORTS:
            banned = _WALL_CLOCK_FROM_IMPORTS[node.module]
            for alias in node.names:
                if alias.name in banned:
                    yield Violation(
                        context.path,
                        node.lineno,
                        node.col_offset,
                        "no-wall-clock",
                        f"import of wall-clock '{node.module}.{alias.name}'; "
                        "simulated components must use Simulator.now",
                    )
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield Violation(
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "no-wall-clock",
                    f"call to wall clock '{dotted}()'; simulated components "
                    "must use Simulator.now (host timing belongs in sim/)",
                )


# ----------------------------------------------------------------------
# no-global-random
# ----------------------------------------------------------------------

#: numpy.random module-level functions that mutate/read hidden global
#: RNG state, plus ad-hoc generator construction.  Both break the
#: named-stream discipline of :mod:`repro.sim.random`.
_NUMPY_GLOBAL_RANDOM = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "random_integers",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "exponential",
    "zipf",
    "poisson",
    "bytes",
}

_RNG_FIX_HINT = (
    "route randomness through repro.sim.random "
    "(RandomStreams / seeded_rng) so streams stay named and seeded"
)


def check_no_global_random(context: FileContext) -> Iterator[Violation]:
    for node in context.nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Violation(
                        context.path,
                        node.lineno,
                        node.col_offset,
                        "no-global-random",
                        f"import of the global 'random' module; {_RNG_FIX_HINT}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield Violation(
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "no-global-random",
                    f"import from the global 'random' module; {_RNG_FIX_HINT}",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[-2] == "random" and parts[0] in (
                "np",
                "numpy",
            ):
                leaf = parts[-1]
                if leaf in _NUMPY_GLOBAL_RANDOM:
                    yield Violation(
                        context.path,
                        node.lineno,
                        node.col_offset,
                        "no-global-random",
                        f"'{dotted}()' uses numpy's hidden global RNG state; "
                        f"{_RNG_FIX_HINT}",
                    )
                elif leaf == "default_rng" and not context.is_sim_code:
                    yield Violation(
                        context.path,
                        node.lineno,
                        node.col_offset,
                        "no-global-random",
                        f"ad-hoc '{dotted}()' generator; {_RNG_FIX_HINT}",
                    )


# ----------------------------------------------------------------------
# no-float-eq
# ----------------------------------------------------------------------

_TIMEY_SUFFIXES = ("_us", "_ns", "_ms")
_TIMEY_SUBSTRINGS = ("latency", "elapsed")
_TIMEY_EXACT = {"now", "at_us"}


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_timey_operand(node: ast.AST) -> bool:
    name = _terminal_identifier(node)
    if name is None:
        return False
    lowered = name.lower()
    return (
        lowered in _TIMEY_EXACT
        or lowered.endswith(_TIMEY_SUFFIXES)
        or any(bit in lowered for bit in _TIMEY_SUBSTRINGS)
    )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def check_no_float_eq(context: FileContext) -> Iterator[Violation]:
    for node in context.nodes:
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(_is_float_literal(side) for side in pair):
                yield Violation(
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "no-float-eq",
                    "exact ==/!= against a float literal; floats carrying "
                    "simulated time accumulate rounding — compare with a "
                    "tolerance or restate the check on integers",
                )
            elif any(_is_timey_operand(side) for side in pair):
                yield Violation(
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "no-float-eq",
                    "exact ==/!= between time-valued floats; use <=/>= "
                    "bounds or math.isclose",
                )


# ----------------------------------------------------------------------
# units-discipline
# ----------------------------------------------------------------------

_TIME_UNIT_TOKENS = {"ns", "us", "ms", "sec", "secs", "seconds"}
_SIZE_UNIT_TOKENS = {"bytes", "kb", "mb", "gb", "kib", "mib", "gib"}


def _unit_tokens(identifier: str) -> Tuple[Set[str], Set[str]]:
    tokens = identifier.lower().split("_")
    return (
        {t for t in tokens if t in _TIME_UNIT_TOKENS},
        {t for t in tokens if t in _SIZE_UNIT_TOKENS},
    )


def check_units_discipline(context: FileContext) -> Iterator[Violation]:
    for node in context.function_defs:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        identifiers = [node.name] + [
            arg.arg
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        time_units: Set[str] = set()
        size_units: Set[str] = set()
        for identifier in identifiers:
            t, s = _unit_tokens(identifier)
            time_units |= t
            size_units |= s
        for dimension, units in (("time", time_units), ("size", size_units)):
            if len(units) > 1:
                listing = ", ".join(sorted(units))
                yield Violation(
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "units-discipline",
                    f"function '{node.name}' mixes {dimension} units in its "
                    f"name/arguments ({listing}); pick one unit per signature "
                    "(project convention: µs for time, bytes for sizes)",
                )


# ----------------------------------------------------------------------
# no-mutable-default
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] in _MUTABLE_FACTORIES:
            return True
    return False


def check_no_mutable_default(context: FileContext) -> Iterator[Violation]:
    for node in context.function_defs:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield Violation(
                    context.path,
                    default.lineno,
                    default.col_offset,
                    "no-mutable-default",
                    f"mutable default argument in '{node.name}'; defaults are "
                    "evaluated once and shared across calls — use None and "
                    "construct inside the body",
                )


# ----------------------------------------------------------------------
# sim-yield-only
# ----------------------------------------------------------------------

#: Method names whose call results are the Event/Process waitables a
#: simulator process legitimately yields.
_EVENT_PRODUCING_METHODS = {
    "timeout",
    "event",
    "process",
    "request",
    "get",
    "submit",
    "post_read",
    "post_write",
    "post_send",
    "post_atomic_cas",
    "post_atomic_faa",
    "recv",
}
_EVENT_PRODUCING_NAMES = {"AnyOf", "AllOf", "Event", "Process"}


def _yields_event(value: Optional[ast.AST]) -> bool:
    """Heuristic: does this yield expression produce a sim waitable?"""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _EVENT_PRODUCING_METHODS:
            return True
        if isinstance(func, ast.Name) and func.id in _EVENT_PRODUCING_NAMES:
            return True
    return False


def _definitely_not_event(value: Optional[ast.AST]) -> bool:
    """Expressions that cannot possibly evaluate to a process yield.

    ``yield <number>`` is the engine's direct-delay fast path, so numeric
    constants and arithmetic (``yield base + jitter``) are legitimate;
    everything else that is demonstrably not a waitable gets flagged.
    """
    if value is None:  # bare ``yield`` produces None
        return True
    if isinstance(value, ast.Constant):
        # int/float delays are valid; bool is not a delay.
        return not (
            type(value.value) is int or type(value.value) is float
        )
    if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.BoolOp, ast.Compare, ast.JoinedStr)):
        return True
    return False


def check_sim_yield_only(context: FileContext) -> Iterator[Violation]:
    for node in context.function_defs:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        yields = [
            child
            for child in _walk_no_nested_functions(node)
            if isinstance(child, ast.Yield)
        ]
        if not yields:
            continue
        # Only generators that demonstrably wait on simulator events are
        # treated as processes; plain data generators (workload streams,
        # datasets) yield values freely.
        if not any(_yields_event(y.value) for y in yields):
            continue
        for y in yields:
            if _definitely_not_event(y.value):
                yield Violation(
                    context.path,
                    y.lineno,
                    y.col_offset,
                    "sim-yield-only",
                    f"simulator process '{node.name}' yields a plain value; "
                    "processes may only yield Event or Process (the engine "
                    "raises SimulationError at run time)",
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_RULES: Sequence[Rule] = (
    Rule(
        "no-wall-clock",
        "No host-clock reads (time.time, datetime.now, perf_counter, ...) "
        "outside repro/sim/.",
        check_no_wall_clock,
    ),
    Rule(
        "no-global-random",
        "No global `random` module or numpy global-state RNG; use "
        "repro.sim.random streams.",
        check_no_global_random,
    ),
    Rule(
        "no-float-eq",
        "No ==/!= between time-valued floats or against float literals.",
        check_no_float_eq,
    ),
    Rule(
        "units-discipline",
        "A function signature must not mix unit suffixes within one "
        "dimension (e.g. _us with _ms).",
        check_units_discipline,
    ),
    Rule(
        "no-mutable-default",
        "No mutable default argument values.",
        check_no_mutable_default,
    ),
    Rule(
        "sim-yield-only",
        "Simulator processes may only yield Event/Process waitables.",
        check_sim_yield_only,
    ),
) + tuple(ATOMICITY_RULES) + tuple(SCHEMA_RULES)

_RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in ALL_RULES}


def rule_names() -> List[str]:
    return [rule.name for rule in ALL_RULES]
