"""Runtime checking of the RFP protocol state machine (paper §3.2).

:class:`RfpInvariantChecker` subscribes to a :class:`repro.sim.Tracer`
and validates every traced protocol event against the paper's rules:

1. **Result-ready ordering** — a client may only *commit* a fetched
   response after the server published it (payload first, header-with-
   parity last).  A fetch that returns data before the result-ready
   header write is the torn-read bug class one-sided designs are prone
   to (§3.1).
2. **Retry bound** — a switch to server-reply mode happens only after
   the in-flight call burned at least ``R`` failed fetches *and* the
   client saw ``consecutive_slow_calls`` slow calls in a row (§3.2).
3. **Fetch size** — every first fetch reads exactly ``F`` bytes and a
   remainder read moves only the bytes beyond ``F``, within the response
   buffer (§3.2's Eq. 1 accounting depends on this).
4. **Mode legality** — transitions follow the two-state machine of
   ``repro/core/mode.py``: ``REMOTE_FETCH → SERVER_REPLY`` only on slow
   streaks, ``SERVER_REPLY → REMOTE_FETCH`` only after a fast reply; the
   published mode flag always matches the client's decision, and the
   server never pushes a reply to a remote-fetching client.
5. **NIC accounting** (:meth:`check_nic_accounting`) — the server's NIC
   op counters must agree with the traced protocol: out-bound ops equal
   pushed replies (zero while every client remote-fetches — the paper's
   "server sends nothing" claim, §2.2/Fig. 5), in-bound ops equal
   requests + fetches + flag writes.

The checker collects violations by default so a full run can be audited
post-hoc; construct with ``halt_on_violation=True`` to raise at the
exact simulated time the protocol breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import RfpConfig
from repro.core.headers import RESPONSE_HEADER_BYTES
from repro.core.mode import Mode
from repro.errors import ReproError
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["InvariantViolation", "RfpInvariantChecker", "ClusterInvariantChecker"]


class InvariantViolation(ReproError):
    """An RFP protocol invariant was broken during a simulation."""


@dataclass
class _ClientState:
    """Checker-side view of one ⟨client, server⟩ connection."""

    mode: Mode = Mode.REMOTE_FETCH
    server_mode: Mode = Mode.REMOTE_FETCH
    inflight_seq: Optional[int] = None
    fetch_reads: int = 0
    slow_streak: int = 0
    published_seq: Optional[int] = None
    published_size: int = 0
    published_time_us: float = 0.0
    pushed_seq: Optional[int] = None
    # Totals for NIC accounting.
    requests_sent: int = 0
    fetch_reads_total: int = 0
    remainder_reads_total: int = 0
    flags_published: int = 0
    replies_pushed: int = 0


class RfpInvariantChecker:
    """Validates traced RFP protocol events against the §3.2 rules."""

    def __init__(
        self,
        config: Optional[RfpConfig] = None,
        halt_on_violation: bool = False,
        initial_mode: Mode = Mode.REMOTE_FETCH,
    ) -> None:
        """``initial_mode`` is :attr:`Mode.REMOTE_FETCH` for RFP (paper
        default); pass :attr:`Mode.SERVER_REPLY` when checking the pinned
        ServerReply baseline, whose channels never write a mode flag."""
        self.config = config if config is not None else RfpConfig()
        self.halt_on_violation = halt_on_violation
        self.initial_mode = initial_mode
        self.violations: List[str] = []
        self.events_checked = 0
        self._clients: Dict[object, _ClientState] = {}
        self._handlers: Dict[str, Callable[[_ClientState, TraceEvent], None]] = {
            "request_sent": self._on_request_sent,
            "fetch_read": self._on_fetch_read,
            "remainder_read": self._on_remainder_read,
            "fetch_success": self._on_fetch_success,
            "mode_switch": self._on_mode_switch,
            "flag_published": self._on_flag_published,
            "reply_received": self._on_reply_received,
            "call_done": self._on_call_done,
            "response_published": self._on_response_published,
            "reply_pushed": self._on_reply_pushed,
            "mode_flag": self._on_mode_flag,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, tracer: Tracer) -> "RfpInvariantChecker":
        """Subscribe to ``tracer``; returns self for chaining."""
        tracer.subscribe(self.observe)
        return self

    def observe(self, event: TraceEvent) -> None:
        """Tracer observer entry point; dispatches one protocol event."""
        if event.category not in ("rfp.client", "rfp.server"):
            return
        handler = self._handlers.get(event.label)
        if handler is None:
            return
        key = (
            event.data.get("channel")
            if event.category == "rfp.client"
            else event.data.get("client")
        )
        if key is None:
            return
        state = self._clients.get(key)
        if state is None:
            state = self._clients[key] = _ClientState(
                mode=self.initial_mode, server_mode=self.initial_mode
            )
        self.events_checked += 1
        handler(state, event)

    def _violate(self, event: TraceEvent, message: str) -> None:
        record = f"t={event.at_us:.3f} [{event.label}] {message}"
        self.violations.append(record)
        if self.halt_on_violation:
            raise InvariantViolation(record)

    # ------------------------------------------------------------------
    # Client-side events
    # ------------------------------------------------------------------

    def _on_request_sent(self, state: _ClientState, event: TraceEvent) -> None:
        seq = event.data["seq"]
        if state.inflight_seq is not None:
            self._violate(
                event,
                f"request seq={seq} sent while seq={state.inflight_seq} "
                "is still in flight",
            )
        state.inflight_seq = seq
        state.fetch_reads = 0
        state.requests_sent += 1

    def _on_fetch_read(self, state: _ClientState, event: TraceEvent) -> None:
        seq, size = event.data["seq"], event.data["bytes"]
        if state.mode is not Mode.REMOTE_FETCH:
            self._violate(
                event, f"remote fetch issued while in {state.mode.name} mode"
            )
        if seq != state.inflight_seq:
            self._violate(
                event,
                f"fetch for seq={seq} but in-flight call is "
                f"seq={state.inflight_seq}",
            )
        if size != self.config.fetch_size:
            self._violate(
                event,
                f"fetch read of {size} B violates the F={self.config.fetch_size} "
                "B fetch-size bound",
            )
        state.fetch_reads += 1
        state.fetch_reads_total += 1
        attempt = event.data.get("attempt")
        if attempt is not None and attempt != state.fetch_reads:
            self._violate(
                event,
                f"fetch attempt numbered {attempt}, observed "
                f"{state.fetch_reads} reads this call",
            )

    def _on_remainder_read(self, state: _ClientState, event: TraceEvent) -> None:
        size = event.data["bytes"]
        upper = self.config.response_buffer_bytes - self.config.fetch_size
        if not 0 < size <= upper:
            self._violate(
                event,
                f"remainder read of {size} B outside (0, {upper}] "
                "(response buffer minus F)",
            )
        state.remainder_reads_total += 1

    def _on_fetch_success(self, state: _ClientState, event: TraceEvent) -> None:
        seq = event.data["seq"]
        if state.published_seq != seq:
            self._violate(
                event,
                f"client committed fetched response for seq={seq} before the "
                "server published it (result-ready ordering; last published: "
                f"seq={state.published_seq})",
            )
        attempts = event.data.get("attempts")
        if attempts is not None and attempts != state.fetch_reads:
            self._violate(
                event,
                f"call reported {attempts} fetch attempts, checker observed "
                f"{state.fetch_reads}",
            )
        failed = state.fetch_reads - 1
        if failed >= self.config.retry_bound:
            state.slow_streak += 1
        else:
            state.slow_streak = 0

    def _on_mode_switch(self, state: _ClientState, event: TraceEvent) -> None:
        target = event.data.get("to")
        if target == Mode.SERVER_REPLY.name:
            if state.mode is not Mode.REMOTE_FETCH:
                self._violate(
                    event,
                    f"switch to SERVER_REPLY from {state.mode.name} "
                    "(legal only from REMOTE_FETCH)",
                )
            if state.fetch_reads < self.config.retry_bound:
                self._violate(
                    event,
                    f"switched to SERVER_REPLY after only {state.fetch_reads} "
                    f"failed fetches (retry bound R={self.config.retry_bound})",
                )
            if state.slow_streak + 1 < self.config.consecutive_slow_calls:
                self._violate(
                    event,
                    f"switched to SERVER_REPLY on slow-call streak "
                    f"{state.slow_streak + 1} < "
                    f"{self.config.consecutive_slow_calls}",
                )
            state.mode = Mode.SERVER_REPLY
            state.slow_streak = 0
        elif target == Mode.REMOTE_FETCH.name:
            if state.mode is not Mode.SERVER_REPLY:
                self._violate(
                    event,
                    f"switch to REMOTE_FETCH from {state.mode.name} "
                    "(legal only from SERVER_REPLY)",
                )
            threshold = self.config.switch_back_process_time_us
            if state.published_time_us >= threshold:
                self._violate(
                    event,
                    "switched back to REMOTE_FETCH although the last response "
                    f"took {state.published_time_us:.3f} µs "
                    f"(threshold {threshold} µs)",
                )
            state.mode = Mode.REMOTE_FETCH
        else:
            self._violate(event, f"unknown mode-switch target {target!r}")

    def _on_flag_published(self, state: _ClientState, event: TraceEvent) -> None:
        flagged = event.data.get("mode")
        state.flags_published += 1
        if flagged != state.mode.name:
            self._violate(
                event,
                f"mode flag announces {flagged} but the client decided "
                f"{state.mode.name}",
            )

    def _on_reply_received(self, state: _ClientState, event: TraceEvent) -> None:
        seq, size = event.data["seq"], event.data["bytes"]
        if state.published_seq != seq:
            self._violate(
                event,
                f"client accepted a reply for seq={seq}; server's latest "
                f"published response is seq={state.published_seq}",
            )
        elif size != state.published_size:
            self._violate(
                event,
                f"reply for seq={seq} carried {size} B, server published "
                f"{state.published_size} B",
            )
        if state.pushed_seq != seq:
            self._violate(
                event,
                f"client received a reply for seq={seq} the server never "
                f"pushed (last push: seq={state.pushed_seq})",
            )

    def _on_call_done(self, state: _ClientState, event: TraceEvent) -> None:
        seq = event.data["seq"]
        if seq != state.inflight_seq:
            self._violate(
                event,
                f"call_done for seq={seq}, in-flight call is "
                f"seq={state.inflight_seq}",
            )
        state.inflight_seq = None

    # ------------------------------------------------------------------
    # Server-side events
    # ------------------------------------------------------------------

    def _on_response_published(
        self, state: _ClientState, event: TraceEvent
    ) -> None:
        seq = event.data["seq"]
        expected = (state.published_seq or 0) + 1
        if seq != expected:
            self._violate(
                event,
                f"server published response seq={seq}, expected {expected} "
                "(responses must be per-client monotonic)",
            )
        state.published_seq = seq
        state.published_size = event.data["bytes"]
        state.published_time_us = event.data.get("response_time_us", 0.0)

    def _on_reply_pushed(self, state: _ClientState, event: TraceEvent) -> None:
        seq, size = event.data["seq"], event.data["bytes"]
        if state.server_mode is not Mode.SERVER_REPLY:
            self._violate(
                event,
                f"server pushed a reply (seq={seq}) to a client whose flag "
                f"says {state.server_mode.name} — remote-fetch clients must "
                "see a server that sends nothing",
            )
        if seq != state.published_seq:
            self._violate(
                event,
                f"server pushed seq={seq} but last published is "
                f"seq={state.published_seq}",
            )
        elif size != state.published_size + RESPONSE_HEADER_BYTES:
            self._violate(
                event,
                f"pushed reply of {size} B != published payload "
                f"{state.published_size} B + {RESPONSE_HEADER_BYTES} B header",
            )
        state.pushed_seq = seq
        state.replies_pushed += 1

    def _on_mode_flag(self, state: _ClientState, event: TraceEvent) -> None:
        flagged = event.data.get("mode")
        if flagged == state.server_mode.name:
            self._violate(
                event,
                f"mode flag write repeats the current server-side mode "
                f"{flagged} (flags must alternate)",
            )
        state.server_mode = (
            Mode.SERVER_REPLY
            if flagged == Mode.SERVER_REPLY.name
            else Mode.REMOTE_FETCH
        )

    # ------------------------------------------------------------------
    # Post-run checks
    # ------------------------------------------------------------------

    def check_nic_accounting(
        self,
        server: object,
        expect_inbound_only: bool = False,
        strict_inbound: bool = True,
    ) -> None:
        """Compare the server NIC's op counters with the traced protocol.

        ``expect_inbound_only`` asserts the paradigm's headline claim —
        while every client remote-fetches, the server NIC issues nothing.
        ``strict_inbound`` additionally requires the in-bound op count to
        match the traced client activity exactly; disable it when
        untraced clients share the server.
        """
        nic = server.machine.rnic  # type: ignore[attr-defined]
        pushed = sum(s.replies_pushed for s in self._clients.values())
        if nic.outbound_ops != pushed:
            self.violations.append(
                f"NIC accounting: server NIC issued {nic.outbound_ops} "
                f"out-bound ops, trace shows {pushed} pushed replies"
            )
        if expect_inbound_only and nic.outbound_ops != 0:
            self.violations.append(
                f"NIC accounting: expected an in-bound-only server NIC, "
                f"found {nic.outbound_ops} out-bound ops"
            )
        if strict_inbound:
            expected_in = sum(
                s.requests_sent
                + s.fetch_reads_total
                + s.remainder_reads_total
                + s.flags_published
                for s in self._clients.values()
            )
            if nic.inbound_ops != expected_in:
                self.violations.append(
                    f"NIC accounting: server NIC served {nic.inbound_ops} "
                    f"in-bound ops, trace accounts for {expected_in} "
                    "(requests + fetches + remainders + flag writes)"
                )
        if self.halt_on_violation and self.violations:
            raise InvariantViolation(self.violations[-1])

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if self.violations:
            summary = "\n  ".join(self.violations)
            raise InvariantViolation(
                f"{len(self.violations)} RFP invariant violation(s):\n  {summary}"
            )

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RfpInvariantChecker(clients={len(self._clients)}, "
            f"events={self.events_checked}, violations={len(self.violations)})"
        )


class ClusterInvariantChecker:
    """Validates traced ``cluster``-category events from
    :mod:`repro.cluster` against the layer's routing/failover rules.

    Invariants:

    1. **Route health** — operations are routed only to shards the
       membership currently considers ``HEALTHY``; a route to a
       ``SUSPECT`` or ``DEAD`` shard means a router ignored the failure
       detector.
    2. **Status machine** — ``suspect`` only from healthy, ``recovered``
       only from suspect (``DEAD`` is sticky), ``dead`` never twice.
    3. **Failover discipline** — a ``failover`` event names a shard that
       was declared ``dead`` first, happens at most once per live
       incarnation of a shard, and its successor list excludes the dead
       shard; the paired ``rebalance`` event agrees on the survivor set.
    4. **Post-failover silence** — once a shard failed over, no further
       operation is routed to it until a ``handoff`` re-admits it.
    5. **Rejoin discipline** — ``rejoin`` is legal only from ``DEAD``
       (the repair path never shortcuts the failure detector); a
       re-declared ``dead`` aborts the recovery.
    6. **Transfer watermark** — ``transfer`` batches are legal only
       while the shard is ``RECOVERING``, come from a live donor that is
       not the shard itself (``HEALTHY`` or transiently ``SUSPECT`` —
       suspicion is a reversible hint; ``DEAD``/``RECOVERING`` shards
       cannot donate), never shrink the transfer ``target`` (catch-up
       writes may grow it), and advance the ``watermark`` monotonically
       up to ``target``.  A ``transfer_replan`` event — emitted when the
       ring changes under a live transfer — re-bases both bounds and is
       itself legal only while ``RECOVERING``.
    7. **Handoff completeness** — ``handoff`` is legal only from
       ``RECOVERING``, only at ``watermark == target`` (the shard caught
       up on every range it owns plus writes accepted meanwhile), and
       its restored ring must contain the shard.  A route to a
       ``RECOVERING`` shard is flagged as a read below the watermark.
    8. **Vnode-migration discipline** — ``migrate_start`` requires a
       ``HEALTHY`` recipient with no migration already in flight and
       live donors distinct from it; ``migrate_batch`` shares the
       transfer watermark rules (monotone, never past a never-shrinking
       target) and requires the recipient to still be ``HEALTHY`` —
       unlike recovery, both ends of a rebalance serve live traffic
       throughout; ``migrate_cutover`` is legal only at
       ``watermark == target`` (flipping token ownership earlier would
       leave the moved ranges' keys unroutable to their data mid-move);
       ``migrate_abort`` closes an open migration with no status
       requirement (any membership transition is a sanctioned trigger).
    9. **Transaction discipline** — a ``txn_begin`` id is never reused;
       ``txn_lock`` grants belong to an open transaction, never exceed
       its declared key count, and arrive in strictly ascending key
       order (the sorted-bytes acquisition order that makes deadlock
       impossible — the hex encoding preserves it); ``txn_commit`` is
       legal only when every declared key was locked
       (commit-only-when-all-locked) and must report the same lock
       count the trace granted; ``txn_abort`` closes an open
       transaction.  Lock leases still open after a run are a leak —
       :meth:`assert_no_leaked_leases` audits them at teardown.

    Like :class:`RfpInvariantChecker`, violations are collected by
    default; ``halt_on_violation=True`` raises at the exact simulated
    time the rule breaks.
    """

    _HEALTHY, _SUSPECT, _DEAD = "HEALTHY", "SUSPECT", "DEAD"
    _RECOVERING = "RECOVERING"

    def __init__(self, halt_on_violation: bool = False) -> None:
        self.halt_on_violation = halt_on_violation
        self.violations: List[str] = []
        self.events_checked = 0
        self._status: Dict[str, str] = {}
        self._failed_over: set = set()
        self.routes_per_shard: Dict[str, int] = {}
        #: Last seen (watermark, target) per RECOVERING shard.
        self._transfer_progress: Dict[str, Tuple[int, int]] = {}
        #: Last seen (watermark, target) per vnode-migration recipient.
        self._migrations: Dict[str, Tuple[int, int]] = {}
        #: Open txn -> declared key count (from txn_begin).
        self._txn_declared: Dict[int, int] = {}
        #: Open txn -> hex keys locked so far, in grant order.
        self._txn_locked: Dict[int, List[str]] = {}
        #: Every txn id ever closed (commit or abort) — ids never recur.
        self._txn_closed: set = set()
        self._handlers: Dict[str, Callable[[TraceEvent], None]] = {
            "route": self._on_route,
            "suspect": self._on_suspect,
            "recovered": self._on_recovered,
            "dead": self._on_dead,
            "failover": self._on_failover,
            "rebalance": self._on_rebalance,
            "rejoin": self._on_rejoin,
            "transfer": self._on_transfer,
            "transfer_replan": self._on_transfer_replan,
            "handoff": self._on_handoff,
            "transfer_abort": self._on_transfer_abort,
            "migrate_start": self._on_migrate_start,
            "migrate_batch": self._on_migrate_batch,
            "migrate_cutover": self._on_migrate_cutover,
            "migrate_abort": self._on_migrate_abort,
            "txn_begin": self._on_txn_begin,
            "txn_lock": self._on_txn_lock,
            "txn_commit": self._on_txn_commit,
            "txn_abort": self._on_txn_abort,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, tracer: Tracer) -> "ClusterInvariantChecker":
        """Subscribe to ``tracer``; returns self for chaining."""
        tracer.subscribe(self.observe)
        return self

    def observe(self, event: TraceEvent) -> None:
        """Tracer observer entry point; dispatches one cluster event."""
        if event.category != "cluster":
            return
        handler = self._handlers.get(event.label)
        if handler is None:
            return
        self.events_checked += 1
        handler(event)

    def _violate(self, event: TraceEvent, message: str) -> None:
        record = f"t={event.at_us:.3f} [{event.label}] {message}"
        self.violations.append(record)
        if self.halt_on_violation:
            raise InvariantViolation(record)

    def _state(self, shard: str) -> str:
        return self._status.setdefault(shard, self._HEALTHY)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_route(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        self.routes_per_shard[shard] = self.routes_per_shard.get(shard, 0) + 1
        status = self._state(shard)
        if status == self._RECOVERING:
            watermark, target = self._transfer_progress.get(shard, (0, 0))
            self._violate(
                event,
                f"operation routed to RECOVERING shard {shard!r} below "
                f"its watermark ({watermark}/{target} keys transferred)",
            )
        elif status != self._HEALTHY:
            self._violate(
                event,
                f"operation routed to shard {shard!r} while it is {status}",
            )
        if shard in self._failed_over:
            self._violate(
                event,
                f"operation routed to shard {shard!r} after its failover",
            )

    def _on_suspect(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        status = self._state(shard)
        if status != self._HEALTHY:
            self._violate(
                event, f"shard {shard!r} marked SUSPECT from {status}"
            )
        self._status[shard] = self._SUSPECT

    def _on_recovered(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        status = self._state(shard)
        if status != self._SUSPECT:
            self._violate(
                event,
                f"shard {shard!r} recovered from {status} "
                "(legal only from SUSPECT; DEAD is sticky)",
            )
        self._status[shard] = self._HEALTHY

    def _on_dead(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        if self._state(shard) == self._DEAD:
            self._violate(event, f"shard {shard!r} declared dead twice")
        self._status[shard] = self._DEAD

    def _on_failover(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        successors = [s for s in event.data.get("successors", "").split(",") if s]
        if self._state(shard) != self._DEAD:
            self._violate(
                event,
                f"failover for shard {shard!r} which was never declared dead",
            )
        if shard in self._failed_over:
            self._violate(event, f"second failover for shard {shard!r}")
        if shard in successors:
            self._violate(
                event,
                f"failover successors for {shard!r} include the dead shard",
            )
        self._failed_over.add(shard)

    def _on_rebalance(self, event: TraceEvent) -> None:
        removed = event.data["removed"]
        survivors = [s for s in event.data.get("survivors", "").split(",") if s]
        if removed not in self._failed_over:
            self._violate(
                event,
                f"ring rebalance removed {removed!r} without a failover",
            )
        if removed in survivors:
            self._violate(
                event,
                f"rebalance survivor set still contains the removed "
                f"shard {removed!r}",
            )

    def _on_rejoin(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        status = self._state(shard)
        if status != self._DEAD:
            self._violate(
                event,
                f"shard {shard!r} rejoined from {status} "
                "(repair must not shortcut the failure detector)",
            )
        self._status[shard] = self._RECOVERING
        self._transfer_progress[shard] = (0, 0)

    def _check_donor(
        self, event: TraceEvent, what: str, shard: str, donor: str
    ) -> None:
        """Shared donor rule for recovery transfers and vnode moves."""
        if donor == shard:
            self._violate(
                event, f"shard {shard!r} cannot donate ranges to itself"
            )
        elif self._state(donor) not in (self._HEALTHY, self._SUSPECT):
            # SUSPECT is a reversible hint (one op timeout under load
            # heals on the next beat); a suspected donor still owns its
            # ranges and donates legally.  DEAD/RECOVERING cannot.
            self._violate(
                event,
                f"{what} donor {donor!r} is {self._state(donor)} "
                "(only live shards donate)",
            )

    def _advance_progress(
        self,
        event: TraceEvent,
        table: Dict[str, Tuple[int, int]],
        what: str,
        shard: str,
        watermark: int,
        target: int,
    ) -> None:
        """Shared monotone-watermark rule for both migration clients.

        The target may *grow* between batches (catch-up writes extend
        the plan) but can never shrink — keys don't un-own themselves —
        and the watermark only advances, never past the target.
        """
        last_watermark, last_target = table.get(shard, (0, 0))
        if target < last_target:
            self._violate(
                event,
                f"{what} target for {shard!r} shrank "
                f"{last_target} -> {target}",
            )
        if watermark < last_watermark:
            self._violate(
                event,
                f"{what} watermark for {shard!r} regressed "
                f"{last_watermark} -> {watermark}",
            )
        if watermark > target:
            self._violate(
                event,
                f"{what} watermark for {shard!r} overflows its target "
                f"({watermark} > {target})",
            )
        table[shard] = (watermark, target)

    def _on_transfer(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        donor = event.data.get("donor", "")
        watermark = int(event.data.get("watermark", 0))
        target = int(event.data.get("target", 0))
        status = self._state(shard)
        if status != self._RECOVERING:
            self._violate(
                event,
                f"transfer batch for shard {shard!r} while it is {status}",
            )
        self._check_donor(event, "transfer", shard, donor)
        self._advance_progress(
            event, self._transfer_progress, "transfer", shard, watermark, target
        )

    def _on_transfer_replan(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        watermark = int(event.data.get("watermark", 0))
        target = int(event.data.get("target", 0))
        status = self._state(shard)
        if status != self._RECOVERING:
            self._violate(
                event,
                f"transfer re-plan for shard {shard!r} while it is {status}",
            )
        if watermark > target:
            self._violate(
                event,
                f"re-planned watermark for {shard!r} overflows its target "
                f"({watermark} > {target})",
            )
        # The ring changed under the transfer, so the plan was rebuilt
        # against it; the re-based pair becomes the new monotonicity
        # baseline (a shrinking target is legal only through this event).
        self._transfer_progress[shard] = (watermark, target)

    def _on_handoff(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        watermark = int(event.data.get("watermark", 0))
        target = int(event.data.get("target", 0))
        ring = [s for s in event.data.get("ring", "").split(",") if s]
        status = self._state(shard)
        if status != self._RECOVERING:
            self._violate(
                event, f"handoff for shard {shard!r} while it is {status}"
            )
        if watermark != target:
            self._violate(
                event,
                f"handoff for shard {shard!r} below its watermark "
                f"({watermark}/{target} keys transferred)",
            )
        if ring and shard not in ring:
            self._violate(
                event,
                f"handoff ring for {shard!r} does not contain the shard",
            )
        self._status[shard] = self._HEALTHY
        self._failed_over.discard(shard)
        self._transfer_progress.pop(shard, None)

    def _on_transfer_abort(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        # An abort is legal only after the membership re-declared the
        # shard DEAD (the only abort trigger); the ring was never
        # touched, so the donors keep ownership.
        status = self._state(shard)
        if status != self._DEAD:
            self._violate(
                event,
                f"transfer abort for shard {shard!r} while it is "
                f"{status} (aborts follow a re-declared death)",
            )
        self._transfer_progress.pop(shard, None)

    def _on_migrate_start(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        donors = [s for s in event.data.get("donors", "").split(",") if s]
        target = int(event.data.get("target", 0))
        status = self._state(shard)
        if status != self._HEALTHY:
            self._violate(
                event,
                f"vnode migration onto shard {shard!r} while it is {status} "
                "(rebalancing only moves ranges between healthy shards)",
            )
        if shard in self._migrations:
            self._violate(
                event,
                f"second vnode migration onto {shard!r} while one is open",
            )
        for donor in donors:
            self._check_donor(event, "migration", shard, donor)
        self._migrations[shard] = (0, target)

    def _on_migrate_batch(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        donor = event.data.get("donor", "")
        watermark = int(event.data.get("watermark", 0))
        target = int(event.data.get("target", 0))
        if shard not in self._migrations:
            self._violate(
                event,
                f"migration batch for {shard!r} without a migrate_start",
            )
        status = self._state(shard)
        if status != self._HEALTHY:
            # Unlike a RECOVERING rejoiner, a rebalance recipient keeps
            # serving its existing ranges throughout the move.
            self._violate(
                event,
                f"migration batch onto shard {shard!r} while it is {status}",
            )
        self._check_donor(event, "migration", shard, donor)
        self._advance_progress(
            event, self._migrations, "migration", shard, watermark, target
        )

    def _on_migrate_cutover(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        watermark = int(event.data.get("watermark", 0))
        target = int(event.data.get("target", 0))
        if shard not in self._migrations:
            self._violate(
                event,
                f"migration cutover for {shard!r} without a migrate_start",
            )
        status = self._state(shard)
        if status != self._HEALTHY:
            self._violate(
                event,
                f"migration cutover onto shard {shard!r} while it is {status}",
            )
        if watermark != target:
            # The no-key-unroutable-mid-move invariant: flipping token
            # ownership before every moved range is resident would route
            # reads to a shard that does not hold the data yet.
            self._violate(
                event,
                f"migration cutover for shard {shard!r} below its "
                f"watermark ({watermark}/{target} keys transferred)",
            )
        self._migrations.pop(shard, None)

    def _on_migrate_abort(self, event: TraceEvent) -> None:
        shard = event.data["shard"]
        # Unlike a recovery abort (legal only after a re-declared
        # death), *any* membership transition sanctions a vnode-move
        # abort — the move is pure optimization and always yields to
        # the correctness machinery — so no status is required.  The
        # ring was never touched; donors keep ownership.
        if shard not in self._migrations:
            self._violate(
                event,
                f"migration abort for {shard!r} without a migrate_start",
            )
        self._migrations.pop(shard, None)

    def _on_txn_begin(self, event: TraceEvent) -> None:
        txn = event.data["txn"]
        if txn in self._txn_declared or txn in self._txn_closed:
            self._violate(event, f"txn id {txn} reused")
        self._txn_declared[txn] = event.data["keys"]
        self._txn_locked[txn] = []

    def _on_txn_lock(self, event: TraceEvent) -> None:
        txn = event.data["txn"]
        locked = self._txn_locked.get(txn)
        if locked is None:
            self._violate(event, f"lock granted to txn {txn} which is not open")
            return
        key = event.data["key"]
        if locked and key <= locked[-1]:
            # Hex is 2 chars/byte with a fixed digit order, so string
            # comparison here is bytewise comparison of the raw keys.
            self._violate(
                event,
                f"txn {txn} locked key {key} after {locked[-1]} — "
                "deterministic (sorted-key) lock ordering violated",
            )
        locked.append(key)
        if event.data["order"] != len(locked):
            self._violate(
                event,
                f"txn {txn} lock order {event.data['order']} but the trace "
                f"granted {len(locked)} locks",
            )
        if len(locked) > self._txn_declared.get(txn, 0):
            self._violate(
                event,
                f"txn {txn} locked {len(locked)} keys but declared only "
                f"{self._txn_declared.get(txn, 0)}",
            )

    def _on_txn_commit(self, event: TraceEvent) -> None:
        txn = event.data["txn"]
        locked = self._txn_locked.get(txn)
        if locked is None:
            self._violate(event, f"commit of txn {txn} which is not open")
            return
        declared = self._txn_declared.get(txn, 0)
        if len(locked) != declared:
            self._violate(
                event,
                f"txn {txn} commits with only {len(locked)}/{declared} "
                "participants locked — commit requires every declared "
                "key locked",
            )
        if event.data["locks"] != len(locked):
            self._violate(
                event,
                f"txn {txn} commit reports {event.data['locks']} locks "
                f"held but the trace granted {len(locked)}",
            )
        self._close_txn(txn)

    def _on_txn_abort(self, event: TraceEvent) -> None:
        txn = event.data["txn"]
        if txn not in self._txn_locked:
            self._violate(event, f"abort of txn {txn} which is not open")
            return
        self._close_txn(txn)

    def _close_txn(self, txn: int) -> None:
        self._txn_declared.pop(txn, None)
        self._txn_locked.pop(txn, None)
        self._txn_closed.add(txn)

    # ------------------------------------------------------------------
    # Post-run checks
    # ------------------------------------------------------------------

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if self.violations:
            summary = "\n  ".join(self.violations)
            raise InvariantViolation(
                f"{len(self.violations)} cluster invariant violation(s):"
                f"\n  {summary}"
            )

    def open_lock_leases(self) -> List[Tuple[int, str]]:
        """(txn, hex key) for every lock granted but never released by a
        commit or abort — leaked leases, if the run is over."""
        return [
            (txn, key)
            for txn in sorted(self._txn_locked)
            for key in self._txn_locked[txn]
        ]

    def assert_no_leaked_leases(self) -> None:
        """Raise :class:`InvariantViolation` on any still-open lock lease.

        Teardown audit (see ``tests/cluster/conftest.py``): every
        transaction a test opens must have closed — the lock-table
        analogue of the ``Membership.unsubscribe`` listener audit.
        """
        leaked = self.open_lock_leases()
        if leaked:
            summary = ", ".join(f"txn {txn} key {key}" for txn, key in leaked)
            raise InvariantViolation(
                f"{len(leaked)} leaked lock lease(s) after run: {summary}"
            )

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterInvariantChecker(shards={len(self._status)}, "
            f"events={self.events_checked}, violations={len(self.violations)})"
        )
