"""``python -m repro.lint [paths...]`` — run the determinism lint.

Exits 0 when the tree is clean, 1 when any violation is found, 2 on
usage errors.  With no paths, lints ``src`` and ``benchmarks`` relative
to the current directory (the repository layout).

Unless ``--select`` narrows the run, the trace-schema registry is also
cross-checked against the runtime invariant checkers (see
:func:`repro.lint.schema.check_registry_coverage`); inconsistencies are
reported as ``trace-registry`` findings.

``--json`` prints the findings as a JSON array (one object per
violation with ``path``/``line``/``col``/``rule``/``message`` keys) for
tooling; exit codes are unchanged.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.base import Violation
from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, rule_names
from repro.lint.schema import check_registry_coverage

_DEFAULT_PATHS = ("src", "benchmarks")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism lint for the RFP reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit violations as a JSON array instead of text",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        help="report '# lint: disable' pragmas that suppress nothing",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:20s} {rule.description}")
        return 0

    rules = None
    if args.select:
        wanted = {name.strip() for name in args.select.split(",") if name.strip()}
        unknown = wanted - set(rule_names())
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}\n"
                f"available: {', '.join(rule_names())}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in ALL_RULES if rule.name in wanted]

    paths: List[str] = args.paths or [p for p in _DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print("no paths given and no src/benchmarks here", file=sys.stderr)
        return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(
        paths,
        rules=rules,
        warn_unused_suppressions=args.warn_unused_suppressions,
    )
    if rules is None:
        # Full runs also prove the registry itself is consistent with
        # the runtime checkers — a declared-but-unhandled phase is as
        # much a lint failure as a bad call site.
        violations.extend(
            Violation("repro/lint/schema.py", 1, 0, "trace-registry", problem)
            for problem in check_registry_coverage()
        )

    if args.json:
        print(json.dumps([v.as_dict() for v in violations], indent=2))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    checked = "all rules" if rules is None else f"{len(rules)} selected rule(s)"
    if violations:
        print(f"\n{len(violations)} violation(s) ({checked})")
        return 1
    print(f"clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
