"""``python -m repro.lint [paths...]`` — run the determinism lint.

Exits 0 when the tree is clean, 1 when any violation is found, 2 on
usage errors.  With no paths, lints ``src`` and ``benchmarks`` relative
to the current directory (the repository layout).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, rule_names

_DEFAULT_PATHS = ("src", "benchmarks")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism lint for the RFP reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:20s} {rule.description}")
        return 0

    rules = None
    if args.select:
        wanted = {name.strip() for name in args.select.split(",") if name.strip()}
        unknown = wanted - set(rule_names())
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}\n"
                f"available: {', '.join(rule_names())}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in ALL_RULES if rule.name in wanted]

    paths: List[str] = args.paths or [p for p in _DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print("no paths given and no src/benchmarks here", file=sys.stderr)
        return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(paths, rules=rules)
    for violation in violations:
        print(violation.format())
    checked = "all rules" if rules is None else f"{len(rules)} selected rule(s)"
    if violations:
        print(f"\n{len(violations)} violation(s) ({checked})")
        return 1
    print(f"clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
