"""Static determinism lint and runtime RFP protocol invariant checking.

Three layers guard the promises the reproduction rests on:

- :mod:`repro.lint.rules` / :mod:`repro.lint.engine` — an AST lint that
  walks the source tree and reports determinism hazards (wall-clock
  reads, global RNG state, float time equality, mixed unit suffixes,
  mutable defaults, non-event yields in simulator processes) with
  ``file:line`` positions.  Run it with ``python -m repro.lint``.
- :mod:`repro.lint.atomicity` / :mod:`repro.lint.schema` — the
  cross-yield analyses layered on top: a call graph proving declared
  ``@atomic_section`` regions never reach a ``yield``, a stale-snapshot
  (cross-yield read-modify-write) detector, and a trace-phase schema
  registry that validates every ``tracer.record`` call site against the
  declared vocabulary.
- :mod:`repro.lint.invariants` — :class:`~repro.sim.trace.Tracer`
  observers that check every simulated RFP request against the paper's
  §3.2 state machine while the simulation runs
  (:class:`RfpInvariantChecker`), and every ``repro.cluster`` routing/
  failover decision against the cluster layer's rules
  (:class:`ClusterInvariantChecker`).

See ``docs/lint.md`` for the rule catalogue and the invariant list.
"""

from repro.lint.base import FileContext, Rule, Violation
from repro.lint.callgraph import ProjectContext, ProjectIndex
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.invariants import (
    ClusterInvariantChecker,
    InvariantViolation,
    RfpInvariantChecker,
)
from repro.lint.rules import ALL_RULES, rule_names
from repro.lint.schema import (
    TRACE_HELPERS,
    TRACE_SCHEMA,
    check_registry_coverage,
    collect_record_call_sites,
)

__all__ = [
    "ALL_RULES",
    "FileContext",
    "ProjectContext",
    "ProjectIndex",
    "Rule",
    "TRACE_HELPERS",
    "TRACE_SCHEMA",
    "Violation",
    "check_registry_coverage",
    "collect_record_call_sites",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_names",
    "InvariantViolation",
    "RfpInvariantChecker",
    "ClusterInvariantChecker",
]
