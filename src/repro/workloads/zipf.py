"""Exact Zipf(s) sampling over a finite key population.

The paper's skewed workload draws keys from a Zipf distribution with
parameter 0.99 (YCSB's default), under which "the most popular key is
about 10^5 times more often [requested] than the average key" for the
128M-key population.  The sampler precomputes the normalized CDF once
(O(N) setup, 8 bytes/rank) and draws by binary search, so sampling is
exact, vectorizable, and deterministic given a generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Ranks ``0..population-1`` with P(rank k) ∝ 1/(k+1)^s."""

    def __init__(self, population: int, exponent: float = 0.99) -> None:
        if population < 1:
            raise WorkloadError(f"population must be >= 1, got {population}")
        if exponent < 0:
            raise WorkloadError(f"exponent must be >= 0, got {exponent}")
        self.population = population
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, population + 1, dtype=np.float64), exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` ranks (rank 0 is the hottest key)."""
        uniforms = rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left")

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.population:
            raise WorkloadError(f"rank {rank} out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def hot_to_mean_ratio(self) -> float:
        """How much hotter the top key is than the average key — the
        paper quotes ~1e5 for Zipf(.99) over its population."""
        return self.probability(0) * self.population
