"""Exact Zipf(s) sampling over a finite key population.

The paper's skewed workload draws keys from a Zipf distribution with
parameter 0.99 (YCSB's default), under which "the most popular key is
about 10^5 times more often [requested] than the average key" for the
128M-key population.  The sampler precomputes the normalized CDF once
(O(N) setup, 8 bytes/rank) and draws by binary search, so sampling is
exact, vectorizable, and deterministic given a generator.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ZipfSampler", "pin_hot_ranks"]

K = TypeVar("K")


class ZipfSampler:
    """Ranks ``0..population-1`` with P(rank k) ∝ 1/(k+1)^s."""

    def __init__(self, population: int, exponent: float = 0.99) -> None:
        if population < 1:
            raise WorkloadError(f"population must be >= 1, got {population}")
        if exponent < 0:
            raise WorkloadError(f"exponent must be >= 0, got {exponent}")
        self.population = population
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, population + 1, dtype=np.float64), exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` ranks (rank 0 is the hottest key)."""
        uniforms = rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left")

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.population:
            raise WorkloadError(f"rank {rank} out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def hot_to_mean_ratio(self) -> float:
        """How much hotter the top key is than the average key — the
        paper quotes ~1e5 for Zipf(.99) over its population."""
        return self.probability(0) * self.population


def pin_hot_ranks(
    keys: Sequence[K],
    owner_of: Callable[[K], str],
    shard: str,
    hot_ranks: int,
) -> List[K]:
    """Rotate ``keys`` so the ``hot_ranks`` hottest Zipf ranks land on
    ``shard``.

    A :class:`ZipfSampler` draws *ranks*; which shard gets hammered
    depends on which keys sit at the low ranks.  This helper pins that
    choice deterministically: it stably reorders ``keys`` so positions
    ``0..hot_ranks-1`` (the hot set) are all keys ``owner_of`` places on
    ``shard``, with every other key following in original order.  Used
    to set up the skew scenario for the rebalance bench — and for any
    future antagonist workload that needs a tenant's hot set aimed at a
    single shard — without inventing new keys or touching the hash ring.

    ``owner_of`` is typically ``ring.lookup``; raises if the shard does
    not own at least ``hot_ranks`` of the given keys.
    """
    if hot_ranks < 1:
        raise WorkloadError(f"hot_ranks must be >= 1, got {hot_ranks}")
    hot = [key for key in keys if owner_of(key) == shard]
    if len(hot) < hot_ranks:
        raise WorkloadError(
            f"shard {shard!r} owns only {len(hot)} of {len(keys)} keys, "
            f"cannot pin {hot_ranks} hot ranks onto it"
        )
    cold = [key for key in keys if owner_of(key) != shard]
    return hot[:hot_ranks] + cold + hot[hot_ranks:]
