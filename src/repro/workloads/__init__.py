"""YCSB-style workload generation (paper §4.2).

The paper drives every experiment with YCSB-generated key-value
workloads: 16-byte keys, mostly 32-byte values (Facebook-realistic),
GET fractions of 95/50/5%, and either uniform or Zipf(0.99)-skewed key
popularity.  This package reproduces those generators deterministically:

- :mod:`~repro.workloads.zipf` — an exact, precomputed-CDF Zipf sampler,
- :mod:`~repro.workloads.keys` — fixed-width key encoding,
- :mod:`~repro.workloads.value_sizes` — value-size distributions,
- :mod:`~repro.workloads.ycsb` — the workload spec + operation stream.
"""

from repro.workloads.keys import KeySpace
from repro.workloads.value_sizes import (
    FacebookValues,
    FixedValues,
    UniformValues,
    ValueSizeDistribution,
)
from repro.workloads.traces import read_trace, record_workload, write_trace
from repro.workloads.ycsb import Operation, WorkloadSpec, YcsbWorkload, ycsb_preset
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "FacebookValues",
    "FixedValues",
    "KeySpace",
    "Operation",
    "UniformValues",
    "ValueSizeDistribution",
    "WorkloadSpec",
    "YcsbWorkload",
    "ZipfSampler",
    "read_trace",
    "record_workload",
    "write_trace",
    "ycsb_preset",
]
