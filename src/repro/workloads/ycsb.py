"""The YCSB-style workload: spec, dataset, and operation streams.

A :class:`WorkloadSpec` captures one experimental condition of §4
(record count, GET fraction, key distribution, value sizes); a
:class:`YcsbWorkload` turns it into a preloadable dataset plus
per-client-thread operation iterators.  Each client thread gets its own
named RNG stream, so runs are deterministic and adding clients never
perturbs existing streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.random import RandomStreams
from repro.workloads.keys import KeySpace
from repro.workloads.value_sizes import FixedValues, ValueSizeDistribution
from repro.workloads.zipf import ZipfSampler

__all__ = ["Operation", "WorkloadSpec", "YcsbWorkload", "ycsb_preset"]


class Operation(NamedTuple):
    """One client operation: a GET (value is None) or a PUT."""

    is_get: bool
    key: bytes
    value: Optional[bytes]


@dataclass(frozen=True)
class WorkloadSpec:
    """One experimental condition.

    The paper's default: uniform, read-intensive (95% GET), 16-byte
    keys, 32-byte values.  ``distribution`` is ``"uniform"`` or
    ``"zipfian"`` (Zipf parameter 0.99, §4.2).
    """

    records: int = 100_000
    key_bytes: int = 16
    value_sizes: ValueSizeDistribution = field(default_factory=FixedValues)
    get_fraction: float = 0.95
    distribution: str = "uniform"
    zipf_exponent: float = 0.99
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise WorkloadError(f"get fraction must be in [0,1]: {self.get_fraction}")
        if self.distribution not in ("uniform", "zipfian"):
            raise WorkloadError(f"unknown distribution {self.distribution!r}")
        if self.records < 1:
            raise WorkloadError(f"records must be >= 1, got {self.records}")

    def describe(self) -> str:
        return (
            f"{self.records} records, {int(self.get_fraction * 100)}% GET, "
            f"{self.distribution}, values {self.value_sizes.label}"
        )


#: The standard YCSB core-workload mixes expressible with GET/PUT.
#: (D's "latest" distribution and E's scans have no counterpart in the
#: paper's GET/PUT interface; F's read-modify-write is a driver-level
#: GET+PUT of the same key and is exposed as its 50/50 mix here.)
_YCSB_PRESETS = {
    "A": dict(get_fraction=0.50, distribution="zipfian"),
    "B": dict(get_fraction=0.95, distribution="zipfian"),
    "C": dict(get_fraction=1.00, distribution="zipfian"),
    "F": dict(get_fraction=0.50, distribution="zipfian"),
}


def ycsb_preset(letter: str, records: int = 100_000, seed: int = 42) -> WorkloadSpec:
    """The standard YCSB core workload mixes (A/B/C/F) as specs."""
    preset = _YCSB_PRESETS.get(letter.upper())
    if preset is None:
        raise WorkloadError(
            f"no YCSB preset {letter!r}; available: {sorted(_YCSB_PRESETS)}"
        )
    return WorkloadSpec(records=records, seed=seed, **preset)


class YcsbWorkload:
    """Deterministic dataset + operation streams for one spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.keys = KeySpace(spec.records, spec.key_bytes)
        self.streams = RandomStreams(seed=spec.seed)
        self._zipf = (
            ZipfSampler(spec.records, spec.zipf_exponent)
            if spec.distribution == "zipfian"
            else None
        )
        # Keys are shuffled once so that Zipf rank 0 is not key index 0;
        # matches YCSB's hashed key ordering.
        order_rng = self.streams.stream("key-order")
        self._rank_to_index = order_rng.permutation(spec.records)

    # ------------------------------------------------------------------
    # Dataset
    # ------------------------------------------------------------------

    def dataset(self) -> Iterator[tuple]:
        """(key, value) pairs to preload before measurement."""
        rng = self.streams.stream("dataset-values")
        for index in range(self.spec.records):
            yield self.keys.key(index), self._value(rng)

    # ------------------------------------------------------------------
    # Operation streams
    # ------------------------------------------------------------------

    def operations(self, client_name: str) -> Iterator[Operation]:
        """An infinite operation stream for one client thread."""
        rng = self.streams.stream(f"ops.{client_name}")
        spec = self.spec
        while True:
            key = self.keys.key(self._pick_index(rng))
            if rng.random() < spec.get_fraction:
                yield Operation(is_get=True, key=key, value=None)
            else:
                yield Operation(is_get=False, key=key, value=self._value(rng))

    def _pick_index(self, rng: np.random.Generator) -> int:
        if self._zipf is None:
            return int(rng.integers(0, self.spec.records))
        rank = int(self._zipf.sample(rng, 1)[0])
        return int(self._rank_to_index[rank])

    def _value(self, rng: np.random.Generator) -> bytes:
        return bytes(self.spec.value_sizes.draw(rng))

    def result_sizes(self, samples: int = 2000) -> list:
        """Sampled GET-result sizes (feed to the §3.2 pre-run sampler)."""
        rng = self.streams.stream("result-size-sample")
        return [self.spec.value_sizes.draw(rng) for _ in range(samples)]
