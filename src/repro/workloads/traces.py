"""Record and replay operation traces.

Comparing systems on *statistically identical* workloads is usually
enough, but replaying the *exact same* operation sequence removes the
last nuisance variable (and lets externally-captured traces drive the
simulator).  Traces are stored in a compact binary framing:

``u8 kind | u16 key_len | key | u32 value_len | value``

with ``kind`` 0 for GET (``value_len`` = 0) and 1 for PUT.
"""

from __future__ import annotations

import io
import itertools
import struct
from typing import BinaryIO, Iterable, Iterator, Union

from repro.errors import WorkloadError
from repro.workloads.ycsb import Operation, YcsbWorkload

__all__ = ["write_trace", "read_trace", "record_workload"]

_FRAME_HEAD = struct.Struct("<BHI")
_GET_KIND = 0
_PUT_KIND = 1
_MAGIC = b"RFPT\x01"


def write_trace(operations: Iterable[Operation], sink: Union[str, BinaryIO]) -> int:
    """Serialize ``operations``; returns the number written.

    ``sink`` is a path or a binary file object.
    """
    owned = isinstance(sink, str)
    stream: BinaryIO = open(sink, "wb") if owned else sink
    count = 0
    try:
        stream.write(_MAGIC)
        for operation in operations:
            value = operation.value if operation.value is not None else b""
            if operation.is_get and operation.value is not None:
                raise WorkloadError("GET operations carry no value")
            kind = _GET_KIND if operation.is_get else _PUT_KIND
            stream.write(_FRAME_HEAD.pack(kind, len(operation.key), len(value)))
            stream.write(operation.key)
            stream.write(value)
            count += 1
    finally:
        if owned:
            stream.close()
    return count


def read_trace(source: Union[str, BinaryIO]) -> Iterator[Operation]:
    """Yield the operations of a trace, in recorded order."""
    owned = isinstance(source, str)
    stream: BinaryIO = open(source, "rb") if owned else source
    try:
        magic = stream.read(len(_MAGIC))
        if magic != _MAGIC:
            raise WorkloadError(f"not an RFP trace (magic {magic!r})")
        while True:
            head = stream.read(_FRAME_HEAD.size)
            if not head:
                return
            if len(head) < _FRAME_HEAD.size:
                raise WorkloadError("truncated trace frame header")
            kind, key_len, value_len = _FRAME_HEAD.unpack(head)
            if kind not in (_GET_KIND, _PUT_KIND):
                raise WorkloadError(f"unknown trace frame kind {kind}")
            key = stream.read(key_len)
            value = stream.read(value_len)
            if len(key) < key_len or len(value) < value_len:
                raise WorkloadError("truncated trace frame body")
            if kind == _GET_KIND:
                yield Operation(is_get=True, key=key, value=None)
            else:
                yield Operation(is_get=False, key=key, value=value)
    finally:
        if owned:
            stream.close()


def record_workload(
    workload: YcsbWorkload, client_name: str, count: int, sink: Union[str, BinaryIO]
) -> int:
    """Capture ``count`` operations of one client stream into a trace."""
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    operations = itertools.islice(workload.operations(client_name), count)
    return write_trace(operations, sink)
