"""Fixed-width key encoding (the paper's 16-byte keys)."""

from __future__ import annotations

from repro.errors import WorkloadError

__all__ = ["KeySpace"]


class KeySpace:
    """Maps dense indices 0..count-1 to fixed-width byte keys."""

    def __init__(self, count: int, key_bytes: int = 16, prefix: bytes = b"k") -> None:
        if count < 1:
            raise WorkloadError(f"key count must be >= 1, got {count}")
        if key_bytes < len(prefix) + len(str(count - 1)):
            raise WorkloadError(
                f"{key_bytes}-byte keys cannot index {count} records"
            )
        self.count = count
        self.key_bytes = key_bytes
        self.prefix = prefix
        self._digits = key_bytes - len(prefix)

    def key(self, index: int) -> bytes:
        """The fixed-width key for ``index``."""
        if not 0 <= index < self.count:
            raise WorkloadError(f"index {index} out of range [0, {self.count})")
        return self.prefix + str(index).zfill(self._digits).encode()

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return (self.key(i) for i in range(self.count))
