"""Value-size distributions.

The paper mostly uses 32-byte values ("the value size of more than half
of key-value pairs in Facebook's data center is around 20 bytes"), a
uniform 32 B–8 KB mix for the variable-size experiment (§4.4.3), and
size sweeps for Figs. 11/17/18.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "ValueSizeDistribution",
    "FixedValues",
    "UniformValues",
    "FacebookValues",
]


class ValueSizeDistribution:
    """Interface: ``draw(rng) -> int`` plus a descriptive ``label``."""

    label = "abstract"

    def draw(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


class FixedValues(ValueSizeDistribution):
    """Every value has the same size (the paper's default: 32 B)."""

    def __init__(self, size: int = 32) -> None:
        if size < 0:
            raise WorkloadError(f"value size must be >= 0, got {size}")
        self.size = size
        self.label = f"fixed({size}B)"

    def draw(self, rng: np.random.Generator) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


class UniformValues(ValueSizeDistribution):
    """Sizes uniform in [low, high] — the paper's 32 B..8 KB mix."""

    def __init__(self, low: int = 32, high: int = 8192) -> None:
        if not 0 <= low <= high:
            raise WorkloadError(f"invalid range [{low}, {high}]")
        self.low = low
        self.high = high
        self.label = f"uniform({low}..{high}B)"

    def draw(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class FacebookValues(ValueSizeDistribution):
    """A Facebook-like small-value mix (Atikoglu et al., SIGMETRICS'12):
    most values are a few tens of bytes with a light tail."""

    def __init__(self, median: int = 24, tail_mean: int = 300, tail_prob: float = 0.05):
        if median < 1 or tail_mean < 1 or not 0 <= tail_prob < 1:
            raise WorkloadError("invalid Facebook-like parameters")
        self.median = median
        self.tail_mean = tail_mean
        self.tail_prob = tail_prob
        self.label = f"facebook(~{median}B)"

    def draw(self, rng: np.random.Generator) -> int:
        if rng.random() < self.tail_prob:
            return 1 + int(rng.exponential(self.tail_mean))
        # Geometric-ish mass around the median.
        return max(1, int(rng.normal(self.median, self.median / 4)))

    def mean(self) -> float:
        return (1 - self.tail_prob) * self.median + self.tail_prob * self.tail_mean
