"""Applications built on the RFP RPC interface.

The paper's porting-cost claim (§1, Table 1) is that RFP "supports the
legacy RPC interfaces and hence avoids the need of redesigning
application-specific data structures".  This package demonstrates it
with a second application beyond Jakiro: a metrics/statistics service
(the intro's "applications with simple statistic operations") whose code
never mentions the transport — the same service runs over RFP or
server-reply by swapping one constructor argument, with zero changes to
the application logic.
"""

from repro.apps.stats_service import StatsClient, StatsService

__all__ = ["StatsClient", "StatsService"]
