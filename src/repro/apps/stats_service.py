"""A metrics/statistics RPC service — the paper's porting-cost demo.

Three remote functions over named metrics:

- ``RECORD(metric, value)`` — add one sample,
- ``QUERY(metric)`` → ``(count, total, minimum, maximum)``,
- ``RESET(metric)`` — clear a metric.

The application is written purely against the RPC stubs
(:mod:`repro.core.rpc`); the transport — RFP or server-reply — is picked
by a constructor argument and nothing else changes.  This is exactly the
paper's point: with RFP "applications that use traditional RPC can
remain largely unchanged" while gaining the in-bound-only result path.

Wire formats: ``u8 metric_len | metric | f64 value`` for RECORD,
``u8 metric_len | metric`` for QUERY/RESET; QUERY returns
``u64 count | f64 total | f64 min | f64 max``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.core.client import RfpClient
from repro.core.config import RfpConfig
from repro.core.rpc import RPC_APP_ERROR, RPC_OK, RpcClient, RpcServer
from repro.core.server import RfpServer
from repro.errors import ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer
from repro.sim.core import Simulator

__all__ = ["StatsService", "StatsClient", "MetricSnapshot"]

RECORD_FUNCTION = 10
QUERY_FUNCTION = 11
RESET_FUNCTION = 12

_METRIC_LEN = struct.Struct("<B")
_VALUE = struct.Struct("<d")
_SNAPSHOT = struct.Struct("<Qddd")

#: CPU cost model for the statistics handlers.
_RECORD_CPU_US = 0.12
_QUERY_CPU_US = 0.10


@dataclass(frozen=True)
class MetricSnapshot:
    """QUERY result for one metric."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _pack_metric(metric: bytes) -> bytes:
    if not metric:
        raise ProtocolError("empty metric name")
    if len(metric) > 0xFF:
        raise ProtocolError(f"metric name of {len(metric)} B exceeds 255")
    return _METRIC_LEN.pack(len(metric)) + metric


def _unpack_metric(arguments: bytes) -> Tuple[bytes, bytes]:
    if len(arguments) < _METRIC_LEN.size:
        raise ProtocolError("runt stats request")
    (length,) = _METRIC_LEN.unpack_from(arguments)
    end = _METRIC_LEN.size + length
    if len(arguments) < end:
        raise ProtocolError("truncated metric name")
    return arguments[_METRIC_LEN.size : end], arguments[end:]


class _Accumulator:
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


class StatsService:
    """The server side: transport-agnostic statistic aggregation.

    ``transport`` is ``"rfp"`` (default) or ``"serverreply"``; the
    application code below this constructor is identical for both.
    Metrics are partitioned across server threads EREW-style by metric
    hash, mirroring Jakiro's lock-free layout.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        threads: int = 4,
        transport: str = "rfp",
        config: Optional[RfpConfig] = None,
        name: str = "stats",
        tracer=None,
    ) -> None:
        """``tracer`` (a :class:`repro.sim.Tracer`) is forwarded to the
        server and — by default — every connected client, exactly as in
        :class:`~repro.kv.jakiro.Jakiro`, so one invariant checker can
        audit a whole stats run on either transport."""
        if transport not in ("rfp", "serverreply"):
            raise ProtocolError(f"unknown transport {transport!r}")
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.threads = threads
        self.tracer = tracer
        self._partitions: Dict[int, Dict[bytes, _Accumulator]] = {
            t: {} for t in range(threads)
        }
        rpc = RpcServer()
        rpc.register(RECORD_FUNCTION, self._handle_record)
        rpc.register(QUERY_FUNCTION, self._handle_query)
        rpc.register(RESET_FUNCTION, self._handle_reset)
        server_class = RfpServer if transport == "rfp" else ServerReplyServer
        self.server = server_class(
            sim,
            cluster,
            machine if machine is not None else cluster.server,
            rpc.handle,
            threads,
            config,
            name,
            tracer=tracer,
        )

    @staticmethod
    def partition_of(metric: bytes, threads: int) -> int:
        from repro.kv.store import key_hash

        return key_hash(metric) % threads

    def connect(
        self, machine: Machine, name: str = "", tracer=None
    ) -> "StatsClient":
        return StatsClient(self.sim, machine, self, name=name, tracer=tracer)

    # ------------------------------------------------------------------
    # Handlers (pure application logic; no transport awareness)
    # ------------------------------------------------------------------

    def _metrics_for(self, context) -> Dict[bytes, _Accumulator]:
        return self._partitions[context.thread_id]

    def _handle_record(self, arguments: bytes, context) -> Tuple[int, bytes, float]:
        metric, rest = _unpack_metric(arguments)
        if len(rest) != _VALUE.size:
            return RPC_APP_ERROR, b"bad value", 0.0
        (value,) = _VALUE.unpack(rest)
        self._metrics_for(context).setdefault(metric, _Accumulator()).add(value)
        return RPC_OK, b"", _RECORD_CPU_US

    def _handle_query(self, arguments: bytes, context) -> Tuple[int, bytes, float]:
        metric, _ = _unpack_metric(arguments)
        accumulator = self._metrics_for(context).get(metric)
        if accumulator is None:
            return RPC_OK, _SNAPSHOT.pack(0, 0.0, 0.0, 0.0), _QUERY_CPU_US
        return (
            RPC_OK,
            _SNAPSHOT.pack(
                accumulator.count,
                accumulator.total,
                accumulator.minimum,
                accumulator.maximum,
            ),
            _QUERY_CPU_US,
        )

    def _handle_reset(self, arguments: bytes, context) -> Tuple[int, bytes, float]:
        metric, _ = _unpack_metric(arguments)
        self._metrics_for(context).pop(metric, None)
        return RPC_OK, b"", _QUERY_CPU_US


class StatsClient:
    """The client stub; routes each metric to its owning server thread."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        service: StatsService,
        name: str = "",
        tracer=None,
    ) -> None:
        """``tracer`` defaults to the service-side tracer, so one tracer
        sees both halves of the protocol."""
        self.sim = sim
        self.service = service
        self.name = name or f"stats-client@{machine.name}"
        if tracer is None:
            tracer = service.tracer
        machine.rnic.register_issuer()
        client_class = (
            RfpClient if service.transport == "rfp" else ServerReplyClient
        )
        self._stubs = [
            RpcClient(
                client_class(
                    sim,
                    machine,
                    service.server,
                    name=f"{self.name}.p{thread_id}",
                    thread_id=thread_id,
                    register_issuer=False,
                    tracer=tracer,
                )
            )
            for thread_id in range(service.threads)
        ]

    def _stub(self, metric: bytes) -> RpcClient:
        return self._stubs[StatsService.partition_of(metric, self.service.threads)]

    def record(self, metric: bytes, value: float) -> Generator:
        """Process body: add one sample to ``metric``."""
        status, _ = yield from self._stub(metric).call(
            RECORD_FUNCTION, _pack_metric(metric) + _VALUE.pack(value)
        )
        if status != RPC_OK:
            raise ProtocolError(f"RECORD failed with status {status}")
        return None

    def query(self, metric: bytes) -> Generator:
        """Process body: fetch the metric's snapshot."""
        status, payload = yield from self._stub(metric).call(
            QUERY_FUNCTION, _pack_metric(metric)
        )
        if status != RPC_OK:
            raise ProtocolError(f"QUERY failed with status {status}")
        count, total, minimum, maximum = _SNAPSHOT.unpack(payload)
        return MetricSnapshot(count, total, minimum, maximum)

    def reset(self, metric: bytes) -> Generator:
        """Process body: clear the metric."""
        status, _ = yield from self._stub(metric).call(
            RESET_FUNCTION, _pack_metric(metric)
        )
        if status != RPC_OK:
            raise ProtocolError(f"RESET failed with status {status}")
        return None
