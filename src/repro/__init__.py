"""Reproduction of RFP (EuroSys 2017): remote-fetching RPC over RDMA.

Top-level convenience imports cover the objects a quickstart needs; the
full surface lives in the subpackages:

- :mod:`repro.sim` — the discrete-event engine,
- :mod:`repro.hw` — the simulated RDMA cluster,
- :mod:`repro.core` — the RFP paradigm itself,
- :mod:`repro.paradigms` — server-reply and server-bypass,
- :mod:`repro.kv` — Jakiro and the hash structures,
- :mod:`repro.baselines` — Pilaf, RDMA-Memcached, FaRM, HERD,
- :mod:`repro.apps` — the statistics service (porting demo),
- :mod:`repro.workloads` — YCSB-style generators and traces,
- :mod:`repro.analysis` — closed-form performance models,
- :mod:`repro.bench` — the figure/table reproduction harness.
"""

from repro.core import RfpClient, RfpConfig, RfpServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv import Jakiro
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CLUSTER_EUROSYS17",
    "Jakiro",
    "RfpClient",
    "RfpConfig",
    "RfpServer",
    "Simulator",
    "build_cluster",
    "__version__",
]
