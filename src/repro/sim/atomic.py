"""Atomic-section contract for simulator code.

A function decorated with :func:`atomic_section` promises that **no
simulated time passes inside it**: neither the function nor anything it
transitively calls may ``yield`` a simulator waitable.  The cluster
layer's correctness rests on a handful of such regions — the failover
ring surgery, the recovery handoff — whose "ring + membership + trace
with no intervening sim time" property used to live only in comments.

The contract is enforced twice:

1. **Statically** by :mod:`repro.lint.atomicity`: the lint builds a call
   graph over the analyzed files and proves that no transitive path out
   of a declared-atomic function reaches a ``yield``.  (A trailing
   ``# sim: atomic`` comment on the ``def`` line declares the same
   contract without importing this module — useful for scripts.)
2. **At runtime**, as defense in depth:

   - decorating a generator function raises immediately at import time
     (a ``yield`` added to a declared-atomic body is the exact bug the
     contract exists to stop — calling the "function" would silently
     just build a generator and run nothing);
   - a declared-atomic function that *returns* a generator raises when
     the guard is enabled (the same smuggled-yield bug one call level
     down);
   - while the flag-gated guard is enabled (:func:`enable_atomic_guard`)
     the engine refuses to advance any :class:`~repro.sim.core.Process`
     while an atomic section is open on the stack — a re-entrant
     ``run()`` or a direct process step from inside an atomic region is
     a bug, not a scheduling quirk.  The check sits in
     ``Process._step``, which every dispatch path funnels through:
     time-heap pops and zero-delay ready-deque drains alike.

The guard is off by default; the disabled-path cost is one flag check
per decorated call and one truthiness check per process step.
"""

from __future__ import annotations

import functools
import inspect
import types
from typing import Any, Callable, List, TypeVar, cast

__all__ = [
    "atomic_section",
    "enable_atomic_guard",
    "atomic_guard_enabled",
    "current_atomic_section",
    "is_atomic_section",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Flag-gated runtime guard (off by default; see :func:`enable_atomic_guard`).
_GUARD_ENABLED = False

#: Names of atomic sections currently executing (shared with
#: :mod:`repro.sim.core`, which refuses to step processes while it is
#: non-empty).  Only ever populated while the guard is enabled.
_ATOMIC_STACK: List[str] = []


def _simulation_error(message: str) -> Exception:
    # Imported lazily: core imports this module for the shared stack.
    from repro.sim.core import SimulationError

    return SimulationError(message)


def atomic_section(fn: F) -> F:
    """Declare that ``fn`` completes with no intervening simulated time.

    The static analyzer (``repro.lint.atomicity``) proves the no-yield
    property over the transitive call graph; this decorator is the
    runtime half of the contract (see the module docstring).
    """
    if inspect.isgeneratorfunction(fn) or inspect.isasyncgenfunction(fn):
        raise _simulation_error(
            f"atomic section {fn.__qualname__!r} is a generator function — "
            "a declared-atomic region must not contain yield"
        )

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not _GUARD_ENABLED:
            return fn(*args, **kwargs)
        _ATOMIC_STACK.append(fn.__qualname__)
        try:
            result = fn(*args, **kwargs)
        finally:
            _ATOMIC_STACK.pop()
        if isinstance(result, types.GeneratorType):
            raise _simulation_error(
                f"atomic section {fn.__qualname__!r} returned a generator — "
                "a yield was smuggled into its call path"
            )
        return result

    wrapper.__sim_atomic__ = True  # type: ignore[attr-defined]
    return cast(F, wrapper)


def enable_atomic_guard(enabled: bool = True) -> None:
    """Toggle the runtime guard (process-step refusal + generator-return
    detection).  Cheap enough for test suites; off by default so hot
    benchmark loops pay only a flag check."""
    global _GUARD_ENABLED
    _GUARD_ENABLED = enabled
    if not enabled:
        del _ATOMIC_STACK[:]


def atomic_guard_enabled() -> bool:
    """True while :func:`enable_atomic_guard` is in effect."""
    return _GUARD_ENABLED


def current_atomic_section() -> str:
    """Qualname of the innermost open atomic section ('' if none).

    Only meaningful while the guard is enabled — with it off, sections
    are never pushed onto the stack.
    """
    return _ATOMIC_STACK[-1] if _ATOMIC_STACK else ""


def is_atomic_section(fn: Callable[..., Any]) -> bool:
    """True for callables decorated with :func:`atomic_section`."""
    return bool(getattr(fn, "__sim_atomic__", False))
