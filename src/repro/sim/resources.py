"""Shared-resource primitives built on the event core.

Three abstractions cover everything the hardware model needs:

- :class:`Resource` — a counted semaphore with a FIFO wait queue.  Used for
  locks (e.g. RDMA-Memcached's global LRU lock) and bounded structures.
- :class:`Store` — an unbounded FIFO of items with blocking ``get``.  Used
  for message queues between simulated threads.
- :class:`ServiceStation` — a ``k``-server FIFO queueing station with
  *deterministic per-op service times* implemented without processes: each
  submission is assigned ``max(now, earliest_free_server) + service_time``
  in O(log k).  NIC pipelines, wire serialization, and DMA engines are all
  service stations, which keeps the event count per simulated RDMA
  operation small.

``Resource.request`` and ``Store.get`` grants that can complete
immediately ride the engine's zero-delay ready deque (any wait on an
already-triggered event does); station completions use the slotted
timeout fast path.  Neither costs a heap round trip on the common path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "ServiceStation"]


class Resource:
    """A counted resource with FIFO granting.

    Processes obtain a slot with ``yield resource.request()`` and must call
    :meth:`release` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.trigger()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one granted slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().trigger()
        else:
            self._in_use -= 1

    def locked(self) -> bool:
        """True when every slot is in use."""
        return self._in_use >= self.capacity


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks.  ``get`` returns an event that triggers with the
    next item (immediately if one is available).  Items are delivered in
    insertion order and each item is delivered exactly once.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def clear(self) -> None:
        """Drop all queued items without waking any blocked getter.

        Models a consumer rebooting with a volatile queue: whatever was
        deposited but not yet retrieved is lost; getters keep waiting for
        the next post-reboot ``put``.
        """
        self._items.clear()


class ServiceStation:
    """A ``k``-server FIFO queueing station with deterministic service.

    Submissions are served in arrival order by the earliest-free server.
    The station records busy time and operation count so utilization and
    served rate can be read out by the harness:

    - :attr:`operations` — number of completed/enqueued submissions,
    - :meth:`utilization` — busy time / (servers * elapsed).

    The implementation keeps a heap of per-server free times; no simulator
    processes are created, so a station costs one event per submission.
    """

    def __init__(self, sim: Simulator, servers: int = 1, name: str = "") -> None:
        if servers < 1:
            raise SimulationError(f"servers must be >= 1, got {servers}")
        self.sim = sim
        self.name = name
        self.servers = servers
        self._free_at: List[float] = [0.0] * servers
        heapq.heapify(self._free_at)
        self.operations = 0
        self.busy_time = 0.0

    def occupy(self, service_time: float) -> float:
        """Enqueue one op taking ``service_time``; returns its completion
        instant (absolute sim time) without arming any event.

        Service is deterministic, so the completion time is fully known at
        submission — callers that drive their own continuation (the verbs
        layer) schedule directly against the returned instant and skip an
        event round trip per pipeline transit.
        """
        if service_time < 0:
            raise SimulationError(f"negative service time: {service_time}")
        now = self.sim.now
        free_at = self._free_at
        if len(free_at) == 1:
            # Single-server station (every NIC pipeline): the heap is one
            # float, so skip the heapq round trip.
            free = free_at[0]
            start = now if now > free else free
            done_at = start + service_time
            free_at[0] = done_at
        else:
            start = max(now, heapq.heappop(free_at))
            done_at = start + service_time
            heapq.heappush(free_at, done_at)
        self.operations += 1
        self.busy_time += service_time
        return done_at

    def submit(self, service_time: float, value: Any = None) -> Event:
        """Enqueue one op taking ``service_time``; event fires at completion."""
        done_at = self.occupy(service_time)
        # timeout() is the engine's cheapest armed event (slotted fast
        # path, waiters resumed through the ready deque), and a station
        # completion is exactly an armed one-shot at ``done_at``.
        return self.sim.timeout(done_at - self.sim.now, value)

    def backlog(self) -> float:
        """Time until the earliest server becomes free (0 if idle)."""
        return max(0.0, min(self._free_at) - self.sim.now)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of server-time spent busy over ``elapsed`` (or sim.now)."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.servers * window))
