"""Deterministic discrete-event simulation engine.

This package is the substrate every other layer of the reproduction runs on.
It provides:

- :class:`~repro.sim.core.Simulator` — a calendar-queue event loop with
  generator-based processes (``yield`` an event to wait on it).
- :mod:`~repro.sim.resources` — FIFO resources, stores, and O(log k)
  multi-server service stations used to model NIC pipelines and locks.
- :mod:`~repro.sim.monitor` — counters, tallies, and throughput meters used
  by the benchmark harness.
- :mod:`~repro.sim.random` — named, reproducible RNG streams.

Simulated time is measured in **microseconds** throughout the project, so a
rate of ``1.0`` op per time unit equals one MOPS (million operations per
second).
"""

from repro.sim.atomic import (
    atomic_section,
    atomic_guard_enabled,
    current_atomic_section,
    enable_atomic_guard,
    is_atomic_section,
)
from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.monitor import Counter, Tally, ThroughputMeter, UtilizationMeter
from repro.sim.random import RandomStreams, seeded_rng, stable_hash
from repro.sim.resources import Resource, ServiceStation, Store
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Process",
    "RandomStreams",
    "Resource",
    "ServiceStation",
    "SimulationError",
    "Simulator",
    "Store",
    "Tally",
    "ThroughputMeter",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "UtilizationMeter",
    "atomic_guard_enabled",
    "atomic_section",
    "current_atomic_section",
    "enable_atomic_guard",
    "is_atomic_section",
    "seeded_rng",
    "stable_hash",
]
