"""Named, reproducible random-number streams.

Every stochastic component (workload generator, process-time jitter, client
think time, ...) draws from its own named stream so that adding a new
consumer never perturbs the draws of existing ones.  Streams are derived
from a root seed plus a stable hash of the stream name, so the same
``(seed, name)`` pair always yields the same sequence across runs and
machines.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "stable_hash", "seeded_rng"]


def stable_hash(name: str) -> int:
    """A process-independent 32-bit hash of ``name`` (unlike ``hash()``)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def seeded_rng(seed: int) -> np.random.Generator:
    """An explicitly seeded PCG64 generator — the only sanctioned way to
    construct a standalone generator outside :class:`RandomStreams`.

    Bit-identical to ``np.random.default_rng(seed)``, but importable only
    from here so the determinism lint (rule ``no-global-random``) can
    guarantee no component ever draws from unseeded or global RNG state.
    """
    return np.random.Generator(np.random.PCG64(seed))


class RandomStreams:
    """Factory of independent ``numpy.random.Generator`` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("workload.keys")
    >>> b = streams.stream("workload.keys")
    >>> a is b   # same name -> same generator instance
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self.seed, stable_hash(name)])
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RandomStreams":
        """A new factory whose streams are independent of this one's."""
        return RandomStreams(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
