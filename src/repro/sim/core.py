"""Event loop, events, and generator-based processes.

The design follows the classic calendar-queue discrete-event pattern:

- The :class:`Simulator` owns a binary heap of ``(time, seq, fn, args)``
  entries.  ``seq`` is a monotonically increasing tie-breaker, so callbacks
  scheduled for the same timestamp run in FIFO order and every run is
  deterministic.
- An :class:`Event` is a one-shot condition that processes can wait on.  It
  either *triggers* with a value or *fails* with an exception.
- A :class:`Process` wraps a generator.  The generator advances by yielding
  events (or other processes, which waits for their completion) and receives
  the event's value as the result of the ``yield`` expression.

Time is a ``float`` in microseconds by project convention.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from repro.sim.atomic import _ATOMIC_STACK

__all__ = [
    "SimulationError",
    "Simulator",
    "Event",
    "Process",
    "AnyOf",
    "AllOf",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine or for unhandled process failures."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    3.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """Return an event that triggers after ``delay`` time units."""
        event = Event(self)
        self.schedule(delay, event.trigger, value)
        return event

    def event(self) -> "Event":
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(
        self, generator: Generator[Any, Any, Any], name: str = ""
    ) -> "Process":
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, which makes throughput
        windows easy to reason about.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            heap = self._heap
            while heap:
                at, _seq, fn, args = heap[0]
                if until is not None and at > until:
                    break
                heapq.heappop(heap)
                self._now = at
                fn(*args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if drained."""
        return self._heap[0][0] if self._heap else None


class Event:
    """A one-shot condition that can be waited on by processes.

    An event is *pending* until :meth:`trigger` or :meth:`fail` is called,
    after which waiting on it resumes the waiter immediately (at the current
    simulated time).  A failure that is never observed by any waiter raises
    :class:`SimulationError` so that bugs do not pass silently.
    """

    __slots__ = ("sim", "_callbacks", "_done", "_value", "_exc", "_defused")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has either triggered or failed."""
        return self._done

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._done and self._exc is None

    @property
    def value(self) -> Any:
        """The trigger value (raises if the event failed or is pending)."""
        if not self._done:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its waiters."""
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            self.sim.schedule(0.0, callback, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters receive ``exc``."""
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            self._defused = True
            for callback in callbacks:
                self.sim.schedule(0.0, callback, self)
        else:
            # Give same-timestamp subscribers one chance to observe the
            # failure before we escalate it.
            self.sim.schedule(0.0, self._check_defused)
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(self)`` once the event completes."""
        if self._done:
            if self._exc is not None:
                self._defused = True
            self.sim.schedule(0.0, callback, self)
        else:
            assert self._callbacks is not None  # pending => list is live
            self._callbacks.append(callback)

    def _check_defused(self) -> None:
        if not self._defused:
            raise SimulationError("unhandled failure in event") from self._exc


class Process:
    """A running generator, advanced each time a yielded event completes.

    The generator may yield:

    - an :class:`Event` — resumes with ``event.value`` when it completes,
      or re-raises the failure exception inside the generator;
    - another :class:`Process` — resumes with that process's return value.

    The process itself exposes :attr:`done` (an event triggered with the
    generator's return value), so processes compose.
    """

    __slots__ = ("sim", "name", "_gen", "done")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.done = Event(sim)
        sim.schedule(0.0, self._step, None, None)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def value(self) -> Any:
        """Return value of the generator (raises if it failed/is running)."""
        return self.done.value

    def wait(self, callback: Callable[[Event], None]) -> None:
        """Subscribe ``callback`` to this process's completion event."""
        self.done.wait(callback)

    def _resume(self, event: Event) -> None:
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if _ATOMIC_STACK:
            # Only populated while repro.sim.atomic's guard is enabled: a
            # process advancing here means an atomic section re-entered
            # the engine (nested run(), direct step) — sim time would
            # pass inside a region that promised none does.
            raise SimulationError(
                f"process {self.name!r} stepped inside atomic section "
                f"{_ATOMIC_STACK[-1]!r}"
            )
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.done.trigger(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - escalated via event
            self.done.fail(error)
            return
        if isinstance(target, Process):
            target.done.wait(self._resume)
        elif isinstance(target, Event):
            target.wait(self._resume)
        else:
            self._step(
                None,
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected Event or Process"
                ),
            )


def AnyOf(sim: Simulator, waitables: Iterable[Union["Event", "Process"]]) -> Event:
    """Event that triggers when the *first* of ``waitables`` completes.

    The trigger value is ``(index, value)`` of the first completion.  If the
    first completion is a failure, the composite fails with that exception.
    """
    children = [w.done if isinstance(w, Process) else w for w in waitables]
    if not children:
        raise SimulationError("AnyOf requires at least one waitable")
    composite = Event(sim)

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if composite.triggered:
                if event._exc is not None:
                    event._defused = True
                return
            if event._exc is not None:
                composite.fail(event._exc)
            else:
                composite.trigger((index, event._value))

        return on_done

    for index, child in enumerate(children):
        child.wait(make_callback(index))
    return composite


def AllOf(sim: Simulator, waitables: Iterable[Union["Event", "Process"]]) -> Event:
    """Event that triggers when *all* ``waitables`` complete.

    The trigger value is the list of values in input order.  The first
    failure fails the composite.
    """
    children = [w.done if isinstance(w, Process) else w for w in waitables]
    composite = Event(sim)
    if not children:
        sim.schedule(0.0, composite.trigger, [])
        return composite
    results: List[Any] = [None] * len(children)
    remaining = [len(children)]

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if composite.triggered:
                if event._exc is not None:
                    event._defused = True
                return
            if event._exc is not None:
                composite.fail(event._exc)
                return
            results[index] = event._value
            remaining[0] -= 1
            if remaining[0] == 0:
                composite.trigger(list(results))

        return on_done

    for index, child in enumerate(children):
        child.wait(make_callback(index))
    return composite
