"""Event loop, events, and generator-based processes.

The design follows the classic calendar-queue discrete-event pattern,
split across two structures for speed:

- The :class:`Simulator` owns a binary heap of ``(time, seq, fn, args)``
  entries for *future* work.  ``seq`` is a monotonically increasing
  tie-breaker, so callbacks scheduled for the same timestamp run in FIFO
  order and every run is deterministic.
- Same-timestamp ("zero-delay") work — event triggers waking their
  waiters, process start steps, waits on already-completed events — goes
  to a plain FIFO **ready deque** instead of the heap.  Ready entries
  carry the same ``seq`` counter, and the run loop merges the two
  structures by ``(time, seq)``, so the global dispatch order is
  bit-for-bit identical to a pure-heap engine while the dominant
  same-timestamp traffic pays two deque operations instead of two
  ``O(log n)`` heap operations.
- An :class:`Event` is a one-shot condition that processes can wait on.
  It either *triggers* with a value or *fails* with an exception.
- A :class:`Timeout` is the fast path for ``yield sim.timeout(d)`` — by
  far the most common waitable.  It is an :class:`Event` subclass that
  skips the callbacks-list machinery: one slotted object, one heap entry
  armed at creation (so its ``seq`` matches the pure-Event engine), and
  waiter resumption through the ready deque.
- A :class:`Process` wraps a generator.  The generator advances by
  yielding events (or other processes, which waits for their completion)
  and receives the event's value as the result of the ``yield``
  expression.

``Simulator(reference=True)`` retains the original single-heap engine
(zero-delay entries heap-pushed, timeouts built from plain events).  It
exists so equivalence tests and the ``repro.bench speed`` suite can
prove the fast paths preserve ordering and measure what they save.

Time is a ``float`` in microseconds by project convention.
"""

from __future__ import annotations

import heapq
from collections import deque
from math import inf
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple, Union

from repro.sim.atomic import _ATOMIC_STACK

__all__ = [
    "SimulationError",
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine or for unhandled process failures."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    3.0

    Parameters
    ----------
    reference:
        When true, run the original pure-heap engine: zero-delay work is
        heap-pushed and :meth:`timeout` builds a plain :class:`Event`.
        Dispatch order is identical either way (the fast engine merges
        its ready deque into the heap order by ``(time, seq)``); the
        reference engine exists as the slow half of equivalence tests
        and speed benchmarks.
    """

    def __init__(self, reference: bool = False) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]] = []
        #: FIFO of ``(seq, fn, args)`` entries due at the current time.
        self._ready: Deque[Tuple[int, Callable[..., Any], Tuple[Any, ...]]] = deque()
        self._seq = 0
        self._running = False
        self.reference = reference
        self._fast = not reference
        #: Total callbacks dispatched across all ``run()`` calls.  The
        #: dispatch sequence is deterministic, so this count is too —
        #: the speed benchmarks report it and assert it matches between
        #: the fast and reference engines.
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        # Exact zero is an identity (same-timestamp work), not a
        # tolerance question: only literal 0.0 may skip the heap.
        if delay == 0.0 and self._fast:  # lint: disable=no-float-eq -- exact-zero identity routes to the ready deque
            self._ready.append((self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def _schedule_now(self, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current timestamp (FIFO).

        This is the internal zero-delay path used by event triggers,
        process starts, and waits on already-completed events.  In the
        fast engine it appends to the ready deque; in reference mode it
        heap-pushes a ``(now, seq)`` entry — both give the same order.
        """
        self._seq += 1
        if self._fast:
            self._ready.append((self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (self._now, self._seq, fn, args))

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """Return an event that triggers after ``delay`` time units."""
        if self._fast:
            return Timeout(self, delay, value)
        event = Event(self)
        self.schedule(delay, event.trigger, value)
        return event

    def event(self) -> "Event":
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(
        self, generator: Generator[Any, Any, Any], name: str = ""
    ) -> "Process":
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, which makes throughput
        windows easy to reason about.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        # Locals hoisted out of the hot loop: the ``until`` comparison
        # reduces to a float compare against ``limit`` (``inf`` when no
        # bound was given) and every container/function is bound once.
        limit = inf if until is None else until
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        now = self._now
        try:
            if limit >= now:
                while True:
                    if ready:
                        # Merge rule: a heap entry due *now* with a
                        # smaller seq than the oldest ready entry was
                        # scheduled earlier and must dispatch first;
                        # otherwise the ready FIFO is next.  Ready
                        # entries are always due at the current time
                        # (the clock only advances once both are
                        # drained), so no time comparison is needed.
                        if heap:
                            head = heap[0]
                            # Exact equality is the merge identity: a
                            # heap entry is "due now" only at the very
                            # timestamp it was keyed with.
                            if head[0] == now and head[1] < ready[0][0]:  # lint: disable=no-float-eq -- (time, seq) merge identity
                                heappop(heap)
                                dispatched += 1
                                head[2](*head[3])
                                continue
                        # No heap entry is due now, and none can appear
                        # while draining: every fast-mode heap push is
                        # strictly future (zero-delay work rides the
                        # deque), so the whole ready FIFO — including
                        # entries appended by the callbacks themselves —
                        # drains without re-peeking the heap.
                        while ready:
                            entry = popleft()
                            dispatched += 1
                            entry[1](*entry[2])
                        continue
                    if not heap:
                        break
                    head = heap[0]
                    at = head[0]
                    if at > limit:
                        break
                    heappop(heap)
                    self._now = now = at
                    dispatched += 1
                    head[2](*head[3])
            if until is not None and until > self._now:
                self._now = until
        finally:
            self.dispatched += dispatched
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if drained."""
        if self._ready:
            return self._now
        return self._heap[0][0] if self._heap else None


class Event:
    """A one-shot condition that can be waited on by processes.

    An event is *pending* until :meth:`trigger` or :meth:`fail` is called,
    after which waiting on it resumes the waiter immediately (at the current
    simulated time).  A failure that is never observed by any waiter raises
    :class:`SimulationError` so that bugs do not pass silently.
    """

    __slots__ = ("sim", "_callbacks", "_done", "_value", "_exc", "_defused")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has either triggered or failed."""
        return self._done

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._done and self._exc is None

    @property
    def value(self) -> Any:
        """The trigger value (raises if the event failed or is pending)."""
        if not self._done:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its waiters."""
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            sim = self.sim
            if sim._fast:
                # Inlined ready-deque append: this is the single
                # hottest scheduling site in event-heavy runs.
                ready = sim._ready
                seq = sim._seq
                for callback in callbacks:
                    seq += 1
                    ready.append((seq, callback, (self,)))
                sim._seq = seq
            else:
                for callback in callbacks:
                    sim._schedule_now(callback, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters receive ``exc``."""
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            self._defused = True
            schedule_now = self.sim._schedule_now
            for callback in callbacks:
                schedule_now(callback, self)
        else:
            # Give same-timestamp subscribers one chance to observe the
            # failure before we escalate it.
            self.sim._schedule_now(self._check_defused)
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(self)`` once the event completes."""
        if self._done:
            if self._exc is not None:
                self._defused = True
            sim = self.sim
            if sim._fast:
                # Wait-on-done rides the ready deque (inlined): this is
                # the immediate-grant path of resources and stores.
                sim._seq += 1
                sim._ready.append((sim._seq, callback, (self,)))
            else:
                sim._schedule_now(callback, self)
        else:
            assert self._callbacks is not None  # pending => list is live
            self._callbacks.append(callback)

    def _check_defused(self) -> None:
        if not self._defused:
            raise SimulationError("unhandled failure in event") from self._exc


class Timeout(Event):
    """Fast-path event armed to trigger after a fixed delay.

    ``yield sim.timeout(d)`` is the single most common operation in every
    benchmark, and the plain-:class:`Event` implementation paid an event
    allocation, a callbacks list, and a heap round trip per waiter wake.
    A ``Timeout`` is armed once at creation (one heap entry, carrying the
    creation-order ``seq`` so firing order among equal deadlines matches
    the reference engine exactly) and stores its waiter in a single slot;
    when it fires, waiters resume through the ready deque exactly where
    the reference engine's zero-delay entries would have run.

    The public :class:`Event` surface (``triggered``/``ok``/``value``,
    ``wait``, composites) behaves identically.  Manually triggering or
    failing a pending timeout is allowed, and — as with the reference
    engine, whose pre-armed trigger would collide at fire time — raises
    ``event triggered twice`` when the timer later fires.
    """

    __slots__ = ("_cb",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.sim = sim
        self._done = False
        self._value = value
        self._exc = None
        self._defused = False
        #: ``None`` (no waiter), a single callback, or a list of them.
        self._cb: Any = None
        # Inlined schedule(): a Timeout only ever exists in the fast
        # engine, so the mode branch reduces to the zero-delay test.
        sim._seq += 1
        if delay == 0.0:  # lint: disable=no-float-eq -- exact-zero identity routes to the ready deque
            sim._ready.append((sim._seq, self._fire, ()))
        else:
            heapq.heappush(sim._heap, (sim._now + delay, sim._seq, self._fire, ()))

    def _fire(self) -> None:
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        cb = self._cb
        if cb is None:
            return
        self._cb = None
        sim = self.sim
        if type(cb) is list:
            ready = sim._ready
            seq = sim._seq
            for callback in cb:
                seq += 1
                ready.append((seq, callback, (self,)))
            sim._seq = seq
        else:
            sim._seq += 1
            sim._ready.append((sim._seq, cb, (self,)))

    def trigger(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._value = value
        self._dispatch_waiters()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError("event triggered twice")
        self._done = True
        self._exc = exc
        if self._cb is not None:
            self._defused = True
            self._dispatch_waiters()
        else:
            self.sim._schedule_now(self._check_defused)
        return self

    def _dispatch_waiters(self) -> None:
        cb = self._cb
        if cb is None:
            return
        self._cb = None
        schedule_now = self.sim._schedule_now
        if type(cb) is list:
            for callback in cb:
                schedule_now(callback, self)
        else:
            schedule_now(cb, self)

    def wait(self, callback: Callable[["Event"], None]) -> None:
        if self._done:
            if self._exc is not None:
                self._defused = True
            sim = self.sim
            sim._seq += 1
            sim._ready.append((sim._seq, callback, (self,)))
            return
        cb = self._cb
        if cb is None:
            self._cb = callback
        elif type(cb) is list:
            cb.append(callback)
        else:
            self._cb = [cb, callback]


class Process:
    """A running generator, advanced each time a yielded event completes.

    The generator may yield:

    - an :class:`Event` — resumes with ``event.value`` when it completes,
      or re-raises the failure exception inside the generator;
    - another :class:`Process` — resumes with that process's return value.

    The process itself exposes :attr:`done` (an event triggered with the
    generator's return value), so processes compose.
    """

    __slots__ = ("sim", "name", "_gen", "done", "_on_done", "_timer_cb")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.done = Event(sim)
        # One bound method per process instead of one per yield.
        self._on_done: Callable[[Event], None] = self._resume
        self._timer_cb: Callable[[], None] = self._timer_fired
        sim._schedule_now(self._step, None, None)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def value(self) -> Any:
        """Return value of the generator (raises if it failed/is running)."""
        return self.done.value

    def wait(self, callback: Callable[[Event], None]) -> None:
        """Subscribe ``callback`` to this process's completion event."""
        self.done.wait(callback)

    def _resume(self, event: Event) -> None:
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event._value, None)

    def _timer_fired(self) -> None:
        # Fire half of ``yield <float>``: like an event-based timeout,
        # the timer entry itself is engine bookkeeping (dispatch one) and
        # the process resumes through the ready deque under a seq taken
        # at fire time (dispatch two) — the same two-seq pattern as the
        # reference engine's trigger-then-callback, so global order is
        # unchanged.
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, self._step, (None, None)))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if _ATOMIC_STACK:
            # Only populated while repro.sim.atomic's guard is enabled: a
            # process advancing here means an atomic section re-entered
            # the engine (nested run(), direct step) — sim time would
            # pass inside a region that promised none does.  The check
            # guards both dispatch paths: heap pops and ready-deque
            # drains land here alike.
            raise SimulationError(
                f"process {self.name!r} stepped inside atomic section "
                f"{_ATOMIC_STACK[-1]!r}"
            )
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.done.trigger(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - escalated via event
            self.done.fail(error)
            return
        # ``yield <float>`` is a plain delay: the timeout fast path with
        # no waitable object at all.  Hot model code (client spin loops,
        # server threads) yields its CPU charges directly as floats; the
        # reference engine expands the same yield into the pre-PR
        # event-based timeout, so both consume identical (time, seq)
        # slots and dispatch order is bit-for-bit unchanged.  Ints are
        # accepted too so hand-written configs with integral delays work.
        typ = type(target)
        if typ is float or typ is int:
            sim = self.sim
            if target < 0.0:
                self._step(
                    None,
                    SimulationError(
                        f"cannot schedule in the past (delay={target})"
                    ),
                )
            elif sim._fast:
                sim._seq += 1
                if target == 0.0:  # lint: disable=no-float-eq -- exact-zero identity routes to the ready deque
                    sim._ready.append((sim._seq, self._timer_cb, ()))
                else:
                    heapq.heappush(
                        sim._heap,
                        (sim._now + target, sim._seq, self._timer_cb, ()),
                    )
            else:
                sim.timeout(target).wait(self._on_done)
            return
        # A pending timeout with a free waiter slot is claimed inline —
        # same effect as ``wait()``, one call cheaper.
        if typ is Timeout:
            if not target._done and target._cb is None:
                target._cb = self._on_done
            else:
                target.wait(self._on_done)
        elif isinstance(target, Event):
            target.wait(self._on_done)
        elif isinstance(target, Process):
            target.done.wait(self._on_done)
        else:
            self._step(
                None,
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected Event or Process"
                ),
            )


def AnyOf(sim: Simulator, waitables: Iterable[Union["Event", "Process"]]) -> Event:
    """Event that triggers when the *first* of ``waitables`` completes.

    The trigger value is ``(index, value)`` of the first completion.  If the
    first completion is a failure, the composite fails with that exception.
    """
    children = [w.done if isinstance(w, Process) else w for w in waitables]
    if not children:
        raise SimulationError("AnyOf requires at least one waitable")
    composite = Event(sim)

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if composite.triggered:
                if event._exc is not None:
                    event._defused = True
                return
            if event._exc is not None:
                composite.fail(event._exc)
            else:
                composite.trigger((index, event._value))

        return on_done

    for index, child in enumerate(children):
        child.wait(make_callback(index))
    return composite


def AllOf(sim: Simulator, waitables: Iterable[Union["Event", "Process"]]) -> Event:
    """Event that triggers when *all* ``waitables`` complete.

    The trigger value is the list of values in input order.  The first
    failure fails the composite.
    """
    children = [w.done if isinstance(w, Process) else w for w in waitables]
    composite = Event(sim)
    if not children:
        # Guaranteed-immediate completion: ready-deque, not heap.
        sim._schedule_now(composite.trigger, [])
        return composite
    results: List[Any] = [None] * len(children)
    remaining = [len(children)]

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if composite.triggered:
                if event._exc is not None:
                    event._defused = True
                return
            if event._exc is not None:
                composite.fail(event._exc)
                return
            results[index] = event._value
            remaining[0] -= 1
            if remaining[0] == 0:
                composite.trigger(list(results))

        return on_done

    for index, child in enumerate(children):
        child.wait(make_callback(index))
    return composite
