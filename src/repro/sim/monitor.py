"""Measurement instruments for simulation runs.

The benchmark harness measures everything through four instruments:

- :class:`Counter` — monotone event counts with optional timestamping, used
  for throughput over a measurement window,
- :class:`Tally` — scalar samples (latencies, retry counts) with
  percentile/CDF readout,
- :class:`ThroughputMeter` — completions per microsecond over a window,
  reported directly in MOPS because project time units are microseconds,
- :class:`UtilizationMeter` — busy-time integration for CPU utilization
  figures (Fig. 15).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

__all__ = ["Counter", "Tally", "ThroughputMeter", "UtilizationMeter"]


class Counter:
    """A monotone counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Tally:
    """Collects scalar samples and reports order statistics.

    Samples are kept in full (runs in this project are bounded to a few
    hundred thousand samples), so percentiles are exact.

    Empty-sample readout is *defined*: every scalar readout
    (:meth:`mean`, :meth:`minimum`, :meth:`maximum`, :meth:`percentile`)
    raises :class:`ValueError` on an empty tally by default, or returns
    the ``default`` argument when one is given — reporting code that must
    survive idle instruments (an unloaded cluster shard, a warmup-only
    run) passes ``default=float("nan")`` and renders the NaN, instead of
    crashing mid-report.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, sample: float) -> None:
        self._samples.append(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        return self._samples

    def _empty(self, default: Optional[float]) -> float:
        if default is None:
            raise ValueError(f"tally {self.name!r} has no samples")
        return default

    def mean(self, default: Optional[float] = None) -> float:
        if not self._samples:
            return self._empty(default)
        return float(np.mean(self._samples))

    def minimum(self, default: Optional[float] = None) -> float:
        if not self._samples:
            return self._empty(default)
        return float(np.min(self._samples))

    def maximum(self, default: Optional[float] = None) -> float:
        if not self._samples:
            return self._empty(default)
        return float(np.max(self._samples))

    def percentile(self, p: float, default: Optional[float] = None) -> float:
        """Exact percentile, ``p`` in [0, 100]."""
        if not self._samples:
            return self._empty(default)
        return float(np.percentile(self._samples, p))

    def cdf(
        self, points: int = 100
    ) -> Tuple[NDArray[np.float64], NDArray[np.float64]]:
        """Return ``(values, cumulative_probability)`` for CDF plots."""
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        values = np.sort(np.asarray(self._samples, dtype=float))
        probs = np.arange(1, len(values) + 1) / len(values)
        if len(values) > points:
            idx = np.linspace(0, len(values) - 1, points).astype(int)
            values, probs = values[idx], probs[idx]
        return values, probs

    def histogram(self, bins: Sequence[float]) -> NDArray[np.intp]:
        counts, _ = np.histogram(self._samples, bins=np.asarray(bins, dtype=float))
        return counts


class ThroughputMeter:
    """Counts completions inside a measurement window and reports MOPS.

    ``record(now)`` marks one completion.  Completions before
    ``window_start`` (the warmup) or after ``window_end`` are ignored.
    """

    def __init__(
        self,
        window_start: float = 0.0,
        window_end: Optional[float] = None,
        name: str = "",
    ) -> None:
        self.name = name
        self.window_start = window_start
        self.window_end = window_end
        self.completions = 0
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None

    def record(self, now: float, amount: int = 1) -> None:
        if now < self.window_start:
            return
        if self.window_end is not None and now > self.window_end:
            return
        self.completions += amount
        if self.first_at is None:
            self.first_at = now
        self.last_at = now

    def mops(self, elapsed: Optional[float] = None) -> float:
        """Throughput in MOPS (ops per microsecond) over the window.

        ``elapsed`` overrides the window length, e.g. when a run was cut
        short by ``run(until=...)``.
        """
        if elapsed is None:
            if self.window_end is None:
                if self.last_at is None:
                    return 0.0
                elapsed = self.last_at - self.window_start
            else:
                elapsed = self.window_end - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.completions / elapsed


class UtilizationMeter:
    """Integrates busy time for one simulated thread or core.

    Usage: call ``begin_busy(now)`` / ``end_busy(now)`` around work, then
    read :meth:`utilization` over the measurement window.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    def begin_busy(self, now: float) -> None:
        if self._busy_since is not None:
            raise ValueError(f"{self.name!r}: begin_busy while already busy")
        self._busy_since = now

    def end_busy(self, now: float) -> None:
        if self._busy_since is None:
            raise ValueError(f"{self.name!r}: end_busy while not busy")
        self.busy_time += now - self._busy_since
        self._busy_since = None

    def add_busy(self, duration: float) -> None:
        """Credit ``duration`` of busy time directly (for charged costs)."""
        if duration < 0:
            raise ValueError(f"negative busy duration: {duration}")
        self.busy_time += duration

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` time units."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
