"""Structured event tracing for simulation runs.

A :class:`Tracer` collects timestamped, categorized events from any
instrumented component (the RFP client/server accept an optional tracer
and emit their protocol phases).  Traces answer "what exactly happened
to request #1293?" — the question throughput counters cannot.

Events are cheap named tuples; recording is O(1) and a category filter
plus an optional ring-buffer capacity keep long runs bounded.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Set,
)

from repro.errors import ReproError
from repro.sim.core import Simulator

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent(NamedTuple):
    """One recorded event."""

    at_us: float
    category: str
    label: str
    data: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceEvent` records from instrumented components.

    Parameters
    ----------
    sim:
        The simulator whose clock stamps the events.
    categories:
        If given, only these categories are recorded (cheap filtering at
        the source).
    capacity:
        If given, keep only the most recent ``capacity`` events.
    """

    def __init__(
        self,
        sim: Simulator,
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self._categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._counts: TallyCounter[str] = TallyCounter()
        self._observers: List[Callable[[TraceEvent], None]] = []

    def wants(self, category: str) -> bool:
        """True when this tracer records ``category`` (hot-path guard)."""
        return self._categories is None or category in self._categories

    def subscribe(self, observer: Callable[[TraceEvent], None]) -> None:
        """Register a live observer (e.g. an invariant checker).

        Observers see every event offered to :meth:`record` — before the
        category filter and unaffected by ring-buffer eviction — so a
        checker never misses a protocol step just because the stored
        trace is trimmed.
        """
        self._observers.append(observer)

    def record(self, category: str, label: str, **data: Any) -> None:
        """Record one event at the current simulated time."""
        if not self._observers and not self.wants(category):
            return
        event = TraceEvent(self.sim.now, category, label, data)
        for observer in self._observers:
            observer(event)
        if not self.wants(category):
            return
        self._events.append(event)
        self._counts[category] += 1

    # ------------------------------------------------------------------
    # Reading the trace
    # ------------------------------------------------------------------

    def events(
        self,
        category: Optional[str] = None,
        label: Optional[str] = None,
        since_us: float = 0.0,
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events, in time order."""
        return [
            event
            for event in self._events
            if event.at_us >= since_us
            and (category is None or event.category == category)
            and (label is None or event.label == label)
        ]

    def counts(self) -> Dict[str, int]:
        """Events recorded per category (including ring-evicted ones)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def format_lines(self, limit: int = 50) -> List[str]:
        """Human-readable tail of the trace."""
        tail = list(self._events)[-limit:]
        lines: List[str] = []
        for event in tail:
            details = " ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
            lines.append(
                f"t={event.at_us:10.3f}  [{event.category}] {event.label}"
                + (f"  {details}" if details else "")
            )
        return lines
