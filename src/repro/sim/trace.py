"""Structured event tracing for simulation runs.

A :class:`Tracer` collects timestamped, categorized events from any
instrumented component (the RFP client/server accept an optional tracer
and emit their protocol phases).  Traces answer "what exactly happened
to request #1293?" — the question throughput counters cannot.

Events are cheap named tuples; recording is O(1) and a category filter
plus an optional ring-buffer capacity keep long runs bounded.

Cost model (what one ``record()`` call pays):

- **Nobody listens** (``enabled=False`` and no observers): one
  truthiness check on a precomputed flag, then return.  Benches that
  only need a tracer to satisfy a component signature opt out this way.
- **Observers subscribed** (invariant checkers): every offered event is
  materialized and dispatched to every observer — observers always see
  100% of the stream, before the category filter, unaffected by
  sampling and ring-buffer eviction.
- **Storage**: events of wanted categories are counted exactly and
  stored every ``sample_every``-th occurrence (default 1 = store all).
  Sampling thins the ring buffer, never the counts and never the
  observers, so pinned event-count assertions stay exact.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Set,
)

from repro.errors import ReproError
from repro.sim.core import Simulator

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent(NamedTuple):
    """One recorded event."""

    at_us: float
    category: str
    label: str
    data: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceEvent` records from instrumented components.

    Parameters
    ----------
    sim:
        The simulator whose clock stamps the events.
    categories:
        If given, only these categories are recorded (cheap filtering at
        the source).
    capacity:
        If given, keep only the most recent ``capacity`` events.
    enabled:
        When false, nothing is counted or stored; subscribed observers
        still see every offered event.  A disabled tracer with no
        observers rejects every event with a single flag check, making
        invariant checking opt-in per bench instead of a per-op tax.
    sample_every:
        Store every Nth wanted event into the ring buffer (default 1 =
        store everything).  Counts stay exact and observers see 100%.
    """

    def __init__(
        self,
        sim: Simulator,
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
        *,
        enabled: bool = True,
        sample_every: int = 1,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ReproError(f"sample_every must be >= 1, got {sample_every}")
        self.sim = sim
        self._categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._counts: TallyCounter[str] = TallyCounter()
        self._observers: List[Callable[[TraceEvent], None]] = []
        self._enabled = bool(enabled)
        self._sample_every = int(sample_every)
        self._sample_skip = 0
        #: Hot-path guard: false only when a record() call could not
        #: possibly have an effect (disabled, no observers).
        self._hot = self._enabled

    @property
    def enabled(self) -> bool:
        """True while counting/storage is on (observers are unaffected)."""
        return self._enabled

    @property
    def sample_every(self) -> int:
        """Ring-buffer sampling stride (1 = store every wanted event)."""
        return self._sample_every

    def set_enabled(self, enabled: bool) -> None:
        """Toggle counting/storage; subscribed observers keep seeing all."""
        self._enabled = bool(enabled)
        self._hot = self._enabled or bool(self._observers)

    def set_sampling(self, sample_every: int) -> None:
        """Store every ``sample_every``-th wanted event (counts stay exact)."""
        if sample_every < 1:
            raise ReproError(f"sample_every must be >= 1, got {sample_every}")
        self._sample_every = int(sample_every)
        self._sample_skip = 0

    def wants(self, category: str) -> bool:
        """True when this tracer records ``category`` (hot-path guard).

        A fully cold tracer (disabled, no observers) wants nothing, so
        instrumented components can skip building the event kwargs at
        the call site.
        """
        if not self._hot:
            return False
        return self._categories is None or category in self._categories

    def subscribe(self, observer: Callable[[TraceEvent], None]) -> None:
        """Register a live observer (e.g. an invariant checker).

        Observers see every event offered to :meth:`record` — before the
        category filter, unaffected by sampling and by ring-buffer
        eviction — so a checker never misses a protocol step just
        because the stored trace is trimmed.
        """
        self._observers.append(observer)
        self._hot = True

    def record(self, category: str, label: str, **data: Any) -> None:
        """Record one event at the current simulated time."""
        if not self._hot:
            return
        observers = self._observers
        if observers:
            event = TraceEvent(self.sim.now, category, label, data)
            for observer in observers:
                observer(event)
            if not self._enabled or not (
                self._categories is None or category in self._categories
            ):
                return
        else:
            # _hot with no observers implies enabled.
            if not (self._categories is None or category in self._categories):
                return
            event = TraceEvent(self.sim.now, category, label, data)
        self._counts[category] += 1
        skip = self._sample_skip + 1
        if skip < self._sample_every:
            self._sample_skip = skip
            return
        self._sample_skip = 0
        self._events.append(event)

    # ------------------------------------------------------------------
    # Reading the trace
    # ------------------------------------------------------------------

    def events(
        self,
        category: Optional[str] = None,
        label: Optional[str] = None,
        since_us: float = 0.0,
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events, in time order."""
        return [
            event
            for event in self._events
            if event.at_us >= since_us
            and (category is None or event.category == category)
            and (label is None or event.label == label)
        ]

    def counts(self) -> Dict[str, int]:
        """Events recorded per category (including ring-evicted and
        sampling-skipped ones — counts are exact even when storage is
        thinned)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def format_lines(self, limit: int = 50) -> List[str]:
        """Human-readable tail of the trace."""
        tail = list(self._events)[-limit:]
        lines: List[str] = []
        for event in tail:
            details = " ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
            lines.append(
                f"t={event.at_us:10.3f}  [{event.category}] {event.label}"
                + (f"  {details}" if details else "")
            )
        return lines
