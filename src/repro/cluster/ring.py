"""Deterministic consistent-hash ring with virtual nodes.

The ring places ``vnodes`` tokens per shard on a 64-bit circle (token =
CRC64 of ``"<node>#vnode<i>"``, the same :func:`repro.kv.store.key_hash`
the stores use, so placement is identical across runs and machines) and
routes a key to the first token clockwise of the key's hash.  Two
properties the cluster layer builds on:

- **balance** — with ≥100 virtual nodes per shard the max/min shard load
  ratio over a uniform key population stays small (the property suite
  bounds it), so no shard becomes an accidental hot spot;
- **remap minimality** — adding or removing one of N shards remaps only
  the ~1/N of keys whose clockwise successor changed; every remapped key
  moves to/from the joining/leaving shard and nowhere else.

Beyond whole-shard membership the ring supports *vnode surgery*
(:meth:`move_vnode` / :meth:`with_vnodes_moved`): reassigning a single
token to another live shard, which remaps exactly that token's range and
nothing else.  This is the cutover primitive live rebalancing builds on
— a hot shard's busiest vnode can be handed to a cold shard without
touching any other placement.  Token ownership is therefore *state*, not
a pure function of membership: copies (:meth:`with_node`,
:meth:`with_vnodes_moved`) carry the current assignment forward, and
:meth:`token_of` exposes the owning token per key so per-vnode load can
be attributed from routed traffic.

Replica placement follows the textbook rule: the replicas of a key are
the first ``count`` *distinct* shards clockwise of its hash.  That makes
failover a pure ring operation — removing a dead shard re-routes each of
its ranges to exactly the shard that already held the range's replica.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.errors import ClusterError
from repro.kv.store import key_hash

__all__ = ["HashRing"]


class HashRing:
    """Consistent hashing over named shards with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Set[str] = set()
        #: Sorted ``(token, node)`` pairs; ties broken by node name so the
        #: ring order is a pure function of its membership.
        self._tokens: List[Tuple[int, str]] = []
        # Placement is a pure function of membership, so lookups memoize
        # per (key, count) until the membership changes.  Routers resolve
        # the same small key population on every op.
        self._lookup_cache: Dict[Tuple[bytes, int], List[str]] = {}
        #: Memoized key -> owning token (cleared with the lookup cache);
        #: lets the router attribute per-vnode load without re-bisecting.
        self._token_cache: Dict[bytes, int] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _node_tokens(self, node: str) -> List[int]:
        return [
            key_hash(f"{node}#vnode{index}".encode("utf-8"))
            for index in range(self.vnodes)
        ]

    def add_node(self, node: str) -> None:
        """Join ``node``: insert its virtual-node tokens."""
        if not node:
            raise ClusterError("node name must be non-empty")
        if node in self._nodes:
            raise ClusterError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        self._invalidate()
        present = {token for token, _ in self._tokens}
        for token in self._node_tokens(node):
            # A canonical token of the joiner may already be live under a
            # different owner after vnode surgery; the moved assignment
            # wins (re-join must not silently undo a rebalance).  With no
            # moves this never triggers — CRC64 token collisions between
            # distinct names are effectively impossible.
            if token in present:
                continue
            insort(self._tokens, (token, node))

    def remove_node(self, node: str) -> None:
        """Leave ``node``: its ranges fall to their clockwise successors."""
        if node not in self._nodes:
            raise ClusterError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._invalidate()
        self._tokens = [entry for entry in self._tokens if entry[1] != node]

    def with_node(self, node: str) -> "HashRing":
        """A copy of this ring with ``node`` joined (the original is
        untouched).

        The copy carries the current token *assignment* forward — vnodes
        moved by rebalancing stay where they are — so it is exactly the
        ring the cluster will have once ``node`` re-enters via
        :meth:`add_node`.  Recovery plans its range transfers against it,
        and re-adding a previously removed shard restores the pre-crash
        ring exactly.
        """
        restored = self._clone()
        restored.add_node(node)
        return restored

    def with_vnodes_moved(self, moves: Mapping[int, str]) -> "HashRing":
        """A copy of this ring with each ``token -> node`` move applied
        (the original is untouched) — the target ring a live vnode
        migration streams data toward before cutting over."""
        moved = self._clone()
        for token, node in sorted(moves.items()):
            moved.move_vnode(token, node)
        return moved

    def move_vnode(self, token: int, to_node: str) -> None:
        """Reassign the vnode at ``token`` to ``to_node``.

        Exactly the keys hashing into ``token``'s range change primary —
        every other placement is untouched.  This is the rebalancing
        cutover primitive; the migration engine calls it only after the
        range's data is fully resident on ``to_node``.
        """
        if to_node not in self._nodes:
            raise ClusterError(f"node {to_node!r} is not on the ring")
        index = self._token_index(token)
        if self._tokens[index][1] == to_node:
            raise ClusterError(f"token {token} is already owned by {to_node!r}")
        self._invalidate()
        self._tokens[index] = (token, to_node)

    def owner_of(self, token: int) -> str:
        """The shard currently assigned the vnode at ``token``."""
        return self._tokens[self._token_index(token)][1]

    def _token_index(self, token: int) -> int:
        index = bisect_left(self._tokens, (token,))
        if index >= len(self._tokens) or self._tokens[index][0] != token:
            raise ClusterError(f"token {token} is not on the ring")
        return index

    def _clone(self) -> "HashRing":
        clone = HashRing(vnodes=self.vnodes)
        clone._nodes = set(self._nodes)
        clone._tokens = list(self._tokens)
        return clone

    def _invalidate(self) -> None:
        self._lookup_cache.clear()
        self._token_cache.clear()

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted by name."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def lookup(self, key: bytes) -> str:
        """The shard owning ``key`` (its primary)."""
        return self.lookup_replicas(key, 1)[0]

    def lookup_replicas(self, key: bytes, count: int) -> List[str]:
        """The first ``count`` distinct shards clockwise of ``key``.

        ``replicas[0]`` is the primary; the rest are backups in takeover
        order.  ``count`` is clamped to the ring size.
        """
        cached = self._lookup_cache.get((key, count))
        if cached is not None:
            return list(cached)
        if not self._tokens:
            raise ClusterError("lookup on an empty ring")
        if count < 1:
            raise ClusterError(f"replica count must be >= 1, got {count}")
        clamped = min(count, len(self._nodes))
        tokens = self._tokens
        index = bisect_right(tokens, (key_hash(key),))
        replicas: List[str] = []
        for step in range(len(tokens)):
            node = tokens[(index + step) % len(tokens)][1]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == clamped:
                    break
        self._lookup_cache[(key, count)] = replicas
        return list(replicas)

    def token_of(self, key: bytes) -> int:
        """The token owning ``key`` — the first token clockwise of its
        hash.  Identifies the vnode a routed op lands on, so windowed
        load can be attributed per vnode, not just per shard."""
        cached = self._token_cache.get(key)
        if cached is not None:
            return cached
        if not self._tokens:
            raise ClusterError("token_of on an empty ring")
        index = bisect_right(self._tokens, (key_hash(key),))
        token = self._tokens[index % len(self._tokens)][0]
        self._token_cache[key] = token
        return token

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tokens_of(self, node: str) -> List[int]:
        """The tokens currently assigned to ``node``, ascending."""
        if node not in self._nodes:
            raise ClusterError(f"node {node!r} is not on the ring")
        return [token for token, owner in self._tokens if owner == node]

    def load_counts(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """Keys owned per shard — the balance metric the tests bound."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({len(self._nodes)} nodes x {self.vnodes} vnodes)"
