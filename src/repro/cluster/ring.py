"""Deterministic consistent-hash ring with virtual nodes.

The ring places ``vnodes`` tokens per shard on a 64-bit circle (token =
CRC64 of ``"<node>#vnode<i>"``, the same :func:`repro.kv.store.key_hash`
the stores use, so placement is identical across runs and machines) and
routes a key to the first token clockwise of the key's hash.  Two
properties the cluster layer builds on:

- **balance** — with ≥100 virtual nodes per shard the max/min shard load
  ratio over a uniform key population stays small (the property suite
  bounds it), so no shard becomes an accidental hot spot;
- **remap minimality** — adding or removing one of N shards remaps only
  the ~1/N of keys whose clockwise successor changed; every remapped key
  moves to/from the joining/leaving shard and nowhere else.

Replica placement follows the textbook rule: the replicas of a key are
the first ``count`` *distinct* shards clockwise of its hash.  That makes
failover a pure ring operation — removing a dead shard re-routes each of
its ranges to exactly the shard that already held the range's replica.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ClusterError
from repro.kv.store import key_hash

__all__ = ["HashRing"]


class HashRing:
    """Consistent hashing over named shards with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Set[str] = set()
        #: Sorted ``(token, node)`` pairs; ties broken by node name so the
        #: ring order is a pure function of its membership.
        self._tokens: List[Tuple[int, str]] = []
        # Placement is a pure function of membership, so lookups memoize
        # per (key, count) until the membership changes.  Routers resolve
        # the same small key population on every op.
        self._lookup_cache: Dict[Tuple[bytes, int], List[str]] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _node_tokens(self, node: str) -> List[int]:
        return [
            key_hash(f"{node}#vnode{index}".encode("utf-8"))
            for index in range(self.vnodes)
        ]

    def add_node(self, node: str) -> None:
        """Join ``node``: insert its virtual-node tokens."""
        if not node:
            raise ClusterError("node name must be non-empty")
        if node in self._nodes:
            raise ClusterError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        self._lookup_cache.clear()
        for token in self._node_tokens(node):
            insort(self._tokens, (token, node))

    def remove_node(self, node: str) -> None:
        """Leave ``node``: its ranges fall to their clockwise successors."""
        if node not in self._nodes:
            raise ClusterError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._lookup_cache.clear()
        self._tokens = [entry for entry in self._tokens if entry[1] != node]

    def with_node(self, node: str) -> "HashRing":
        """A copy of this ring with ``node`` joined (the original is
        untouched).

        Placement is a pure function of membership, so the copy *is* the
        ring the cluster will have once ``node`` re-enters — recovery
        plans its range transfers against it, and re-adding a previously
        removed shard restores the pre-crash ring exactly.
        """
        restored = HashRing(self._nodes, vnodes=self.vnodes)
        restored.add_node(node)
        return restored

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted by name."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def lookup(self, key: bytes) -> str:
        """The shard owning ``key`` (its primary)."""
        return self.lookup_replicas(key, 1)[0]

    def lookup_replicas(self, key: bytes, count: int) -> List[str]:
        """The first ``count`` distinct shards clockwise of ``key``.

        ``replicas[0]`` is the primary; the rest are backups in takeover
        order.  ``count`` is clamped to the ring size.
        """
        cached = self._lookup_cache.get((key, count))
        if cached is not None:
            return list(cached)
        if not self._tokens:
            raise ClusterError("lookup on an empty ring")
        if count < 1:
            raise ClusterError(f"replica count must be >= 1, got {count}")
        clamped = min(count, len(self._nodes))
        tokens = self._tokens
        index = bisect_right(tokens, (key_hash(key),))
        replicas: List[str] = []
        for step in range(len(tokens)):
            node = tokens[(index + step) % len(tokens)][1]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == clamped:
                    break
        self._lookup_cache[(key, count)] = replicas
        return list(replicas)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_counts(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """Keys owned per shard — the balance metric the tests bound."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({len(self._nodes)} nodes x {self.vnodes} vnodes)"
