"""Multi-key atomic operations over the sharded cluster.

:class:`TxnManager` gives the cluster lock-based two-phase multi-PUT:

- **Phase 1 — locks.**  The client (:meth:`ClusterClient.multi_put`)
  acquires one lease-bounded lock per key, strictly in sorted-key order.
  A single global acquisition order means two transactions can never
  hold-and-wait against each other — the classic deadlock-freedom
  argument — and the trace checker enforces the order on the wire
  (``txn_lock`` events must be strictly ascending per transaction).
- **Phase 2 — stage, then commit.**  The key's bytes travel to every
  healthy replica while the locks are held (the same RF>=2 in-bound
  path single-key PUTs ride), but land in a *staging* record instead of
  the store.  :meth:`TxnManager.commit` is the visibility point: an
  :func:`~repro.sim.atomic.atomic_section` that re-verifies every lease,
  re-checks replica coverage against the live ring (the same
  moved-under-the-call hazard ``ClusterClient.put`` re-checks), installs
  every staged value into every replica store, and releases the locks —
  with **no intervening simulated time**, so a concurrent reader sees
  either none of the transaction's writes or all of them.  Abort
  (any participant failure, lock timeout, lost lease) discards the
  staging and releases whatever was granted; nothing becomes visible.

Locks are **leases**: a lock not released within ``lock_lease_us`` of
sim time may be broken by a waiter, so a transaction wedged on a dead
participant can never wedge the key forever.  The doomed holder's
commit fails its own lease re-check and aborts.

Everything is traced (``txn_begin`` / ``txn_lock`` / ``txn_commit`` /
``txn_abort``) and audited by
:class:`~repro.lint.invariants.ClusterInvariantChecker`: lock order,
commit-only-when-all-locked, and zero leaked lock leases at teardown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError
from repro.kv.store import partition_of
from repro.sim.atomic import atomic_section

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import RfpCluster

__all__ = ["TxnConfig", "TxnManager", "COMMITTED", "RETRY", "ABORTED"]

#: Wire size of one lock request/grant message (key digest + txn id).
LOCK_WIRE_BYTES = 24

#: Per-key staging overhead on top of the key and value bytes.
STAGE_OVERHEAD_BYTES = 16

#: :meth:`TxnManager.commit` outcomes.
COMMITTED = "committed"
RETRY = "retry"
ABORTED = "aborted"


@dataclass(frozen=True)
class TxnConfig:
    """Transaction-layer tunables.

    Attributes
    ----------
    lock_lease_us:
        Sim-time lease on a granted lock; an expired lease may be broken
        by a waiter (the stalled holder's commit then fails its lease
        re-check and aborts).  Must sit above the worst-case lock-to-
        commit span of a healthy transaction, or live transactions
        steal each other's locks.
    lock_rtt_us:
        Network round-trip charged per lock request and per staging
        round (on top of the NIC occupancy of the message itself).
    lock_retry_us:
        Back-off before re-requesting a lock that was held or whose
        primary was not serving.
    lock_attempts:
        Lock requests per key before the transaction gives up and
        aborts (participant failure shows up as exhausted attempts).
    """

    lock_lease_us: float = 240.0
    lock_rtt_us: float = 3.0
    lock_retry_us: float = 15.0
    lock_attempts: int = 8

    def __post_init__(self) -> None:
        if self.lock_lease_us <= 0:
            raise ClusterError(f"lock lease must be positive: {self.lock_lease_us}")
        if self.lock_attempts < 1:
            raise ClusterError(f"lock_attempts must be >= 1, got {self.lock_attempts}")


class _Lock:
    """One granted per-key lock lease."""

    __slots__ = ("txn_id", "shard", "expires_at")

    def __init__(self, txn_id: int, shard: str, expires_at: float) -> None:
        self.txn_id = txn_id
        self.shard = shard
        self.expires_at = expires_at


class _TxnState:
    """Coordinator-side record of one open transaction."""

    __slots__ = ("txn_id", "client", "keys", "key_set", "locked", "staged")

    def __init__(self, txn_id: int, client: str, keys: Sequence[bytes]) -> None:
        self.txn_id = txn_id
        self.client = client
        self.keys: Tuple[bytes, ...] = tuple(keys)
        self.key_set = frozenset(keys)
        #: Keys locked so far, in grant order.
        self.locked: List[bytes] = []
        #: key -> (value, replicas the bytes were staged on).
        self.staged: Dict[bytes, Tuple[bytes, Tuple[str, ...]]] = {}


class TxnManager:
    """Lock table + staging + atomic commit/abort for multi-key PUTs."""

    def __init__(
        self, service: "RfpCluster", config: Optional[TxnConfig] = None
    ) -> None:
        self.service = service
        self.sim = service.sim
        self.config = config if config is not None else TxnConfig()
        self.tracer = service.tracer
        self._next_txn_id = 0
        #: Migrations currently waiting to cut over (see :meth:`draining`).
        self._drain_waiters = 0
        #: key -> its current lock lease.
        self._locks: Dict[bytes, _Lock] = {}
        #: txn id -> open-transaction state.
        self._open: Dict[int, _TxnState] = {}
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    # Introspection (migration drain, teardown audits)
    # ------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Open (begun, neither committed nor aborted) transactions."""
        return len(self._open)

    @property
    def outstanding_locks(self) -> int:
        """Lock leases currently installed in the table."""
        return len(self._locks)

    def open_txns(self) -> List[int]:
        return sorted(self._open)

    @property
    def draining(self) -> bool:
        """A migration is waiting to cut over: admission is gated.

        Open transactions run to completion (their leases bound the
        wait), but :meth:`ClusterClient.multi_put` holds new ones at the
        door until the cutover lands — without the gate, back-to-back
        transactions could keep ``active_count`` above zero at every
        drain poll and starve the migration forever.
        """
        return self._drain_waiters > 0

    def begin_drain(self) -> None:
        self._drain_waiters += 1

    def end_drain(self) -> None:
        self._drain_waiters -= 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(self, client: str, keys: Sequence[bytes]) -> int:
        """Open a transaction over ``keys`` (strictly ascending).

        The sorted-key requirement *is* the deadlock-freedom mechanism:
        every transaction walks the same global order, so a cycle of
        hold-and-wait edges cannot form.
        """
        if not keys:
            raise ClusterError("a transaction needs at least one key")
        for previous, current in zip(keys, keys[1:]):
            if current <= previous:
                raise ClusterError(
                    "transaction keys must be strictly ascending "
                    f"({previous!r} then {current!r}) — sorted acquisition "
                    "is the deadlock-freedom invariant"
                )
        self._next_txn_id += 1
        txn_id = self._next_txn_id
        self._open[txn_id] = _TxnState(txn_id, client, keys)
        self.begun += 1
        if self.tracer is not None:
            participants = sorted({self.service.ring.lookup(key) for key in keys})
            self.tracer.record(
                "cluster",
                "txn_begin",
                txn=txn_id,
                client=client,
                keys=len(keys),
                participants=",".join(participants),
            )
        return txn_id

    @atomic_section
    def grant(self, txn_id: int, key: bytes, shard: str) -> bool:
        """Try to grant ``txn_id`` the lock on ``key`` (the lock-grant
        atomic region: table mutation and trace land at one instant).

        Returns ``False`` when another transaction holds an unexpired
        lease — the caller backs off and retries.  An *expired* lease is
        broken: the new lease is installed over it and the old holder's
        commit will fail its lease re-check.
        """
        state = self._require_open(txn_id)
        if key not in state.key_set:
            raise ClusterError(f"txn {txn_id} never declared key {key!r}")
        entry = self._locks.get(key)
        if entry is not None:
            if entry.txn_id == txn_id:
                return True  # already held (idempotent re-request)
            if entry.expires_at > self.sim.now:
                return False  # held by a live transaction
        self._locks[key] = _Lock(txn_id, shard, self.sim.now + self.config.lock_lease_us)
        state.locked.append(key)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "txn_lock",
                txn=txn_id,
                key=key.hex(),
                shard=shard,
                order=len(state.locked),
            )
        return True

    def stage(
        self, txn_id: int, key: bytes, value: bytes, replicas: Sequence[str]
    ) -> None:
        """Record that ``value`` reached ``replicas`` (invisible until
        commit).  Re-staging replaces the record — the commit-retry loop
        refreshes coverage after the ring moves under the transaction."""
        state = self._require_open(txn_id)
        if key not in state.key_set:
            raise ClusterError(f"txn {txn_id} never declared key {key!r}")
        state.staged[key] = (value, tuple(replicas))

    @atomic_section
    def commit(self, txn_id: int) -> str:
        """The commit-apply atomic region — the transaction's visibility
        point.

        Re-verifies every lease, re-checks that every key's *current*
        healthy replica set is covered by its staging (the ring may have
        moved under the call — same hazard the single-key PUT ack
        re-check closes), then installs every staged value into every
        staged replica's store and releases the locks.  No simulated
        time passes, so readers see all of the writes or none.

        Returns :data:`COMMITTED`, :data:`RETRY` (coverage gap: caller
        re-stages and retries), or :data:`ABORTED` (a lease was lost —
        the transaction is closed, nothing was installed).
        """
        state = self._require_open(txn_id)
        held = self._held_count(state)
        if not self._all_locked(state):
            self._finish_abort(state, reason="lease-lost")
            return ABORTED
        service = self.service
        for key in state.keys:
            if key not in state.staged:
                raise ClusterError(
                    f"txn {txn_id} commit before staging key {key!r}"
                )
            _value, replicas = state.staged[key]
            staged_set = set(replicas)
            for shard_name in service.replicas_for(key):
                if (
                    service.membership.is_routable(shard_name)
                    and shard_name not in staged_set
                ):
                    return RETRY
        for key in state.keys:
            value, replicas = state.staged[key]
            for shard_name in replicas:
                handle = service.shards[shard_name]
                if not handle.alive:
                    continue
                store = handle.jakiro.store
                store.put(partition_of(key, store.partitions), key, value)
            service.note_put(key, value)
        self._release_locks(state)
        del self._open[txn_id]
        self.committed += 1
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "txn_commit",
                txn=txn_id,
                locks=held,
                keys=len(state.keys),
            )
        return COMMITTED

    @atomic_section
    def abort(self, txn_id: int, reason: str) -> None:
        """The abort-release atomic region: discard staging, release
        every lock still owned, close the transaction."""
        state = self._require_open(txn_id)
        self._finish_abort(state, reason=reason)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_open(self, txn_id: int) -> _TxnState:
        try:
            return self._open[txn_id]
        except KeyError:
            raise ClusterError(f"txn {txn_id} is not open") from None

    def _held_count(self, state: _TxnState) -> int:
        now = self.sim.now
        held = 0
        for key in state.keys:
            entry = self._locks.get(key)
            if entry is not None and entry.txn_id == state.txn_id:
                if entry.expires_at > now:
                    held += 1
        return held

    def _all_locked(self, state: _TxnState) -> bool:
        return self._held_count(state) == len(state.keys)

    def _release_locks(self, state: _TxnState) -> None:
        for key in state.locked:
            entry = self._locks.get(key)
            if entry is not None and entry.txn_id == state.txn_id:
                del self._locks[key]

    def _finish_abort(self, state: _TxnState, reason: str) -> None:
        held = self._held_count(state)
        self._release_locks(state)
        del self._open[state.txn_id]
        self.aborted += 1
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "txn_abort",
                txn=state.txn_id,
                locks=held,
                reason=reason,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TxnManager({self.active_count} open, "
            f"{self.committed} committed, {self.aborted} aborted)"
        )
