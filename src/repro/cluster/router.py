"""Sharded RFP cluster service and its client-side router.

:class:`RfpCluster` turns N independent :class:`~repro.kv.jakiro.Jakiro`
instances — one per server machine — into one addressable service:

- key placement and replica choice come from a deterministic
  :class:`~repro.cluster.ring.HashRing` (consistent hashing, virtual
  nodes),
- liveness comes from :class:`~repro.cluster.membership.Membership`
  (sim-time heartbeats and leases),
- shard death triggers a :class:`~repro.cluster.failover.FailoverCoordinator`
  ring rebalance so every range falls to the shard already holding its
  replica.

:class:`ClusterClient` is one client *thread*'s view of the service: it
owns one :class:`~repro.kv.jakiro.JakiroClient` per shard (registering
with its NIC's contention model exactly once), routes each operation by
key, guards every attempt with an operation timeout, and re-routes to a
replica when a shard stops answering.  Writes are primary-backup: a PUT
is acknowledged only once every healthy replica applied it, which is
what makes failover lose no acknowledged write.

Per-shard (R, F) tuning rides the existing
:class:`~repro.core.adaptive.AdaptiveParameterController`: one
controller per shard samples only that shard's result sizes, so shards
serving different value-size distributions converge to different fetch
sizes F (see :meth:`RfpCluster.start_adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.failover import FailoverCoordinator
from repro.cluster.membership import Membership, ShardStatus
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.migration import (
    MigrationConfig,
    RangeMigration,
    RebalanceConfig,
    RebalanceController,
    VnodeMigration,
)
from repro.cluster.recovery import RecoveryConfig, RecoveryCoordinator
from repro.cluster.ring import HashRing
from repro.cluster.txn import (
    ABORTED,
    COMMITTED,
    LOCK_WIRE_BYTES,
    RETRY,
    STAGE_OVERHEAD_BYTES,
    TxnConfig,
    TxnManager,
)
from repro.core.adaptive import AdaptiveParameterController
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.kv.jakiro import Jakiro, JakiroClient
from repro.kv.store import StoreCostModel, partition_of
from repro.sim.atomic import atomic_section
from repro.sim.core import AllOf, Event, Process, Simulator
from repro.sim.resources import Resource
from repro.sim.trace import Tracer

__all__ = ["ClusterConfig", "ShardHandle", "RfpCluster", "ClusterClient"]

#: Sentinel distinguishing "operation timed out" from any RPC result.
_TIMED_OUT = object()

#: A batch operation: ``("get", key)`` or ``("put", key, value)``.
BatchOp = Tuple


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-layer tunables (the RFP transport keeps its own
    :class:`~repro.core.config.RfpConfig`).

    Attributes
    ----------
    replication_factor:
        Healthy replicas per key (1 = plain sharding, 2+ = primary-backup
        with takeover on failure).
    vnodes:
        Virtual nodes per shard on the hash ring.
    heartbeat_interval_us / lease_timeout_us:
        Failure-detector cadence (see :class:`Membership`).
    op_timeout_us:
        Router-side deadline per routed attempt; a timed-out attempt
        marks the shard SUSPECT and re-routes to a replica.  Must sit
        comfortably above the worst healthy-path latency, or slow shards
        get falsely suspected.
    max_op_retries:
        Re-route attempts per logical operation before giving up.
    """

    replication_factor: int = 2
    vnodes: int = 128
    heartbeat_interval_us: float = 20.0
    lease_timeout_us: float = 60.0
    op_timeout_us: float = 40.0
    max_op_retries: int = 4

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ClusterError(
                f"replication factor must be >= 1, got {self.replication_factor}"
            )
        if self.op_timeout_us <= 0:
            raise ClusterError(f"op timeout must be positive: {self.op_timeout_us}")
        if self.max_op_retries < 1:
            raise ClusterError(f"max_op_retries must be >= 1, got {self.max_op_retries}")


class ShardHandle:
    """One shard: its Jakiro server, host machine, and liveness flag."""

    def __init__(self, name: str, jakiro: Jakiro, machine: Machine) -> None:
        self.name = name
        self.jakiro = jakiro
        self.machine = machine
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"ShardHandle({self.name}, {state})"


class RfpCluster:
    """N Jakiro shards behind consistent-hash routing with failover."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        shards: int = 3,
        cluster_config: Optional[ClusterConfig] = None,
        rfp_config: Optional[RfpConfig] = None,
        server_machines: Optional[Sequence[Machine]] = None,
        server_threads: int = 6,
        cost_model: Optional[StoreCostModel] = None,
        tracer: Optional[Tracer] = None,
        shard_tracers: Optional[Dict[str, Tracer]] = None,
        txn_config: Optional[TxnConfig] = None,
        name: str = "cluster",
    ) -> None:
        """``tracer`` records cluster-layer events (``route``,
        ``suspect``/``dead``, ``failover``, ``rebalance``);
        ``shard_tracers`` maps shard name -> a per-shard protocol tracer
        handed to that shard's Jakiro, so an
        :class:`~repro.lint.invariants.RfpInvariantChecker` can audit
        each shard in isolation (e.g. assert a healthy shard's NIC
        stayed in-bound-only through a failover)."""
        if shards < 1:
            raise ClusterError(f"cluster needs at least one shard, got {shards}")
        machines = (
            list(server_machines)
            if server_machines is not None
            else cluster.machines[:shards]
        )
        if len(machines) != shards:
            raise ClusterError(
                f"{shards} shards need {shards} server machines, got {len(machines)}"
            )
        self.sim = sim
        self.cluster = cluster
        self.config = cluster_config if cluster_config is not None else ClusterConfig()
        self.rfp_config = rfp_config if rfp_config is not None else RfpConfig()
        self.tracer = tracer
        self.name = name
        shard_tracers = shard_tracers if shard_tracers is not None else {}
        self.shards: Dict[str, ShardHandle] = {}
        for index, machine in enumerate(machines):
            shard_name = f"shard{index}"
            jakiro = Jakiro(
                sim,
                cluster,
                machine=machine,
                threads=server_threads,
                config=self.rfp_config,
                cost_model=cost_model,
                name=f"{name}.{shard_name}",
                tracer=shard_tracers.get(shard_name),
            )
            self.shards[shard_name] = ShardHandle(shard_name, jakiro, machine)
        self.ring = HashRing(self.shards, vnodes=self.config.vnodes)
        self.membership = Membership(
            sim,
            heartbeat_interval_us=self.config.heartbeat_interval_us,
            lease_timeout_us=self.config.lease_timeout_us,
            tracer=tracer,
        )
        for shard_name in sorted(self.shards):
            self.membership.register(shard_name)
        self.failover = FailoverCoordinator(sim, self.ring, self.membership, tracer)
        self.metrics = ClusterMetrics(sorted(self.shards))
        #: ``kind:shard`` -> its in-flight migration (recoveries and
        #: vnode moves share the registry; at most one per kind+shard).
        self._active_migrations: Dict[str, RangeMigration] = {}
        #: Every recovery ever started, completed and aborted alike.
        self.recoveries: List[RecoveryCoordinator] = []
        #: Every vnode migration ever started, completed and aborted alike.
        self.migrations: List[VnodeMigration] = []
        self._clients: List["ClusterClient"] = []
        #: Multi-key atomic operations (see :mod:`repro.cluster.txn`).
        self.txns = TxnManager(self, config=txn_config)
        self.adaptive: Dict[str, AdaptiveParameterController] = {}
        for handle in self.shards.values():
            sim.process(
                self._heartbeat(handle), name=f"{name}.{handle.name}.heartbeat"
            )
        self.membership.start()

    # ------------------------------------------------------------------
    # Data placement
    # ------------------------------------------------------------------

    def replicas_for(self, key: bytes) -> List[str]:
        """Current replica set for ``key`` (primary first)."""
        return self.ring.lookup_replicas(key, self.config.replication_factor)

    def preload(self, pairs) -> None:
        """Load pairs into every replica (off-line, before the clock runs)."""
        for key, value in pairs:
            for shard_name in self.replicas_for(key):
                self.shards[shard_name].jakiro.preload([(key, value)])

    def peek(self, shard_name: str, key: bytes) -> Optional[bytes]:
        """Direct store readout (no simulated time) — verification only.

        Used post-run to audit durability claims, e.g. that no
        acknowledged write was lost across a failover.
        """
        store = self._handle(shard_name).jakiro.store
        value, _cost = store.get(partition_of(key, store.partitions), key)
        return value

    # ------------------------------------------------------------------
    # Clients and failure injection
    # ------------------------------------------------------------------

    def connect(self, machine: Machine, name: str = "") -> "ClusterClient":
        """Attach one client thread running on ``machine``."""
        client = ClusterClient(self, machine, name=name)
        self._clients.append(client)
        return client

    @atomic_section
    def kill(self, shard_name: str) -> None:
        """Crash one shard: its server stops serving and its heartbeats
        stop; the NIC keeps serving one-sided reads (a host crash takes
        the CPU with it, not the fabric), so stuck fetchers see stale
        parity until they degrade to server-reply and block."""
        handle = self._handle(shard_name)
        if not handle.alive:
            raise ClusterError(f"shard {shard_name!r} is already dead")
        handle.alive = False
        handle.jakiro.server.halt()
        if self.tracer is not None:
            self.tracer.record("cluster", "shard_killed", shard=shard_name)

    def repair(
        self,
        shard_name: str,
        recovery_config: Optional[RecoveryConfig] = None,
    ) -> RecoveryCoordinator:
        """Bring a crashed shard back: reboot, rejoin, stream, re-enter.

        The reboot loses the shard's volatile store, so everything it
        will own again must come back over the wire: the returned
        :class:`RecoveryCoordinator` streams the ranges from the replicas
        that absorbed them and performs the atomic ring re-entry when the
        watermark catches up.  Until then the shard is ``RECOVERING`` —
        heartbeating (a second crash mid-transfer is re-detected and
        aborts the recovery) but unroutable, so it never serves a stale
        value.  Requires the failure detector to have declared the shard
        ``DEAD`` (i.e. the failover already ran); repairing a merely
        SUSPECT shard is a race with its own lease and is rejected.
        """
        handle = self._handle(shard_name)
        if handle.alive:
            raise ClusterError(f"shard {shard_name!r} is not dead")
        if self.membership.status(shard_name) is not ShardStatus.DEAD:
            raise ClusterError(
                f"shard {shard_name!r} is "
                f"{self.membership.status(shard_name).name}, not DEAD — "
                "repair races the failure detector"
            )
        if f"recovery:{shard_name}" in self._active_migrations:
            raise ClusterError(f"shard {shard_name!r} is already recovering")
        handle.jakiro.restart()
        self.membership.rejoin(shard_name, reason="repaired")
        handle.alive = True
        self.sim.process(
            self._heartbeat(handle), name=f"{self.name}.{handle.name}.heartbeat"
        )
        for client in self._clients:
            client.reconnect(shard_name)
        recovery = RecoveryCoordinator(self, shard_name, config=recovery_config)
        self._active_migrations[recovery.migration_key] = recovery
        self.recoveries.append(recovery)
        recovery.start()
        return recovery

    def move_vnodes(
        self,
        tokens: Sequence[int],
        to_shard: str,
        config: Optional[MigrationConfig] = None,
    ) -> VnodeMigration:
        """Live-migrate the vnodes at ``tokens`` onto ``to_shard``.

        The returned :class:`VnodeMigration` streams each moved range
        from its current owner (donors keep serving, and keep their
        in-bound-only NIC profile) and flips token ownership atomically
        once its watermark reaches target.  Requires a quiet cluster:
        every involved shard HEALTHY and no other migration in flight —
        vnode moves are pure optimization, so they always yield to the
        correctness machinery instead of racing it.
        """
        handle = self._handle(to_shard)
        if not handle.alive:
            raise ClusterError(f"cannot migrate vnodes onto dead shard {to_shard!r}")
        if self.membership.status(to_shard) is not ShardStatus.HEALTHY:
            raise ClusterError(
                f"cannot migrate vnodes onto {to_shard!r} while it is "
                f"{self.membership.status(to_shard).name}"
            )
        if self._active_migrations:
            raise ClusterError(
                "a migration is already in flight: "
                f"{sorted(self._active_migrations)}"
            )
        for token in tokens:
            owner = self.ring.owner_of(token)
            if owner == to_shard:
                raise ClusterError(f"token {token} is already owned by {to_shard!r}")
            if self.membership.status(owner) is not ShardStatus.HEALTHY:
                raise ClusterError(
                    f"donor {owner!r} of token {token} is "
                    f"{self.membership.status(owner).name}, not HEALTHY"
                )
        migration = VnodeMigration(self, to_shard, tokens, config=config)
        self._active_migrations[migration.migration_key] = migration
        self.migrations.append(migration)
        migration.start()
        return migration

    def start_rebalancer(
        self, config: Optional[RebalanceConfig] = None
    ) -> RebalanceController:
        """Spawn the load-aware rebalance control loop (see
        :class:`repro.cluster.migration.RebalanceController`)."""
        controller = RebalanceController(self, config=config)
        controller.start()
        return controller

    @property
    def active_migrations(self) -> List[RangeMigration]:
        """In-flight migrations (recoveries and vnode moves), sorted by
        registry key for deterministic iteration."""
        return [
            self._active_migrations[key] for key in sorted(self._active_migrations)
        ]

    @atomic_section
    def note_put(self, key: bytes, value: bytes) -> None:
        """Router hook: one PUT fully acknowledged.  Migrations in flight
        forward the write to their recipient if its incoming ranges
        cover the key, so the shard catches up on the live stream
        instead of chasing a dirty set."""
        for migration in self._active_migrations.values():
            migration.note_write(key, value)

    def _migration_finished(self, migration: RangeMigration) -> None:
        self._active_migrations.pop(migration.migration_key, None)

    def _handle(self, shard_name: str) -> ShardHandle:
        try:
            return self.shards[shard_name]
        except KeyError:
            raise ClusterError(f"unknown shard {shard_name!r}") from None

    def _heartbeat(self, handle: ShardHandle) -> Generator:
        interval = self.config.heartbeat_interval_us
        while handle.alive:
            self.membership.beat(handle.name)
            yield self.sim.timeout(interval)

    # ------------------------------------------------------------------
    # Per-shard (R, F) adaptation
    # ------------------------------------------------------------------

    def start_adaptive(
        self,
        iops_at: Optional[Callable[[int, int], float]] = None,
        retry_upper_bound: int = 5,
        size_lower_bound: int = 64,
        size_upper_bound: int = 4096,
        interval_us: float = 250.0,
        min_samples: int = 32,
    ) -> Dict[str, AdaptiveParameterController]:
        """One §3.2 controller per shard, fed only by that shard's results.

        Every connected client contributes its transports to the owning
        shard's controller, so the (R, F) each shard converges to follows
        that shard's own value-size distribution — a shard serving 1 KB
        values settles on a larger F than one serving 32 B values.
        Call after the clients are connected.
        """
        if not self._clients:
            raise ClusterError("connect clients before starting adaptation")
        if iops_at is None:
            iops_at = self._model_iops()
        for shard_name in sorted(self.shards):
            transports = [
                transport
                for client in self._clients
                for transport in client.shard_client(shard_name).transports
            ]
            controller = AdaptiveParameterController(
                self.sim,
                transports,
                iops_at,
                retry_upper_bound=retry_upper_bound,
                size_lower_bound=size_lower_bound,
                size_upper_bound=min(
                    size_upper_bound, self.rfp_config.response_buffer_bytes
                ),
                interval_us=interval_us,
                min_samples=min_samples,
            )
            controller.start()
            self.adaptive[shard_name] = controller
        return self.adaptive

    def _model_iops(self) -> Callable[[int, int], float]:
        """Closed-form I(R, F) from the cluster's NIC model (Eq. 2)."""
        from repro.hw.rnic import pipeline_service_time

        nic = self.cluster.spec.machine.nic

        def iops_at(retry: int, fetch: int) -> float:
            return 1.0 / pipeline_service_time(
                nic.inbound_base_us,
                fetch,
                nic.effective_bandwidth_bytes_per_us,
                nic.softmax_order,
            )

        return iops_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RfpCluster({len(self.shards)} shards, {len(self._clients)} clients)"


class ClusterClient:
    """One client thread's router over the cluster's shards."""

    def __init__(self, service: RfpCluster, machine: Machine, name: str = "") -> None:
        self.sim = service.sim
        self.service = service
        self.machine = machine
        self.name = name or f"cluster-client@{machine.name}"
        self._clients: Dict[str, JakiroClient] = {}
        #: Shards whose transport this client abandoned mid-call (an op
        #: timed out); a one-sided transport with a stuck in-flight call
        #: can never be reused safely.
        self._broken: set = set()
        #: Per-shard serialization: batched operations run concurrently
        #: across shards but strictly in order against any single shard
        #: (one in-flight call per transport is an RFP invariant).
        self._shard_locks: Dict[str, Resource] = {}
        # Per-op process names, built once instead of per attempt.
        self._op_names = {"get": f"{self.name}.get", "put": f"{self.name}.put"}
        for index, shard_name in enumerate(sorted(service.shards)):
            handle = service.shards[shard_name]
            self._clients[shard_name] = handle.jakiro.connect(
                machine,
                name=f"{self.name}.{shard_name}",
                register_issuer=(index == 0),
            )
            self._shard_locks[shard_name] = Resource(self.sim)

    def shard_client(self, shard_name: str) -> JakiroClient:
        return self._clients[shard_name]

    def reconnect(self, shard_name: str) -> None:
        """Fresh transports to a rebooted shard.

        The old :class:`JakiroClient`'s transports are unusable — their
        stuck in-flight calls degraded through the hybrid rule and own
        those connections forever — so rejoin means new connections, the
        way a real client re-dials a rebooted server.  The client thread
        is already registered with its NIC's contention model, so the new
        transports don't register again.
        """
        handle = self.service.shards[shard_name]
        self._clients[shard_name] = handle.jakiro.connect(
            self.machine,
            name=f"{self.name}.{shard_name}",
            register_issuer=False,
        )
        self._broken.discard(shard_name)

    # ------------------------------------------------------------------
    # The KV surface
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Process body: routed GET; returns the value or ``None``."""
        for attempt in range(self.service.config.max_op_retries):
            shard_name = self._healthy_replicas(key)[0]
            result = yield from self._attempt(
                shard_name, "get", key, None, rerouted=attempt > 0
            )
            if result is not _TIMED_OUT:
                return result
        raise ClusterError(
            f"GET exhausted {self.service.config.max_op_retries} routing attempts"
        )

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: primary-backup PUT; acknowledged only after every
        healthy replica applied the write.

        Before acknowledging, the replica set is re-read: if the ring
        changed underneath the call (a recovered shard re-entered
        mid-PUT), the write repeats against the new set.  Without the
        re-check a PUT issued just before a recovery handoff could
        acknowledge without the rejoined shard ever seeing the value —
        the one window the recovery watermark cannot cover on its own.
        A re-check round is bookkeeping for a write that already
        succeeded everywhere it was sent, so it is budgeted separately
        from the timeout-driven routing retries — otherwise a durable
        write could be reported to the client as exhausted.
        """
        service = self.service
        attempts = 0
        rechecks = 0
        # Each re-check loop-around needs a distinct ring mutation to
        # land mid-PUT, so this bound is unreachable on any real
        # schedule — it guards against a livelock, not a budget.
        max_rechecks = service.config.max_op_retries * len(service.shards)
        while True:
            replicas = self._healthy_replicas(key)
            timed_out = False
            for shard_name in replicas:
                result = yield from self._attempt(
                    shard_name, "put", key, value, rerouted=attempts > 0
                )
                if result is _TIMED_OUT:
                    timed_out = True
                    break
            if timed_out:
                attempts += 1
                if attempts >= service.config.max_op_retries:
                    raise ClusterError(
                        f"PUT exhausted {service.config.max_op_retries} "
                        "routing attempts"
                    )
                continue
            try:
                current = set(self._healthy_replicas(key))
            except ClusterError:
                # Everything turned suspect since the last write; the
                # data is on every replica that was healthy, so ack.
                current = set()
            if not current <= set(replicas):
                rechecks += 1
                if rechecks > max_rechecks:
                    raise ClusterError(
                        f"PUT replica re-check did not converge after "
                        f"{max_rechecks} rounds"
                    )
                continue
            service.note_put(key, value)
            return None

    def execute_batch(self, operations: Sequence[BatchOp]) -> Generator:
        """Process body: run a batch, grouping same-shard operations.

        Operations are ``("get", key)`` / ``("put", key, value)`` tuples.
        The batch is partitioned by primary shard; groups run
        concurrently (different shards, different transports) while each
        group executes in order.  Returns results in input order.  A
        batch must not write the same key twice.
        """
        groups: Dict[str, List[int]] = {}
        for index, operation in enumerate(operations):
            shard_name = self._healthy_replicas(operation[1])[0]
            groups.setdefault(shard_name, []).append(index)
        results: List[object] = [None] * len(operations)

        def run_group(indexes: List[int]) -> Generator:
            for index in indexes:
                operation = operations[index]
                if operation[0] == "get":
                    results[index] = yield from self.get(operation[1])
                elif operation[0] == "put":
                    results[index] = yield from self.put(operation[1], operation[2])
                else:
                    raise ClusterError(f"unknown batch op {operation[0]!r}")

        processes: List[Process] = [
            self.sim.process(run_group(indexes), name=f"{self.name}.batch")
            for indexes in groups.values()
        ]
        yield AllOf(self.sim, processes)
        return results

    # ------------------------------------------------------------------
    # Multi-key transactions (see repro.cluster.txn)
    # ------------------------------------------------------------------

    def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> Generator:
        """Process body: lock-based two-phase multi-PUT.

        Phase 1 locks every key strictly in sorted-key order (the global
        acquisition order that makes deadlock impossible); phase 2
        stages each value on every healthy replica — the participant
        fan-out runs per-primary groups concurrently, like
        :meth:`execute_batch` — then :meth:`TxnManager.commit` flips all
        of it visible in one atomic instant.  Any participant failure
        (lock attempts exhausted, no healthy replica while staging, a
        lease lost before commit) aborts: locks release, staging is
        discarded, nothing becomes visible, and :class:`ClusterError`
        propagates to the caller.  Returns the transaction id.
        """
        service = self.service
        txns = service.txns
        ordered = sorted(items, key=lambda pair: pair[0])
        keys = [key for key, _ in ordered]
        if len(set(keys)) != len(keys):
            raise ClusterError("multi_put keys must be distinct")
        while txns.draining:
            # A migration is waiting to cut over; hold new transactions
            # at the door so the drain is bounded by the open ones.
            yield self.sim.timeout(txns.config.lock_retry_us)
        txn_id = txns.begin(self.name, keys)
        for key, _ in ordered:
            granted = yield from self._txn_lock(txn_id, key)
            if not granted:
                txns.abort(txn_id, reason="lock-timeout")
                raise ClusterError(
                    f"txn {txn_id} gave up locking key {key!r} after "
                    f"{txns.config.lock_attempts} attempts"
                )
        rounds = 0
        # Each loop-around needs a distinct ring mutation between staging
        # and commit; the bound guards a livelock, not a budget (same
        # argument as the PUT ack re-check).
        max_rounds = service.config.max_op_retries * len(service.shards)
        while True:
            try:
                yield from self._txn_stage(txn_id, ordered)
            except ClusterError:
                txns.abort(txn_id, reason="participant-failure")
                raise
            outcome = txns.commit(txn_id)
            if outcome == COMMITTED:
                return txn_id
            if outcome == ABORTED:
                raise ClusterError(
                    f"txn {txn_id} aborted at commit: a lock lease was lost"
                )
            assert outcome == RETRY
            rounds += 1
            if rounds > max_rounds:
                txns.abort(txn_id, reason="recheck-livelock")
                raise ClusterError(
                    f"txn {txn_id} replica re-check did not converge after "
                    f"{max_rounds} rounds"
                )

    def _txn_lock(self, txn_id: int, key: bytes) -> Generator:
        """One key's lock acquisition: bounded request/back-off rounds.

        Each request is one in-bound message on the current primary
        (dead or unroutable primaries are not asked — the back-off lets
        failover re-point the key to a live replica).  Returns whether
        the lock was granted.
        """
        service = self.service
        txns = service.txns
        config = txns.config
        for _attempt in range(config.lock_attempts):
            shard_name = service.ring.lookup(key)
            handle = service.shards[shard_name]
            if handle.alive and service.membership.is_routable(shard_name):
                yield handle.machine.rnic.submit_inbound(LOCK_WIRE_BYTES)
                yield self.sim.timeout(config.lock_rtt_us)
                if txns.grant(txn_id, key, shard_name):
                    return True
            yield self.sim.timeout(config.lock_retry_us)
        return False

    def _txn_stage(self, txn_id: int, ordered: Sequence[Tuple[bytes, bytes]]) -> Generator:
        """Replicate each pair's bytes to every healthy replica (the
        RF>=2 write path the commit flips visible), grouped by primary
        shard so different participants stream concurrently."""
        service = self.service
        txns = service.txns
        groups: Dict[str, List[Tuple[bytes, bytes]]] = {}
        for key, value in ordered:
            primary = self._healthy_replicas(key)[0]
            groups.setdefault(primary, []).append((key, value))
        failures: List[str] = []

        def stage_group(pairs: List[Tuple[bytes, bytes]]) -> Generator:
            for key, value in pairs:
                try:
                    replicas = self._healthy_replicas(key)
                except ClusterError as exc:
                    failures.append(str(exc))
                    return
                for shard_name in replicas:
                    handle = service.shards[shard_name]
                    yield handle.machine.rnic.submit_inbound(
                        len(key) + len(value) + STAGE_OVERHEAD_BYTES
                    )
                yield self.sim.timeout(txns.config.lock_rtt_us)
                txns.stage(txn_id, key, value, replicas)

        processes: List[Process] = [
            self.sim.process(stage_group(pairs), name=f"{self.name}.txn")
            for _shard, pairs in sorted(groups.items())
        ]
        yield AllOf(self.sim, processes)
        if failures:
            raise ClusterError(f"txn {txn_id} staging failed: {failures[0]}")

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------

    def _healthy_replicas(self, key: bytes) -> List[str]:
        service = self.service
        replicas = [
            shard_name
            for shard_name in service.replicas_for(key)
            if service.membership.is_routable(shard_name)
            and shard_name not in self._broken
        ]
        if not replicas:
            raise ClusterError(f"no healthy replica for key {key!r}")
        return replicas

    def _attempt(
        self,
        shard_name: str,
        op: str,
        key: bytes,
        value: Optional[bytes],
        rerouted: bool = False,
    ) -> Generator:
        """One guarded attempt against one shard.

        Returns the RPC result, or :data:`_TIMED_OUT` after marking the
        shard suspect (the caller re-routes).  The underlying call keeps
        running detached when abandoned; its connection degrades through
        the hybrid rule rather than being reused.
        """
        sim = self.sim
        service = self.service
        lock = self._shard_locks[shard_name]
        yield lock.request()
        try:
            if shard_name in self._broken or not service.membership.is_routable(
                shard_name
            ):
                # The shard failed while this operation queued behind the
                # per-shard lock; bounce it back to the router.
                return _TIMED_OUT
            if service.tracer is not None:
                service.tracer.record(
                    "cluster",
                    "route",
                    shard=shard_name,
                    op=op,
                    client=self.name,
                )
            client = self._clients[shard_name]
            body = client.get(key) if op == "get" else client.put(key, value)
            began = sim.now
            call = sim.process(body, name=self._op_names[op])
            # Specialised two-way race (call vs deadline), replacing the
            # generic ``AnyOf(sim, [call, sim.timeout(...)])``: the
            # deadline is a bare heap entry rather than a Timeout/Event,
            # so the common call-wins case skips a dead waiter dispatch
            # when the deadline expires.  Both engines take the exact
            # same path, which keeps fast/reference dispatch parity.
            # Tie order matches AnyOf: the deadline entry carries the
            # seq of its arming (earlier than any completion cascade at
            # deadline time), so an exact tie resolves to the timeout —
            # just as the Timeout's pre-armed fire did.
            race = Event(sim)

            def _call_done(event: "Event") -> None:
                if race._done:
                    if event._exc is not None:
                        event._defused = True
                    return
                if event._exc is not None:
                    race.fail(event._exc)
                else:
                    race.trigger((0, event._value))

            def _deadline_fired() -> None:
                if not race._done:
                    race.trigger((1, None))

            call.done.wait(_call_done)
            sim.schedule(service.config.op_timeout_us, _deadline_fired)
            which, outcome = yield race
            if which == 0:
                service.metrics.record_op(
                    shard_name,
                    op,
                    sim.now - began,
                    rerouted=rerouted,
                    token=service.ring.token_of(key),
                )
                return outcome
            # Timed out: this transport is stuck mid-call — never reuse
            # it — and the shard is suspect for everyone.
            self._broken.add(shard_name)
            service.metrics.record_timeout(shard_name)
            service.membership.report_suspect(
                shard_name,
                reason=f"{op} timed out after {service.config.op_timeout_us}us",
            )
            if service.tracer is not None:
                service.tracer.record(
                    "cluster",
                    "route_timeout",
                    shard=shard_name,
                    op=op,
                    client=self.name,
                )
            return _TIMED_OUT
        finally:
            lock.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterClient({self.name}, {len(self._clients)} shards)"
