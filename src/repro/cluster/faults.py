"""Deterministic fault schedules for crash/rejoin experiments.

A :class:`FaultPlan` is a declarative script of ``kill`` / ``repair``
actions at fixed simulated times.  Because the simulator is
deterministic, the same plan against the same workload produces the same
trace event-for-event — which is what lets the unit tests, the invariant
suite, and the ``ext-cluster-rejoin`` benchmark all share one injection
mechanism instead of each hand-scheduling callbacks.

The plan validates its own shape up front (per-shard actions must
alternate ``kill``, ``repair``, ``kill``, … at strictly increasing
times), so a typo'd schedule fails at construction, not as a confusing
mid-run :class:`~repro.errors.ClusterError`.  Note that :meth:`arm` only
*schedules* the calls: a ``repair`` still requires the membership to
have declared the shard ``DEAD`` by its fire time, so leave at least the
suspect+lease window between a kill and its repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import ClusterError
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.recovery import RecoveryConfig, RecoveryCoordinator
    from repro.cluster.router import RfpCluster

__all__ = ["Fault", "FaultPlan"]

_ACTIONS = ("kill", "repair")


@dataclass(frozen=True)
class Fault:
    """One scripted action: ``kill`` or ``repair`` ``shard`` at ``at_us``."""

    at_us: float
    action: str
    shard: str


class FaultPlan:
    """An ordered, validated schedule of :class:`Fault` actions.

    Build once, :meth:`arm` against a live cluster before running the
    simulator.  After the run, :attr:`fired` lists the faults that
    actually executed and :attr:`recoveries` holds the
    :class:`~repro.cluster.recovery.RecoveryCoordinator` spawned by each
    ``repair``, in firing order.
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults: List[Fault] = sorted(
            faults, key=lambda f: (f.at_us, f.shard, f.action)
        )
        self.fired: List[Fault] = []
        self.recoveries: List["RecoveryCoordinator"] = []
        self._armed = False
        self._validate()

    def _validate(self) -> None:
        if not self.faults:
            raise ClusterError("a fault plan needs at least one fault")
        per_shard: Dict[str, List[Fault]] = {}
        for fault in self.faults:
            if fault.action not in _ACTIONS:
                raise ClusterError(
                    f"unknown fault action {fault.action!r} "
                    f"(expected one of {_ACTIONS})"
                )
            if fault.at_us < 0:
                raise ClusterError(
                    f"fault time must be >= 0, got {fault.at_us} for "
                    f"{fault.action} {fault.shard!r}"
                )
            per_shard.setdefault(fault.shard, []).append(fault)
        for shard, sequence in per_shard.items():
            last_at = -1.0
            for index, fault in enumerate(sequence):
                expected = _ACTIONS[index % 2]
                if fault.action != expected:
                    raise ClusterError(
                        f"shard {shard!r} fault #{index} is "
                        f"{fault.action!r}; actions must alternate "
                        f"kill, repair, kill, ... per shard"
                    )
                if fault.at_us <= last_at:
                    raise ClusterError(
                        f"shard {shard!r} faults must be at strictly "
                        f"increasing times; {fault.action} at "
                        f"{fault.at_us} does not follow {last_at}"
                    )
                last_at = fault.at_us

    # ------------------------------------------------------------------

    def arm(
        self,
        sim: Simulator,
        service: "RfpCluster",
        recovery_config: Optional["RecoveryConfig"] = None,
    ) -> None:
        """Schedule every fault against ``service`` (relative to now).

        ``recovery_config`` is forwarded to every ``repair`` so a test
        can slow the transfer down (e.g. to land a second kill inside
        it) without touching the plan itself.
        """
        if self._armed:
            raise ClusterError("fault plan is already armed")
        self._armed = True
        unknown = {f.shard for f in self.faults} - set(service.shards)
        if unknown:
            raise ClusterError(
                f"fault plan names unknown shards: {sorted(unknown)}"
            )
        for fault in self.faults:
            delay = fault.at_us - sim.now
            if delay < 0:
                raise ClusterError(
                    f"fault at {fault.at_us} is in the past (now={sim.now})"
                )
            sim.schedule(delay, self._fire, service, fault, recovery_config)

    def _fire(
        self,
        service: "RfpCluster",
        fault: Fault,
        recovery_config: Optional["RecoveryConfig"],
    ) -> None:
        if fault.action == "kill":
            service.kill(fault.shard)
        else:
            recovery = service.repair(fault.shard, recovery_config=recovery_config)
            self.recoveries.append(recovery)
        self.fired.append(fault)

    # ------------------------------------------------------------------

    @staticmethod
    def kill_then_repair(
        shard: str, kill_at_us: float, repair_at_us: float
    ) -> "FaultPlan":
        """The common one-crash-one-rejoin schedule."""
        return FaultPlan(
            [
                Fault(kill_at_us, "kill", shard),
                Fault(repair_at_us, "repair", shard),
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scripted = ", ".join(
            f"{f.action} {f.shard}@{f.at_us:g}" for f in self.faults
        )
        return f"FaultPlan({scripted})"
