"""Shard recovery: stream ranges back from replicas, re-enter the ring.

PR 2's failover made DEAD shards fall out of the ring — and stay out, so
every crash permanently shrank cluster capacity.  This module is the
other half of the fault cycle: a repaired shard
(:meth:`RfpCluster.repair`) re-registers with the membership as
``RECOVERING``, and a :class:`RecoveryCoordinator` streams its key
ranges back before it atomically re-enters the ring.

The streaming machinery itself — watermarked pull-based range transfer,
live write forwarding, pacing, abort/replan control — lives in the
shared :class:`repro.cluster.migration.RangeMigration` engine (vnode
rebalancing is its other client); this module supplies recovery's
policies.  The transfer is deliberately RFP-shaped: the *rejoining*
shard pulls each batch with a one-sided ranged read against the donor —
an in-bound verb on the donor's NIC — so healthy donors keep the
paper's in-bound-only NIC profile even while shipping recovery traffic.
Batches are paced (``pace_us`` idle gap between reads) so live traffic
sharing the donor's in-bound pipeline keeps its latency SLO.

Correctness across the crash -> takeover -> rejoin cycle rests on three
mechanisms, each audited by ``repro.lint.ClusterInvariantChecker``:

- **Watermark** — the coordinator plans the full key set the restored
  ring will place on the rejoiner (primary or replica) and advances a
  per-recovery watermark as batches land; the shard stays unroutable
  (``RECOVERING``) until ``watermark == target``, so it can never serve
  below its watermark.
- **Write forwarding** — every PUT acknowledged during the transfer is
  reported by the router (:meth:`RfpCluster.note_put`) and applied to
  the rejoiner too, as a passive replica catching up on the live write
  stream.  A forwarded key is *fresh*: a ranged-read snapshot still in
  flight never overwrites it, so the rejoiner converges instead of
  chasing a dirty set it can never drain under sustained writes.
- **Atomic handoff** — the watermark check, the reverse ring rebalance
  (:meth:`FailoverCoordinator.reinstate`) and the membership promotion
  happen with no intervening simulated time, so no write can slip
  between "caught up" and "routable".  The router closes the other half
  of that race: a PUT whose replica set changed mid-flight re-writes
  before acknowledging.

If the shard is re-halted mid-transfer the membership re-declares it
DEAD, the coordinator aborts, and the donors keep ownership — the ring
was never touched, so there is nothing to undo and no duplicate handoff.
A kill landing *after* the last batch but before the lease expires is
caught too: the handoff refuses a halted shard and waits for the
detector to re-declare it DEAD instead of promoting it.

The plan itself is not immutable: if the ring changes under a live
transfer — another shard dies and fails over, or a concurrent recovery
hands off — the planned key set and the ``note_write`` placement filter
were computed against a ring that no longer exists.  The coordinator
then *re-plans* (traced as ``transfer_replan``): the restored ring,
donor plan and watermark target are recomputed against the current
ring, keys already copied that are still owned stay copied, and the
handoff cannot happen against a drifted ring — so the shard never
becomes routable while missing keys the actual ring places on it.
"""

from __future__ import annotations

from repro.cluster.membership import ShardStatus
from repro.cluster.migration import MigrationConfig, MigrationEvent, RangeMigration
from repro.cluster.ring import HashRing
from repro.errors import ClusterError
from repro.sim.atomic import atomic_section

__all__ = ["RecoveryConfig", "RecoveryEvent", "RecoveryCoordinator"]

#: Recovery predates the unified engine; its config and event types are
#: the engine's own, re-exported under their historical names.
RecoveryConfig = MigrationConfig
RecoveryEvent = MigrationEvent


class RecoveryCoordinator(RangeMigration):
    """Streams one dead shard's ranges back, then re-enters the ring.

    Constructed (and started) by :meth:`RfpCluster.repair` after the
    shard's server restarted with an empty store and the membership
    admitted it as ``RECOVERING``.  A recovery is a
    :class:`RangeMigration` whose target ring is the pre-crash ring
    (the current ring with the rejoiner re-added) and whose cutover is
    the atomic handoff: ring reinstatement plus membership promotion.
    """

    kind = "recovery"

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    @property
    def restored_ring(self) -> HashRing:
        """The ring as it will be once the shard re-enters — placement
        of a full membership is a pure function of that membership, so
        this *is* the pre-crash ring (recomputed on replan if the ring
        changes mid-stream)."""
        return self.target_ring

    def _target_ring(self) -> HashRing:
        return self.service.ring.with_node(self.shard)

    def _cutover(self) -> None:
        self._handoff()

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @atomic_section
    def _on_status_change(self, node: str, status: ShardStatus) -> None:
        """Membership transitions while the transfer runs.

        - The rejoiner itself re-declared DEAD (re-halt): abort without
          touching the ring — donors keep ownership.
        - Any other transition that changed the ring (a failover removed
          a shard; a concurrent recovery's handoff added one): the plan
          and the ``note_write`` placement filter were computed against
          a ring that no longer exists, so the stream re-plans before it
          can hand off a shard that is missing keys the actual ring
          places on it.  The comparison is safe here because the
          failover coordinator subscribed first: by the time this
          listener fires, the ring surgery already happened.
        """
        if not self.active:
            return
        if node == self.shard:
            if status is ShardStatus.DEAD:
                self._aborted = True
            return
        expected = set(self.restored_ring.nodes) - {self.shard}
        if set(self.service.ring.nodes) != expected:
            self._replan_needed = True

    # ------------------------------------------------------------------
    # Endgame
    # ------------------------------------------------------------------

    @atomic_section
    def _handoff(self) -> None:
        """Atomic re-entry: ring surgery + promotion + trace, no yields.

        Nothing can interleave (the simulator only switches at yields),
        so at the instant the shard becomes routable its watermark is at
        target and every later write was forwarded — it never serves
        stale values.
        """
        service = self.service
        if not service.shards[self.shard].alive:  # pragma: no cover - _run gates
            raise ClusterError(f"handoff for halted shard {self.shard!r}")
        expected = set(self.restored_ring.nodes) - {self.shard}
        if set(service.ring.nodes) != expected:  # pragma: no cover - _run gates
            raise ClusterError(
                f"handoff for {self.shard!r} against a drifted ring "
                f"(planned {sorted(expected)}, found {service.ring.nodes})"
            )
        service.membership.unsubscribe(self._on_status_change)
        ring = service.failover.reinstate(self.shard)
        service.membership.promote(self.shard)
        self._finished = True
        self.event.finished_at_us = self.sim.now
        service._migration_finished(self)
        service.metrics.record_recovery(self.shard)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "handoff",
                shard=self.shard,
                donors=",".join(self.event.donors),
                ring=",".join(ring),
                watermark=self.watermark,
                target=self.target,
            )

    # ------------------------------------------------------------------
    # Trace vocabulary
    # ------------------------------------------------------------------

    def _trace_batch(self, donor: str, keys: int, moved: int) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer",
                shard=self.shard,
                donor=donor,
                keys=keys,
                bytes=moved,
                watermark=self.watermark,
                target=self.target,
            )

    def _trace_replan(self) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer_replan",
                shard=self.shard,
                donors=",".join(self.event.donors),
                ring=",".join(self.restored_ring.nodes),
                watermark=self.watermark,
                target=self.target,
            )

    def _trace_abort(self) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer_abort",
                shard=self.shard,
                watermark=self.watermark,
                target=self.target,
            )
