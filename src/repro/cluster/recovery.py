"""Shard recovery: stream ranges back from replicas, re-enter the ring.

PR 2's failover made DEAD shards fall out of the ring — and stay out, so
every crash permanently shrank cluster capacity.  This module is the
other half of the fault cycle: a repaired shard
(:meth:`RfpCluster.repair`) re-registers with the membership as
``RECOVERING``, and a :class:`RecoveryCoordinator` streams its key
ranges back before it atomically re-enters the ring.

The transfer is deliberately RFP-shaped: the *rejoining* shard pulls
each batch with a one-sided ranged read against the donor — an in-bound
verb on the donor's NIC — so healthy donors keep the paper's
in-bound-only NIC profile even while shipping recovery traffic.  Batches
are paced (``pace_us`` idle gap between reads) so live traffic sharing
the donor's in-bound pipeline keeps its latency SLO.

Correctness across the crash -> takeover -> rejoin cycle rests on three
mechanisms, each audited by ``repro.lint.ClusterInvariantChecker``:

- **Watermark** — the coordinator plans the full key set the restored
  ring will place on the rejoiner (primary or replica) and advances a
  per-recovery watermark as batches land; the shard stays unroutable
  (``RECOVERING``) until ``watermark == target``, so it can never serve
  below its watermark.
- **Write forwarding** — every PUT acknowledged during the transfer is
  reported by the router (:meth:`RfpCluster.note_put`) and applied to
  the rejoiner too, as a passive replica catching up on the live write
  stream.  A forwarded key is *fresh*: a ranged-read snapshot still in
  flight never overwrites it, so the rejoiner converges instead of
  chasing a dirty set it can never drain under sustained writes.
- **Atomic handoff** — the watermark check, the reverse ring rebalance
  (:meth:`FailoverCoordinator.reinstate`) and the membership promotion
  happen with no intervening simulated time, so no write can slip
  between "caught up" and "routable".  The router closes the other half
  of that race: a PUT whose replica set changed mid-flight re-writes
  before acknowledging.

If the shard is re-halted mid-transfer the membership re-declares it
DEAD, the coordinator aborts, and the donors keep ownership — the ring
was never touched, so there is nothing to undo and no duplicate handoff.
A kill landing *after* the last batch but before the lease expires is
caught too: the handoff refuses a halted shard and waits for the
detector to re-declare it DEAD instead of promoting it.

The plan itself is not immutable: if the ring changes under a live
transfer — another shard dies and fails over, or a concurrent recovery
hands off — the planned key set and the ``note_write`` placement filter
were computed against a ring that no longer exists.  The coordinator
then *re-plans* (traced as ``transfer_replan``): the restored ring,
donor plan and watermark target are recomputed against the current
ring, keys already copied that are still owned stay copied, and the
handoff cannot happen against a drifted ring — so the shard never
becomes routable while missing keys the actual ring places on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.membership import ShardStatus
from repro.errors import ClusterError
from repro.hw.verbs import READ_REQUEST_WIRE_BYTES
from repro.kv.store import partition_of
from repro.sim.atomic import atomic_section

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import RfpCluster

__all__ = ["RecoveryConfig", "RecoveryEvent", "RecoveryCoordinator"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables for one shard's range-transfer stream.

    Attributes
    ----------
    batch_keys:
        Keys moved per ranged read.  Bigger batches finish sooner but
        occupy the donor's in-bound pipeline longer per read.
    pace_us:
        Idle gap between batches — the SLO knob that keeps live traffic
        flowing through the shared donor NIC during the transfer.
    rtt_us:
        Fabric round-trip charged per ranged read on top of the donor's
        in-bound service time (request out + response back).
    """

    batch_keys: int = 32
    pace_us: float = 10.0
    rtt_us: float = 3.0

    def __post_init__(self) -> None:
        if self.batch_keys < 1:
            raise ClusterError(f"batch_keys must be >= 1, got {self.batch_keys}")
        if self.pace_us < 0:
            raise ClusterError(f"pace_us must be >= 0, got {self.pace_us}")
        if self.rtt_us < 0:
            raise ClusterError(f"rtt_us must be >= 0, got {self.rtt_us}")


@dataclass
class RecoveryEvent:
    """Summary of one recovery attempt (completed or aborted)."""

    shard: str
    started_at_us: float
    donors: List[str]
    target_keys: int
    finished_at_us: Optional[float] = None
    transferred_keys: int = 0
    transferred_bytes: int = 0
    batches: int = 0
    #: Live writes forwarded to the rejoiner during the transfer.
    catchup_keys: int = 0
    aborted: bool = False


class RecoveryCoordinator:
    """Streams one dead shard's ranges back, then re-enters the ring.

    Constructed (and started) by :meth:`RfpCluster.repair` after the
    shard's server restarted with an empty store and the membership
    admitted it as ``RECOVERING``.
    """

    def __init__(
        self,
        service: "RfpCluster",
        shard: str,
        config: Optional[RecoveryConfig] = None,
    ) -> None:
        self.service = service
        self.sim = service.sim
        self.shard = shard
        self.config = config if config is not None else RecoveryConfig()
        self.tracer = service.tracer
        #: Keys planned but not yet snapshotted from their donor.
        self._pending: Set[bytes] = set()
        #: Keys snapshotted at least once (superset of up-to-date keys).
        self._copied: Set[bytes] = set()
        #: Keys whose newest acked value reached the rejoiner via write
        #: forwarding — an older in-flight snapshot must not clobber them.
        self._fresh: Set[bytes] = set()
        self._aborted = False
        self._replan_needed = False
        self._finished = False
        self.event = RecoveryEvent(
            shard=shard,
            started_at_us=self.sim.now,
            donors=service.ring.nodes,
            target_keys=0,
        )
        #: The ring as it will be once the shard re-enters — placement is
        #: a pure function of membership, so this *is* the pre-crash ring
        #: (recomputed by :meth:`_replan` if the ring changes mid-stream).
        self.restored_ring = service.ring.with_node(shard)
        service.membership.subscribe(self._on_status_change)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return not self._finished

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def watermark(self) -> int:
        """Planned keys copied at least once (monotone, <= target)."""
        return self.event.target_keys - len(self._pending)

    @property
    def target(self) -> int:
        return self.event.target_keys

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @atomic_section
    def _on_status_change(self, node: str, status: ShardStatus) -> None:
        """Membership transitions while the transfer runs.

        - The rejoiner itself re-declared DEAD (re-halt): abort without
          touching the ring — donors keep ownership.
        - Any other transition that changed the ring (a failover removed
          a shard; a concurrent recovery's handoff added one): the plan
          and the ``note_write`` placement filter were computed against
          a ring that no longer exists, so the stream re-plans before it
          can hand off a shard that is missing keys the actual ring
          places on it.  The comparison is safe here because the
          failover coordinator subscribed first: by the time this
          listener fires, the ring surgery already happened.
        """
        if not self.active:
            return
        if node == self.shard:
            if status is ShardStatus.DEAD:
                self._aborted = True
            return
        expected = set(self.restored_ring.nodes) - {self.shard}
        if set(self.service.ring.nodes) != expected:
            self._replan_needed = True

    @atomic_section
    def note_write(self, key: bytes, value: bytes) -> None:
        """The router acknowledged a PUT while this recovery runs.

        If the restored ring places ``key`` on the rejoiner, the write
        is *forwarded*: applied to the rejoiner's store as one more
        replica of the acked write stream (one fire-and-forget in-bound
        op on the rejoiner's own NIC — donors are not involved).  The
        key is then fresh, and any older donor snapshot still in flight
        is discarded on arrival rather than installed over it.
        """
        if not self.active or self._aborted:
            return
        if self.shard not in self.restored_ring.lookup_replicas(
            key, self.service.config.replication_factor
        ):
            return
        if key not in self._copied and key not in self._pending:
            # Inserted after planning: extend the plan so the watermark
            # target covers it too.
            self.event.target_keys += 1
        self._copied.add(key)
        self._pending.discard(key)
        self._fresh.add(key)
        rejoiner = self.service.shards[self.shard]
        rejoiner.machine.rnic.submit_inbound(len(key) + len(value))
        store = rejoiner.jakiro.store
        store.put(partition_of(key, store.partitions), key, value)
        self.event.catchup_keys += 1

    # ------------------------------------------------------------------
    # The transfer process
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.sim.process(self._run(), name=f"{self.service.name}.recovery.{self.shard}")

    def _plan(self) -> Dict[str, List[bytes]]:
        """Donor -> keys to pull: every pair the restored ring places on
        the rejoiner, donated by the key's *current* primary (exactly one
        donor per key, no duplicate transfers)."""
        service = self.service
        factor = service.config.replication_factor
        plan: Dict[str, List[bytes]] = {}
        for donor in service.ring.nodes:
            store = service.shards[donor].jakiro.store
            for key, _value in store.items():
                if service.ring.lookup(key) != donor:
                    continue  # a replica copy; the primary donates
                if self.shard in self.restored_ring.lookup_replicas(key, factor):
                    plan.setdefault(donor, []).append(key)
        return plan

    @property
    def _halted(self) -> bool:
        """The shard was killed again but the detector has not re-declared
        it DEAD yet (the abort flag only flips on that transition)."""
        return not self.service.shards[self.shard].alive

    def _run(self) -> Generator:
        plan = self._plan()
        self.event.target_keys = sum(len(keys) for keys in plan.values())
        for keys in plan.values():
            self._pending.update(keys)
        batch = self.config.batch_keys
        while True:
            for donor in sorted(plan):
                keys = plan[donor]
                for start in range(0, len(keys), batch):
                    if self._aborted or self._halted or self._replan_needed:
                        break
                    yield from self._pull_batch(donor, keys[start : start + batch])
                    yield self.sim.timeout(self.config.pace_us)
                if self._aborted or self._halted or self._replan_needed:
                    break
            if self._aborted:
                self._finish_aborted()
                return
            if self._halted:
                # Killed in the window between the last batch and the
                # lease expiry: promoting a halted shard would make
                # every route to it time out until the detector caught
                # up.  Wait for the DEAD re-declaration — the sanctioned
                # abort trigger — instead of handing off.
                while not self._aborted:
                    yield self.sim.timeout(self.service.config.heartbeat_interval_us)
                self._finish_aborted()
                return
            if self._replan_needed:
                plan = self._replan()
                continue
            self._handoff()
            return

    @atomic_section
    def _replan(self) -> Dict[str, List[bytes]]:
        """The ring changed under the transfer: rebuild plan and targets.

        The restored ring and the donor plan are recomputed against the
        current ring.  Keys already copied that the new restored ring
        still places on the rejoiner stay copied — their forwarding
        filter held the whole time they were owned — while keys it no
        longer places there are dropped, and newly owned keys join the
        pending set to be pulled from their current primaries.  The
        watermark target is re-based; the ``transfer_replan`` trace
        re-bases the invariant checker's monotonicity baseline the same
        way.
        """
        self._replan_needed = False
        self.restored_ring = self.service.ring.with_node(self.shard)
        self.event.donors = self.service.ring.nodes
        plan = self._plan()
        owned: Set[bytes] = set()
        for keys in plan.values():
            owned.update(keys)
        self._copied &= owned
        self._fresh &= owned
        self._pending = owned - self._copied
        self.event.target_keys = len(owned)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer_replan",
                shard=self.shard,
                donors=",".join(self.event.donors),
                ring=",".join(self.restored_ring.nodes),
                watermark=self.watermark,
                target=self.target,
            )
        return plan

    def _pull_batch(self, donor: str, keys: List[bytes]) -> Generator:
        """One ranged read: snapshot ``keys`` on the donor, ship, install.

        The rejoiner issues the read (one out-bound request op on its own
        NIC); the donor's NIC serves it *in-bound*, sharing the pipeline
        with live fetch traffic — which is what the pacing protects, and
        why donors stay in-bound-only throughout.  Keys are claimed
        before any simulated time passes; a PUT acked while the batch is
        on the wire is forwarded directly and marks its key fresh, so
        the stale snapshot is dropped on arrival.
        """
        if self._aborted:
            return
        service = self.service
        donor_store = service.shards[donor].jakiro.store
        snapshot: List[Tuple[bytes, bytes]] = []
        moved = 0
        for key in keys:
            self._pending.discard(key)
            self._copied.add(key)
            value, _cost = donor_store.get(partition_of(key, donor_store.partitions), key)
            if value is None:
                continue  # evicted on the donor since planning
            snapshot.append((key, value))
            moved += len(key) + len(value)
        rejoiner = service.shards[self.shard]
        rejoiner.machine.rnic.submit_outbound(READ_REQUEST_WIRE_BYTES, kind="read")
        served = service.shards[donor].machine.rnic.submit_inbound(moved)
        yield served
        yield self.sim.timeout(self.config.rtt_us)
        if self._aborted:
            return  # re-halted while the batch was on the wire: drop it
        if self._replan_needed:
            # The ring changed while the batch was on the wire (the
            # donor may even be the shard that just died).  Drop the
            # batch un-traced and un-claim its keys: the re-plan decides
            # afresh who owns them and who donates.
            for key in keys:
                if key not in self._fresh:
                    self._copied.discard(key)
                    self._pending.add(key)
            return
        my_store = rejoiner.jakiro.store
        for key, value in snapshot:
            if key in self._fresh:
                continue  # a forwarded write is newer than this snapshot
            my_store.put(partition_of(key, my_store.partitions), key, value)
        self.event.batches += 1
        self.event.transferred_keys += len(snapshot)
        self.event.transferred_bytes += moved
        service.metrics.record_transfer(self.shard, len(snapshot), moved)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer",
                shard=self.shard,
                donor=donor,
                keys=len(snapshot),
                bytes=moved,
                watermark=self.watermark,
                target=self.target,
            )

    # ------------------------------------------------------------------
    # Endgame
    # ------------------------------------------------------------------

    @atomic_section
    def _handoff(self) -> None:
        """Atomic re-entry: ring surgery + promotion + trace, no yields.

        Nothing can interleave (the simulator only switches at yields),
        so at the instant the shard becomes routable its watermark is at
        target and every later write was forwarded — it never serves
        stale values.
        """
        service = self.service
        if not service.shards[self.shard].alive:  # pragma: no cover - _run gates
            raise ClusterError(f"handoff for halted shard {self.shard!r}")
        expected = set(self.restored_ring.nodes) - {self.shard}
        if set(service.ring.nodes) != expected:  # pragma: no cover - _run gates
            raise ClusterError(
                f"handoff for {self.shard!r} against a drifted ring "
                f"(planned {sorted(expected)}, found {service.ring.nodes})"
            )
        service.membership.unsubscribe(self._on_status_change)
        ring = service.failover.reinstate(self.shard)
        service.membership.promote(self.shard)
        self._finished = True
        self.event.finished_at_us = self.sim.now
        service._recovery_finished(self.shard)
        service.metrics.record_recovery(self.shard)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "handoff",
                shard=self.shard,
                donors=",".join(self.event.donors),
                ring=",".join(ring),
                watermark=self.watermark,
                target=self.target,
            )

    @atomic_section
    def _finish_aborted(self) -> None:
        self.service.membership.unsubscribe(self._on_status_change)
        self._finished = True
        self.event.aborted = True
        self.event.finished_at_us = self.sim.now
        self.service._recovery_finished(self.shard)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "transfer_abort",
                shard=self.shard,
                watermark=self.watermark,
                target=self.target,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "aborted" if self._aborted else ("done" if self._finished else "live")
        return (
            f"RecoveryCoordinator({self.shard}, {state}, "
            f"{self.watermark}/{self.target} keys)"
        )
