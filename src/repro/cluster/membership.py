"""Sim-time heartbeat/lease failure detection for the cluster layer.

Every shard owns a heartbeat process (spawned by the cluster service)
that calls :meth:`Membership.beat` while the shard is alive.  The
membership's detector process checks leases every heartbeat interval: a
shard whose last beat is older than ``lease_timeout_us`` is declared
``DEAD``.  Routers additionally *report* shards whose operations time
out; a report moves a shard to ``SUSPECT`` immediately, so the whole
client population stops routing to it long before the lease expires.

State machine::

    HEALTHY --report_suspect--> SUSPECT --lease expiry--> DEAD
       ^                           |                        |
       +----------beat------------+                       rejoin
       ^                                                    |
       +-------------promote-------------- RECOVERING <-----+
                                           (lease expiry --> DEAD)

A false suspicion (the shard was merely slow) heals on its next
heartbeat; ``DEAD`` never heals on its own — a dead shard must
*explicitly* re-enter through :meth:`rejoin`, which re-grants its lease
and parks it in ``RECOVERING``: alive (heartbeating, lease-checked) but
unroutable until the recovery coordinator finishes streaming its ranges
back and calls :meth:`promote`.  A recovering shard that goes silent
falls back to ``DEAD`` like any other, so suspect/lease semantics are
not weakened by the rejoin path.  Status changes are traced under the
``cluster`` category (``suspect`` / ``recovered`` / ``dead`` /
``rejoin``) and pushed to subscribed listeners (the failover and
recovery coordinators).  The ``RECOVERING -> HEALTHY`` promotion is
deliberately *not* traced here: the recovery coordinator records the
``handoff`` event at the same instant, carrying the transfer provenance
(donors, watermark, restored ring) the invariant checker audits.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Generator, List, Optional

from repro.errors import ClusterError
from repro.sim.atomic import atomic_section
from repro.sim.core import Process, Simulator
from repro.sim.trace import Tracer

__all__ = ["ShardStatus", "Membership"]


class ShardStatus(enum.Enum):
    """Liveness of one shard as seen by the failure detector."""

    HEALTHY = 0
    SUSPECT = 1
    DEAD = 2
    #: Re-admitted after death, streaming its ranges back; alive
    #: (heartbeating, lease-checked) but not routable.
    RECOVERING = 3


#: ``listener(node, status)`` — invoked on every status change.
StatusListener = Callable[[str, ShardStatus], None]


class Membership:
    """Heartbeat/lease failure detection over a set of named shards."""

    def __init__(
        self,
        sim: Simulator,
        heartbeat_interval_us: float = 20.0,
        lease_timeout_us: float = 60.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if heartbeat_interval_us <= 0:
            raise ClusterError(
                f"heartbeat interval must be positive: {heartbeat_interval_us}"
            )
        if lease_timeout_us <= heartbeat_interval_us:
            raise ClusterError(
                "lease timeout must exceed the heartbeat interval "
                f"({lease_timeout_us} <= {heartbeat_interval_us})"
            )
        self.sim = sim
        self.heartbeat_interval_us = heartbeat_interval_us
        self.lease_timeout_us = lease_timeout_us
        self.tracer = tracer
        self._last_beat_us: Dict[str, float] = {}
        self._status: Dict[str, ShardStatus] = {}
        self._listeners: List[StatusListener] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register(self, node: str) -> None:
        """Admit ``node`` as HEALTHY with a fresh lease."""
        if node in self._status:
            raise ClusterError(f"shard {node!r} is already registered")
        self._status[node] = ShardStatus.HEALTHY
        self._last_beat_us[node] = self.sim.now

    def subscribe(self, listener: StatusListener) -> None:
        """``listener(node, status)`` fires on every status change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: StatusListener) -> None:
        """Detach a listener added by :meth:`subscribe` (no-op if absent).

        Short-lived subscribers — a :class:`RecoveryCoordinator` lives
        for one transfer — must detach when they finish, or every
        kill/repair cycle leaves one more dead listener running on every
        later status change.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def start(self) -> Process:
        """Spawn the lease-checking detector process."""
        return self.sim.process(self._detector(), name="cluster-membership")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def status(self, node: str) -> ShardStatus:
        try:
            return self._status[node]
        except KeyError:
            raise ClusterError(f"unknown shard {node!r}") from None

    def is_routable(self, node: str) -> bool:
        """Routers send operations only to HEALTHY shards."""
        return self.status(node) is ShardStatus.HEALTHY

    def healthy_nodes(self) -> List[str]:
        return sorted(
            node
            for node, status in self._status.items()
            if status is ShardStatus.HEALTHY
        )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def beat(self, node: str) -> None:
        """One heartbeat from ``node``; heals a false suspicion.

        A beat refreshes the lease of a ``RECOVERING`` shard without
        touching its status (only :meth:`promote` makes it routable
        again), and never resurrects a ``DEAD`` shard — death requires an
        explicit :meth:`rejoin`.
        """
        status = self.status(node)
        self._last_beat_us[node] = self.sim.now
        if status is ShardStatus.SUSPECT:
            self._transition(node, ShardStatus.HEALTHY, "heartbeat resumed")

    def report_suspect(self, node: str, reason: str = "") -> None:
        """A router saw an operation time out against ``node``."""
        if self.status(node) is ShardStatus.HEALTHY:
            self._transition(node, ShardStatus.SUSPECT, reason)

    def mark_dead(self, node: str, reason: str = "") -> None:
        """Declare ``node`` dead (heals only through :meth:`rejoin`)."""
        if self.status(node) is not ShardStatus.DEAD:
            self._transition(node, ShardStatus.DEAD, reason)

    def rejoin(self, node: str, reason: str = "") -> None:
        """Re-admit a repaired ``node`` as RECOVERING with a fresh lease.

        Legal only from ``DEAD`` — the one sanctioned exit from it.  The
        shard stays unroutable until :meth:`promote`; its re-granted
        lease puts it back under detector watch immediately, so a shard
        that crashes again mid-recovery is re-declared ``DEAD``.
        """
        if self.status(node) is not ShardStatus.DEAD:
            raise ClusterError(
                f"shard {node!r} cannot rejoin from "
                f"{self.status(node).name} (only DEAD shards rejoin)"
            )
        self._last_beat_us[node] = self.sim.now
        self._transition(node, ShardStatus.RECOVERING, reason)

    @atomic_section
    def promote(self, node: str) -> None:
        """Recovery finished: ``RECOVERING`` becomes routable ``HEALTHY``.

        Called by the recovery coordinator in the same atomic instant as
        the ring re-entry; the coordinator traces the paired ``handoff``
        event (see the module docstring), so this transition itself is
        silent on the tracer but still notifies status listeners.
        """
        if self.status(node) is not ShardStatus.RECOVERING:
            raise ClusterError(
                f"shard {node!r} cannot be promoted from "
                f"{self.status(node).name} (only RECOVERING shards promote)"
            )
        self._status[node] = ShardStatus.HEALTHY
        for listener in list(self._listeners):
            listener(node, ShardStatus.HEALTHY)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @atomic_section
    def _transition(self, node: str, status: ShardStatus, reason: str) -> None:
        # Literal labels per branch (rather than a status->label table)
        # so the trace-schema lint can check each phase statically.
        self._status[node] = status
        if self.tracer is not None:
            if status is ShardStatus.HEALTHY:
                self.tracer.record("cluster", "recovered", shard=node, reason=reason)
            elif status is ShardStatus.SUSPECT:
                self.tracer.record("cluster", "suspect", shard=node, reason=reason)
            elif status is ShardStatus.DEAD:
                self.tracer.record("cluster", "dead", shard=node, reason=reason)
            else:
                self.tracer.record("cluster", "rejoin", shard=node, reason=reason)
        for listener in list(self._listeners):
            listener(node, status)

    def _detector(self) -> Generator:
        while True:
            yield self.sim.timeout(self.heartbeat_interval_us)
            now = self.sim.now
            for node in sorted(self._status):
                if self._status[node] is ShardStatus.DEAD:
                    continue
                silent_us = now - self._last_beat_us[node]
                if silent_us > self.lease_timeout_us:
                    self.mark_dead(
                        node, reason=f"lease expired after {silent_us:.1f}us"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        healthy = len(self.healthy_nodes())
        return f"Membership({healthy}/{len(self._status)} healthy)"
