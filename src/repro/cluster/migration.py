"""Unified range migration: one engine, two clients.

PR 3 built the hard parts of moving a key range between live shards —
watermarked pull-based range streaming, live write forwarding, atomic
cutover, re-planning under topology drift — but welded them to the
crash-recovery path in :mod:`repro.cluster.recovery`.  This module is
the extraction: :class:`RangeMigration` owns the full plan → pull →
forward → cutover machinery, parameterized by two policy hooks —

- :meth:`RangeMigration._target_ring` — the ring the migration is
  streaming *toward*.  Recovery's target is the current ring with the
  rejoiner re-added; a vnode move's target is the current ring with
  chosen tokens reassigned to the recipient.
- :meth:`RangeMigration._cutover` — the atomic instant the target ring
  becomes the real ring.  Recovery reinstates the shard and promotes it
  out of ``RECOVERING``; a vnode move flips token ownership in place.

Everything between those hooks is shared and identical for both
clients:

- **Plan** — one donor per key (its current primary), covering exactly
  the keys the target ring places on the migrating shard that the
  current ring does not (:meth:`RangeMigration._wants`).
- **Pull** — the *recipient* fetches each batch with a one-sided
  ranged read against the donor: an out-bound request op on its own
  NIC, served *in-bound* on the donor's.  Donors keep the RFP paper's
  in-bound-only NIC profile even while shipping migration traffic, and
  batches are paced so live traffic sharing the donor pipeline keeps
  its latency SLO.
- **Forward** — every PUT acked mid-stream is applied to the recipient
  too (:meth:`RangeMigration.note_write`); a forwarded key is *fresh*
  and an older in-flight snapshot never overwrites it.
- **Watermark** — planned-keys-copied advances monotonically to the
  plan target; cutover is legal only at ``watermark == target``, so no
  key the target ring places on the shard can be missing at the moment
  placement changes.  The :class:`repro.lint.ClusterInvariantChecker`
  audits the same rule for both clients from their traces.

The second client lives here too: :class:`VnodeMigration` moves chosen
vnodes onto a healthy recipient (a vnode move *is* a small recovery
with a healthy source and a narrower target ring), and
:class:`RebalanceController` drives it from the windowed
:class:`repro.cluster.metrics.ClusterMetrics` load signal — watching
per-shard op counts, picking the hottest vnodes of the hottest shard,
and migrating them to the coldest shard live.  A vnode move is pure
optimization, so its abort policy is maximally conservative: *any*
membership transition aborts the move and leaves ownership untouched
(the correctness machinery — failover, recovery — always wins the
race).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cluster.membership import ShardStatus
from repro.cluster.ring import HashRing
from repro.errors import ClusterError
from repro.hw.verbs import READ_REQUEST_WIRE_BYTES
from repro.kv.store import partition_of
from repro.sim.atomic import atomic_section

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import RfpCluster

__all__ = [
    "MigrationConfig",
    "MigrationEvent",
    "RangeMigration",
    "VnodeMigration",
    "RebalanceConfig",
    "RebalanceController",
]


@dataclass(frozen=True)
class MigrationConfig:
    """Tunables for one range-transfer stream.

    Attributes
    ----------
    batch_keys:
        Keys moved per ranged read.  Bigger batches finish sooner but
        occupy the donor's in-bound pipeline longer per read.
    pace_us:
        Idle gap between batches — the SLO knob that keeps live traffic
        flowing through the shared donor NIC during the transfer.
    rtt_us:
        Fabric round-trip charged per ranged read on top of the donor's
        in-bound service time (request out + response back).
    """

    batch_keys: int = 32
    pace_us: float = 10.0
    rtt_us: float = 3.0

    def __post_init__(self) -> None:
        if self.batch_keys < 1:
            raise ClusterError(f"batch_keys must be >= 1, got {self.batch_keys}")
        if self.pace_us < 0:
            raise ClusterError(f"pace_us must be >= 0, got {self.pace_us}")
        if self.rtt_us < 0:
            raise ClusterError(f"rtt_us must be >= 0, got {self.rtt_us}")


@dataclass
class MigrationEvent:
    """Summary of one migration attempt (completed or aborted)."""

    shard: str
    started_at_us: float
    donors: List[str]
    target_keys: int
    #: Which client ran it: ``"recovery"`` or ``"rebalance"``.
    kind: str = "migration"
    finished_at_us: Optional[float] = None
    transferred_keys: int = 0
    transferred_bytes: int = 0
    batches: int = 0
    #: Live writes forwarded to the recipient during the transfer.
    catchup_keys: int = 0
    aborted: bool = False


class RangeMigration:
    """Streams key ranges onto ``shard``, then atomically cuts over.

    Subclasses supply the target-ring policy (:meth:`_target_ring`),
    the cutover (:meth:`_cutover`), the membership reaction
    (``_on_status_change``) and the trace vocabulary; the engine owns
    planning, pulling, pacing, write forwarding, the watermark, and the
    abort/replan control loop.
    """

    #: Client name: process naming, event tagging, registry keying.
    kind = "migration"

    def __init__(
        self,
        service: "RfpCluster",
        shard: str,
        config: Optional[MigrationConfig] = None,
    ) -> None:
        self.service = service
        self.sim = service.sim
        self.shard = shard
        self.config = config if config is not None else MigrationConfig()
        self.tracer = service.tracer
        #: Keys planned but not yet snapshotted from their donor.
        self._pending: Set[bytes] = set()
        #: Keys snapshotted at least once (superset of up-to-date keys).
        self._copied: Set[bytes] = set()
        #: Keys whose newest acked value reached the recipient via write
        #: forwarding — an older in-flight snapshot must not clobber them.
        self._fresh: Set[bytes] = set()
        self._aborted = False
        self._replan_needed = False
        self._finished = False
        #: True once the stream announced itself (plan traced); an abort
        #: that beats the first dispatch stays silent on the tracer.
        self._announced = False
        self.event = MigrationEvent(
            shard=shard,
            started_at_us=self.sim.now,
            donors=self._donor_nodes(),
            target_keys=0,
            kind=self.kind,
        )
        #: The ring as it will be at cutover (recomputed by
        #: :meth:`_replan` if the real ring changes mid-stream).
        self.target_ring = self._target_ring()
        service.membership.subscribe(self._on_status_change)

    # ------------------------------------------------------------------
    # Policy hooks (subclasses override)
    # ------------------------------------------------------------------

    def _target_ring(self) -> HashRing:
        """The ring this migration streams toward."""
        raise NotImplementedError

    def _cutover(self) -> None:
        """Atomically make the target ring real (watermark is at target)."""
        raise NotImplementedError

    def _on_status_change(self, node: str, status: ShardStatus) -> None:
        """Membership transitions while the transfer runs."""
        raise NotImplementedError

    def _donor_nodes(self) -> List[str]:
        """Shards this migration may pull from (event/trace provenance)."""
        return self.service.ring.nodes

    def _trace_start(self) -> None:
        """Hook at plan time; recovery's start is already traced as the
        membership ``rejoin``, so the base emits nothing."""

    def _trace_batch(self, donor: str, keys: int, moved: int) -> None:
        raise NotImplementedError

    def _trace_replan(self) -> None:
        raise NotImplementedError

    def _trace_abort(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return not self._finished

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def watermark(self) -> int:
        """Planned keys copied at least once (monotone, <= target)."""
        return self.event.target_keys - len(self._pending)

    @property
    def target(self) -> int:
        return self.event.target_keys

    @property
    def migration_key(self) -> str:
        """Registry key in :attr:`RfpCluster._active_migrations`."""
        return f"{self.kind}:{self.shard}"

    # ------------------------------------------------------------------
    # Placement filter
    # ------------------------------------------------------------------

    def _wants(self, key: bytes) -> bool:
        """Does this migration need ``key`` resident on the recipient?

        True when the target ring places the key on the migrating shard
        and the current ring does not already: for recovery the shard is
        off the ring entirely, so this is exactly "the restored ring
        places it here"; for a vnode move it excludes keys the recipient
        already holds as a live replica (their writes arrive through
        normal replication, not forwarding).
        """
        factor = self.service.config.replication_factor
        if self.shard not in self.target_ring.lookup_replicas(key, factor):
            return False
        ring = self.service.ring
        if self.shard in ring and self.shard in ring.lookup_replicas(key, factor):
            return False
        return True

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @atomic_section
    def note_write(self, key: bytes, value: bytes) -> None:
        """The router acknowledged a PUT while this migration runs.

        If the migration wants ``key``, the write is *forwarded*:
        applied to the recipient's store as one more replica of the
        acked write stream (one fire-and-forget in-bound op on the
        recipient's own NIC — donors are not involved).  The key is
        then fresh, and any older donor snapshot still in flight is
        discarded on arrival rather than installed over it.
        """
        if not self.active or self._aborted:
            return
        if not self._wants(key):
            return
        if key not in self._copied and key not in self._pending:
            # Inserted after planning: extend the plan so the watermark
            # target covers it too.
            self.event.target_keys += 1
        self._copied.add(key)
        self._pending.discard(key)
        self._fresh.add(key)
        recipient = self.service.shards[self.shard]
        recipient.machine.rnic.submit_inbound(len(key) + len(value))
        store = recipient.jakiro.store
        store.put(partition_of(key, store.partitions), key, value)
        self.event.catchup_keys += 1

    # ------------------------------------------------------------------
    # The transfer process
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.sim.process(
            self._run(), name=f"{self.service.name}.{self.kind}.{self.shard}"
        )

    def _plan(self) -> Dict[str, List[bytes]]:
        """Donor -> keys to pull: every key this migration wants,
        donated by the key's *current* primary (exactly one donor per
        key, no duplicate transfers)."""
        service = self.service
        plan: Dict[str, List[bytes]] = {}
        for donor in service.ring.nodes:
            if donor == self.shard:
                continue  # nothing to pull from ourselves
            store = service.shards[donor].jakiro.store
            for key, _value in store.items():
                if service.ring.lookup(key) != donor:
                    continue  # a replica copy; the primary donates
                if self._wants(key):
                    plan.setdefault(donor, []).append(key)
        return plan

    @property
    def _halted(self) -> bool:
        """The recipient was killed but the detector has not re-declared
        it DEAD yet (the abort flag only flips on a transition)."""
        return not self.service.shards[self.shard].alive

    def _run(self) -> Generator:
        plan = self._plan()
        self.event.target_keys = sum(len(keys) for keys in plan.values())
        for keys in plan.values():
            self._pending.update(keys)
        if not self._aborted:
            # A membership transition can beat this process to the
            # scheduler; an abort that early stays un-announced (the
            # stream never existed as far as the trace is concerned).
            self._announced = True
            self._trace_start()
        batch = self.config.batch_keys
        while True:
            for donor in sorted(plan):
                keys = plan[donor]
                for start in range(0, len(keys), batch):
                    if self._aborted or self._halted or self._replan_needed:
                        break
                    yield from self._pull_batch(donor, keys[start : start + batch])
                    yield self.sim.timeout(self.config.pace_us)
                if self._aborted or self._halted or self._replan_needed:
                    break
            if self._aborted:
                self._finish_aborted()
                return
            if self._halted:
                # Killed in the window between the last batch and the
                # lease expiry: cutting over to a halted shard would
                # make every route to it time out until the detector
                # caught up.  Wait for the membership transition — the
                # sanctioned abort trigger — instead of cutting over.
                while not self._aborted:
                    yield self.sim.timeout(self.service.config.heartbeat_interval_us)
                self._finish_aborted()
                return
            if self._replan_needed:
                plan = self._replan()
                continue
            txns = self.service.txns
            if txns.active_count:
                # Open multi-key transactions hold lock leases and
                # staged replica sets computed against the current ring;
                # flipping ownership under them would let a commit
                # validate against stale participants.  Gate admission
                # and drain the open ones — they are lease-bounded —
                # unless an abort, halt, or replan fires first and wins
                # as usual.  (Zero open transactions means zero yields
                # here: the quiet path is schedule-identical to the
                # pre-txn engine.)
                txns.begin_drain()
                try:
                    while txns.active_count and not (
                        self._aborted or self._halted or self._replan_needed
                    ):
                        yield self.sim.timeout(
                            self.service.config.heartbeat_interval_us
                        )
                finally:
                    txns.end_drain()
                if self._aborted:
                    self._finish_aborted()
                    return
                if self._halted:
                    while not self._aborted:
                        yield self.sim.timeout(
                            self.service.config.heartbeat_interval_us
                        )
                    self._finish_aborted()
                    return
            if self._replan_needed:
                plan = self._replan()
                continue
            self._cutover()
            return

    @atomic_section
    def _replan(self) -> Dict[str, List[bytes]]:
        """The ring changed under the transfer: rebuild plan and targets.

        The target ring and the donor plan are recomputed against the
        current ring.  Keys already copied that the new target ring
        still places on the recipient stay copied — their forwarding
        filter held the whole time they were owned — while keys it no
        longer places there are dropped, and newly owned keys join the
        pending set to be pulled from their current primaries.  The
        watermark target is re-based; the replan trace re-bases the
        invariant checker's monotonicity baseline the same way.
        """
        self._replan_needed = False
        self.target_ring = self._target_ring()
        self.event.donors = self._donor_nodes()
        plan = self._plan()
        owned: Set[bytes] = set()
        for keys in plan.values():
            owned.update(keys)
        self._copied &= owned
        self._fresh &= owned
        self._pending = owned - self._copied
        self.event.target_keys = len(owned)
        self._trace_replan()
        return plan

    def _pull_batch(self, donor: str, keys: List[bytes]) -> Generator:
        """One ranged read: snapshot ``keys`` on the donor, ship, install.

        The recipient issues the read (one out-bound request op on its
        own NIC); the donor's NIC serves it *in-bound*, sharing the
        pipeline with live fetch traffic — which is what the pacing
        protects, and why donors stay in-bound-only throughout.  Keys
        are claimed before any simulated time passes; a PUT acked while
        the batch is on the wire is forwarded directly and marks its
        key fresh, so the stale snapshot is dropped on arrival.
        """
        if self._aborted:
            return
        service = self.service
        donor_store = service.shards[donor].jakiro.store
        snapshot: List[Tuple[bytes, bytes]] = []
        moved = 0
        for key in keys:
            self._pending.discard(key)
            self._copied.add(key)
            value, _cost = donor_store.get(partition_of(key, donor_store.partitions), key)
            if value is None:
                continue  # evicted on the donor since planning
            snapshot.append((key, value))
            moved += len(key) + len(value)
        recipient = service.shards[self.shard]
        recipient.machine.rnic.submit_outbound(READ_REQUEST_WIRE_BYTES, kind="read")
        served = service.shards[donor].machine.rnic.submit_inbound(moved)
        yield served
        yield self.sim.timeout(self.config.rtt_us)
        if self._aborted:
            return  # aborted while the batch was on the wire: drop it
        if self._replan_needed:
            # The ring changed while the batch was on the wire (the
            # donor may even be the shard that just died).  Drop the
            # batch un-traced and un-claim its keys: the re-plan decides
            # afresh who owns them and who donates.
            for key in keys:
                if key not in self._fresh:
                    self._copied.discard(key)
                    self._pending.add(key)
            return
        my_store = recipient.jakiro.store
        for key, value in snapshot:
            if key in self._fresh:
                continue  # a forwarded write is newer than this snapshot
            my_store.put(partition_of(key, my_store.partitions), key, value)
        self.event.batches += 1
        self.event.transferred_keys += len(snapshot)
        self.event.transferred_bytes += moved
        service.metrics.record_transfer(self.shard, len(snapshot), moved)
        self._trace_batch(donor, len(snapshot), moved)

    # ------------------------------------------------------------------
    # Endgame
    # ------------------------------------------------------------------

    @atomic_section
    def _finish_aborted(self) -> None:
        self.service.membership.unsubscribe(self._on_status_change)
        self._finished = True
        self.event.aborted = True
        self.event.finished_at_us = self.sim.now
        self.service._migration_finished(self)
        self._trace_abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "aborted" if self._aborted else ("done" if self._finished else "live")
        return (
            f"{type(self).__name__}({self.shard}, {state}, "
            f"{self.watermark}/{self.target} keys)"
        )


class VnodeMigration(RangeMigration):
    """Moves chosen vnodes onto a healthy ``shard``, live.

    The target ring is the current ring with ``tokens`` reassigned to
    the recipient; donors are the tokens' current owners, who keep
    serving (and keep their in-bound-only NIC profile) until the atomic
    cutover flips ownership.  Constructed (and started) by
    :meth:`RfpCluster.move_vnodes`.
    """

    kind = "rebalance"

    def __init__(
        self,
        service: "RfpCluster",
        shard: str,
        tokens: Sequence[int],
        config: Optional[MigrationConfig] = None,
    ) -> None:
        if not tokens:
            raise ClusterError("vnode migration needs at least one token")
        self.tokens: Tuple[int, ...] = tuple(sorted(tokens))
        super().__init__(service, shard, config=config)

    def _target_ring(self) -> HashRing:
        return self.service.ring.with_vnodes_moved(
            {token: self.shard for token in self.tokens}
        )

    def _donor_nodes(self) -> List[str]:
        ring = self.service.ring
        return sorted({ring.owner_of(token) for token in self.tokens})

    @atomic_section
    def _on_status_change(self, node: str, status: ShardStatus) -> None:
        """Any membership transition aborts the move.

        A vnode move is pure optimization: if *anything* about the
        cluster's health changed — the recipient died, a donor went
        SUSPECT, an unrelated shard failed over or rejoined — the load
        signal that justified the move is stale and the correctness
        machinery may be about to perform ring surgery of its own.
        Aborting leaves ownership untouched; the controller re-observes
        and re-decides once the cluster is quiet again.
        """
        if not self.active:
            return
        self._aborted = True

    @atomic_section
    def _cutover(self) -> None:
        """Atomic ownership flip: every token moves with no intervening
        simulated time, so at the instant placement changes the
        recipient holds every key of every moved range (watermark is at
        target and later writes were forwarded) — no key is ever
        unroutable or served stale mid-move."""
        service = self.service
        if not service.shards[self.shard].alive:  # pragma: no cover - _run gates
            raise ClusterError(f"cutover for halted shard {self.shard!r}")
        service.membership.unsubscribe(self._on_status_change)
        for token in self.tokens:
            service.ring.move_vnode(token, self.shard)
        self._finished = True
        self.event.finished_at_us = self.sim.now
        service._migration_finished(self)
        service.metrics.record_rebalance(self.shard, len(self.tokens))
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "migrate_cutover",
                shard=self.shard,
                donors=",".join(self.event.donors),
                vnodes=len(self.tokens),
                watermark=self.watermark,
                target=self.target,
            )

    def _trace_start(self) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "migrate_start",
                shard=self.shard,
                donors=",".join(self.event.donors),
                vnodes=len(self.tokens),
                target=self.target,
            )

    def _trace_batch(self, donor: str, keys: int, moved: int) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "migrate_batch",
                shard=self.shard,
                donor=donor,
                keys=keys,
                bytes=moved,
                watermark=self.watermark,
                target=self.target,
            )

    def _trace_replan(self) -> None:  # pragma: no cover - unreachable
        # Any ring change aborts a vnode move before the replan path can
        # run (see _on_status_change), so this hook cannot fire.
        raise ClusterError(f"vnode migration {self.shard!r} cannot replan")

    def _trace_abort(self) -> None:
        if self._announced and self.tracer is not None:
            self.tracer.record(
                "cluster",
                "migrate_abort",
                shard=self.shard,
                watermark=self.watermark,
                target=self.target,
            )


@dataclass(frozen=True)
class RebalanceConfig:
    """Tunables for the load-aware rebalance control loop.

    Attributes
    ----------
    interval_us:
        Sim-time gap between load observations; also the poll period
        while a migration is in flight.  The load window resets at each
        observation, so this is the averaging horizon of the signal.
    imbalance_threshold:
        Move only when the hottest shard's windowed load exceeds this
        multiple of the per-shard mean.  Must be > 1; the gap is the
        hysteresis that keeps a balanced cluster from churning.
    min_window_ops:
        Ignore windows with fewer total ops — an idle cluster's
        "imbalance" is sampling noise, not load.
    max_vnodes_per_move:
        Cap on tokens per migration, bounding the cutover's blast
        radius and keeping each transfer short.
    migration:
        Streaming tunables handed to each :class:`VnodeMigration`.
    """

    interval_us: float = 60.0
    imbalance_threshold: float = 1.4
    min_window_ops: int = 64
    max_vnodes_per_move: int = 16
    migration: MigrationConfig = field(default_factory=MigrationConfig)

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ClusterError(f"interval_us must be > 0, got {self.interval_us}")
        if self.imbalance_threshold <= 1.0:
            raise ClusterError(
                f"imbalance_threshold must be > 1, got {self.imbalance_threshold}"
            )
        if self.min_window_ops < 1:
            raise ClusterError(
                f"min_window_ops must be >= 1, got {self.min_window_ops}"
            )
        if self.max_vnodes_per_move < 1:
            raise ClusterError(
                f"max_vnodes_per_move must be >= 1, got {self.max_vnodes_per_move}"
            )


class RebalanceController:
    """Watches windowed load and migrates vnodes off hot shards, live.

    Control loop, one decision per ``interval_us`` of sim time:

    1. Read the windowed per-shard op counts; reset the window.
    2. Bail unless the cluster is quiet (no active migration, every
       shard HEALTHY) and busy (``min_window_ops``) and skewed
       (hottest shard > ``imbalance_threshold`` × mean).
    3. Pick the hottest vnodes of the hottest shard, greedily, up to
       half the hot-cold gap (moving more would just swap which shard
       is hot), and migrate them to the coldest shard.
    4. Wait for the migration to finish (cutover or abort), then
       resume observing.

    Everything is deterministic: shards are scanned in sorted order,
    vnodes sorted by (-load, token), and time only advances through the
    simulator — the same run always makes the same moves.
    """

    def __init__(
        self,
        service: "RfpCluster",
        config: Optional[RebalanceConfig] = None,
    ) -> None:
        self.service = service
        self.sim = service.sim
        self.config = config if config is not None else RebalanceConfig()
        self.tracer = service.tracer
        #: Completed control-loop decisions that launched a migration.
        self.moves = 0
        self._stopped = False

    def start(self) -> None:
        self.sim.process(self._run(), name=f"{self.service.name}.rebalancer")

    def stop(self) -> None:
        """Stop deciding after the current interval (idempotent)."""
        self._stopped = True

    def _run(self) -> Generator:
        interval = self.config.interval_us
        self.service.metrics.reset_window(self.sim.now)
        while not self._stopped:
            yield self.sim.timeout(interval)
            if self._stopped:
                return
            decision = self._decide()
            self.service.metrics.reset_window(self.sim.now)
            if decision is None:
                continue
            _hot, tokens, cold = decision
            migration = self.service.move_vnodes(
                tokens, cold, config=self.config.migration
            )
            self.moves += 1
            while migration.active:
                yield self.sim.timeout(interval)
            # The move (or its abort) changed what the old window was
            # measuring; start clean before the next decision.
            self.service.metrics.reset_window(self.sim.now)

    def _decide(self) -> Optional[Tuple[str, List[int], str]]:
        """(hot shard, tokens to move, cold shard), or None to hold."""
        service = self.service
        config = self.config
        if service.active_migrations:
            return None
        names = sorted(service.shards)
        for name in names:
            if service.membership.status(name) is not ShardStatus.HEALTHY:
                return None
        loads = service.metrics.window_ops_by_shard()
        total = sum(loads.values())
        if total < config.min_window_ops:
            return None
        mean = total / len(names)
        hot = max(names, key=lambda name: loads.get(name, 0))
        cold = min(names, key=lambda name: loads.get(name, 0))
        hot_load = loads.get(hot, 0)
        cold_load = loads.get(cold, 0)
        if hot == cold or hot_load < config.imbalance_threshold * mean:
            return None
        vnode_loads = service.metrics.window_vnode_ops()
        candidates = [
            (vnode_loads.get(token, 0), token)
            for token in service.ring.tokens_of(hot)
        ]
        candidates.sort(key=lambda item: (-item[0], item[1]))
        # Shed at most half the hot-cold gap: moving more would just
        # hand the skew to the recipient and ping-pong it back.
        budget = (hot_load - cold_load) / 2.0
        tokens: List[int] = []
        shed = 0.0
        for load, token in candidates:
            if load <= 0:
                break  # sorted descending: the rest carried nothing
            if shed + load > budget:
                continue  # too big, but a smaller vnode may still fit
            tokens.append(token)
            shed += load
            if len(tokens) >= config.max_vnodes_per_move:
                break
        if not tokens:
            return None
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "rebalance_pick",
                hot=hot,
                cold=cold,
                vnodes=len(tokens),
                imbalance=round(hot_load / mean, 3),
            )
        return hot, sorted(tokens), cold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else "live"
        return f"RebalanceController({state}, {self.moves} moves)"
