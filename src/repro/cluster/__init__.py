"""repro.cluster — sharded, fault-tolerant RFP cluster layer.

Composes N independent :class:`~repro.kv.jakiro.Jakiro` shards into one
addressable service: consistent-hash key placement (:mod:`.ring`),
heartbeat/lease failure detection (:mod:`.membership`), replica takeover
on shard death (:mod:`.failover`), a unified range-migration engine with
live load-aware vnode rebalancing (:mod:`.migration`), recovery/rejoin
range streaming built on it (:mod:`.recovery`), deterministic fault
injection (:mod:`.faults`), client-side routing with per-shard (R, F)
adaptation (:mod:`.router`), multi-key atomic transactions
(:mod:`.txn`), twice-built distributed data structures
(:mod:`.structures`), and per-shard instruments (:mod:`.metrics`).
See ``docs/cluster.md`` for the design.
"""

from repro.cluster.failover import FailoverCoordinator, FailoverEvent, ReinstateEvent
from repro.cluster.faults import Fault, FaultPlan
from repro.cluster.membership import Membership, ShardStatus
from repro.cluster.metrics import ClusterMetrics, ShardMetrics
from repro.cluster.migration import (
    MigrationConfig,
    MigrationEvent,
    RangeMigration,
    RebalanceConfig,
    RebalanceController,
    VnodeMigration,
)
from repro.cluster.recovery import RecoveryConfig, RecoveryCoordinator, RecoveryEvent
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterClient, ClusterConfig, RfpCluster, ShardHandle
from repro.cluster.structures import OneSidedQueue, QueueRegion, RfpQueue, RfpQueueClient
from repro.cluster.txn import TxnConfig, TxnManager

__all__ = [
    "HashRing",
    "Membership",
    "ShardStatus",
    "FailoverCoordinator",
    "FailoverEvent",
    "ReinstateEvent",
    "MigrationConfig",
    "MigrationEvent",
    "RangeMigration",
    "VnodeMigration",
    "RebalanceConfig",
    "RebalanceController",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "RecoveryEvent",
    "Fault",
    "FaultPlan",
    "ClusterMetrics",
    "ShardMetrics",
    "ClusterConfig",
    "ShardHandle",
    "RfpCluster",
    "ClusterClient",
    "TxnConfig",
    "TxnManager",
    "QueueRegion",
    "OneSidedQueue",
    "RfpQueue",
    "RfpQueueClient",
]
