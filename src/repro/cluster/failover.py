"""Failure handling: replica takeover and ring rebalance on shard death.

With replication factor ≥ 2 every key's backups are its primary's
clockwise successors on the ring (:meth:`HashRing.lookup_replicas`), and
writes are primary-backup: a PUT is acknowledged only after every
healthy replica applied it.  That gives failover a one-move mechanism:
when the membership declares a shard ``DEAD``, the coordinator removes
it from the ring, which re-routes each of its ranges to exactly the
shard that already holds the range's replica — no data motion is needed
for the takeover itself.

Two things make the transition graceful rather than a stall:

- Routers stop sending to a shard the moment it turns ``SUSPECT`` (an
  op timeout is enough), so only the operations already in flight at the
  failure pay the timeout.
- A call stuck against the dead shard degrades by the paper's own §3.2
  hybrid rule instead of spinning: its remote fetches burn through the
  retry bound ``R``, the slow-call streak fires, and the client switches
  that connection to server-reply mode (a cheap blocked wait) exactly as
  it would for an overloaded-but-alive server.  Healthy shards never see
  any of this, so their NICs stay in-bound-only throughout — the
  invariant checker asserts as much.

The coordinator traces ``failover`` (the takeover decision) and
``rebalance`` (the ring mutation) events under the ``cluster`` category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.membership import Membership, ShardStatus
from repro.cluster.ring import HashRing
from repro.errors import ClusterError
from repro.sim.atomic import atomic_section
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

__all__ = ["FailoverEvent", "ReinstateEvent", "FailoverCoordinator"]


@dataclass(frozen=True)
class FailoverEvent:
    """One completed takeover: when, who died, who inherited."""

    at_us: float
    shard: str
    successors: List[str]


@dataclass(frozen=True)
class ReinstateEvent:
    """One completed re-entry: when, who rejoined, the restored ring."""

    at_us: float
    shard: str
    ring: List[str]


class FailoverCoordinator:
    """Turns membership DEAD transitions into ring rebalances."""

    def __init__(
        self,
        sim: Simulator,
        ring: HashRing,
        membership: Membership,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.ring = ring
        self.membership = membership
        self.tracer = tracer
        self.events: List[FailoverEvent] = []
        self.reinstatements: List[ReinstateEvent] = []
        membership.subscribe(self._on_status_change)

    @property
    def last_failover_at_us(self) -> Optional[float]:
        """Simulated time of the most recent takeover, if any."""
        return self.events[-1].at_us if self.events else None

    @atomic_section
    def _on_status_change(self, node: str, status: ShardStatus) -> None:
        if status is not ShardStatus.DEAD or node not in self.ring:
            return
        # Record who inherits before mutating the ring: the successors of
        # the dead shard are simply the survivors (every range falls to
        # its clockwise successor, which held the replica).
        self.ring.remove_node(node)
        survivors = self.ring.nodes
        event = FailoverEvent(self.sim.now, node, survivors)
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.record(
                "cluster",
                "failover",
                shard=node,
                successors=",".join(survivors),
            )
            self.tracer.record(
                "cluster",
                "rebalance",
                removed=node,
                survivors=",".join(survivors),
                vnodes=self.ring.vnodes,
            )

    @atomic_section
    def reinstate(self, node: str) -> List[str]:
        """Reverse rebalance: re-insert a recovered shard's vnodes.

        The exact inverse of the failover surgery — adding ``node`` back
        re-routes precisely the ranges that fell to its successors at
        death (remap minimality), restoring the pre-crash ring, since
        placement is a pure function of membership.  Called by the
        recovery coordinator in the same atomic instant as the membership
        promotion; the coordinator traces the paired ``handoff`` event.
        """
        if node in self.ring:
            raise ClusterError(f"shard {node!r} is already on the ring")
        self.ring.add_node(node)
        event = ReinstateEvent(self.sim.now, node, self.ring.nodes)
        self.reinstatements.append(event)
        return event.ring

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailoverCoordinator({len(self.events)} failovers, "
            f"{len(self.reinstatements)} reinstatements)"
        )
