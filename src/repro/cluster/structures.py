"""One distributed FIFO queue, built twice — the papers' comparison.

Storm (fast transactional dataplane) and Brock et al. ("RDMA vs. RPC
for Implementing Distributed Data Structures") both stage the same
contest our simulated RNIC asymmetry was built to decide: implement one
structure with client-driven one-sided verbs, implement it again behind
a server RPC, and watch the one-sided version lose as soon as per-op
remote round-trips exceed the paper's crossover (~3 one-sided verbs buy
one RPC — Table 1's amplification argument).

- :class:`QueueRegion` + :class:`OneSidedQueue`: the server hosts a
  passive ring of slots behind a ``head``/``tail`` header; clients run
  the whole protocol with verbs.  An enqueue is FAA(tail) to claim a
  slot, a payload write, and a ready-flag write — 3 verbs flat.  A
  dequeue is a header read, a CAS(head) to claim, and a slot read that
  may have to poll a not-yet-ready writer — 3 verbs *uncontended*, and
  every lost CAS race or early poll adds more.  Contention makes the
  amplification grow, which is exactly the crossover knob.
- :class:`RfpQueue` + :class:`RfpQueueClient`: the queue lives in server
  memory behind ENQUEUE/DEQUEUE RPC stubs on an
  :class:`~repro.core.server.RfpServer` — one request per logical op no
  matter how contended, with the §3.2 hybrid rule (remote fetch while
  responses are prompt) keeping the server's NIC in-bound-only.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generator, Optional, Tuple

from repro.core.client import RfpClient
from repro.core.config import RfpConfig
from repro.core.rpc import RpcClient, RpcServer
from repro.core.server import RequestContext, RfpServer
from repro.errors import KVError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.sim.core import Simulator
from repro.sim.monitor import Counter

__all__ = [
    "QueueRegion",
    "OneSidedQueue",
    "RfpQueue",
    "RfpQueueClient",
    "QueueStats",
]

#: Queue header: ``head u64 | tail u64``.
_HEADER = struct.Struct("<QQ")
_HEAD_OFFSET = 0
_TAIL_OFFSET = 8

#: Per-slot status word: 0 = not ready, else item length + 1.
_STATUS = struct.Struct("<Q")

#: RPC function ids on the queue's dedicated dispatcher.
ENQUEUE_FUNCTION = 1
DEQUEUE_FUNCTION = 2

#: App-level statuses for the RPC build.
QUEUE_OK = 0
QUEUE_EMPTY = 1


def _pad8(n: int) -> int:
    return (n + 7) & ~7


@dataclass
class QueueStats:
    """Shared shape for both builds, so benches compare like with like."""

    enqueues: Counter = field(default_factory=lambda: Counter("enqueues"))
    dequeues: Counter = field(default_factory=lambda: Counter("dequeues"))
    empties: Counter = field(default_factory=lambda: Counter("empties"))
    #: One-sided: verbs posted.  RPC: requests sent.
    remote_ops: Counter = field(default_factory=lambda: Counter("remote_ops"))
    cas_retries: Counter = field(default_factory=lambda: Counter("cas_retries"))
    ready_polls: Counter = field(default_factory=lambda: Counter("ready_polls"))

    @property
    def ops(self) -> int:
        return self.enqueues.value + self.dequeues.value + self.empties.value

    def remote_ops_per_op(self) -> float:
        """Round-trips per logical operation — the crossover axis."""
        return self.remote_ops.value / self.ops if self.ops else 0.0


class QueueRegion:
    """The one-sided build's passive host: a slot ring behind a header.

    The host CPU serves nothing — it registers the region and steps
    aside, the design whose cost §2.3 tallies.  Slots are single-epoch:
    a claim index past ``capacity`` raises instead of silently wrapping
    onto an unreclaimed slot, so a run must size ``capacity`` above its
    total enqueue count.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        capacity: int = 65536,
        max_item_bytes: int = 64,
        name: str = "osq",
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.capacity = capacity
        self.max_item_bytes = max_item_bytes
        self.slot_bytes = _pad8(_STATUS.size + max_item_bytes)
        self.name = name
        self.region = self.machine.register_memory(
            _HEADER.size + capacity * self.slot_bytes, name=f"{name}.ring"
        )
        self.region.write_local(0, _HEADER.pack(0, 0))
        self._next_client = 0

    def slot_offset(self, index: int) -> int:
        return _HEADER.size + index * self.slot_bytes

    def snapshot(self) -> Tuple[int, int]:
        """Host-side (head, tail) readout — verification only."""
        head, tail = _HEADER.unpack(self.region.read_local(0, _HEADER.size))
        return head, tail

    def peek_slot(self, index: int) -> Optional[bytes]:
        """Host-side slot readout — verification only."""
        raw = self.region.read_local(self.slot_offset(index), self.slot_bytes)
        (status,) = _STATUS.unpack_from(raw)
        if status == 0:
            return None
        return raw[_STATUS.size : _STATUS.size + status - 1]

    def connect(self, machine: Machine, name: str = "") -> "OneSidedQueue":
        self._next_client += 1
        return OneSidedQueue(
            self.sim, machine, self, client_id=self._next_client, name=name
        )


class OneSidedQueue:
    """Client-driven FIFO endpoint: every op is verbs, no server cycles.

    Enqueue: FAA(tail) claims a slot in global order, a write lands the
    payload, a second write flips the slot's status word ready (the word
    is the release fence — a dequeuer never reads a half-written item).
    Dequeue: read the header, return ``None`` on empty (a legitimate
    linearizable outcome at the read's instant), otherwise CAS
    ``head -> head+1`` to claim the front slot and read it, polling
    until its writer's ready word lands.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        host: QueueRegion,
        client_id: int,
        post_cpu_us: float = 0.15,
        max_claim_attempts: int = 512,
        max_ready_polls: int = 512,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.host = host
        self.client_id = client_id
        self.post_cpu_us = post_cpu_us
        self.max_claim_attempts = max_claim_attempts
        self.max_ready_polls = max_ready_polls
        self.name = name or f"osq-client{client_id}@{machine.name}"
        self.stats = QueueStats()
        self.endpoint, _ = host.cluster.connect(machine, host.machine)
        self._landing = machine.register_memory(
            host.slot_bytes, name=f"{self.name}.landing"
        )
        machine.rnic.register_issuer()

    def enqueue(self, item: bytes) -> Generator:
        """Process body: claim, write payload, publish ready — 3 verbs."""
        sim = self.sim
        host = self.host
        if len(item) > host.max_item_bytes:
            raise KVError(f"item of {len(item)} B > {host.max_item_bytes} B")
        yield sim.timeout(self.post_cpu_us)
        claim = yield self.endpoint.post_atomic_faa(host.region, _TAIL_OFFSET, 1)
        self.stats.remote_ops.increment()
        if claim >= host.capacity:
            raise KVError(f"{host.name}: slot ring exhausted at {claim}")
        offset = host.slot_offset(int(claim))
        body = item.ljust(host.max_item_bytes, b"\x00")
        self._landing.write_local(0, _STATUS.pack(len(item) + 1) + body)
        yield sim.timeout(self.post_cpu_us)
        yield self.endpoint.post_write(
            self._landing, _STATUS.size, host.region, offset + _STATUS.size, len(body)
        )
        self.stats.remote_ops.increment()
        yield sim.timeout(self.post_cpu_us)
        yield self.endpoint.post_write(
            self._landing, 0, host.region, offset, _STATUS.size
        )
        self.stats.remote_ops.increment()
        self.stats.enqueues.increment()
        return int(claim)

    def dequeue(self) -> Generator:
        """Process body: returns the front item, or ``None`` when empty.

        3 verbs when uncontended; every lost CAS race re-reads the
        header and re-swaps, every claimed-but-unpublished slot costs
        ready polls — the amplification that hands the RPC build the win
        under contention.
        """
        sim = self.sim
        host = self.host
        for _attempt in range(self.max_claim_attempts):
            yield sim.timeout(self.post_cpu_us)
            yield self.endpoint.post_read(
                self._landing, 0, host.region, _HEAD_OFFSET, _HEADER.size
            )
            self.stats.remote_ops.increment()
            head, tail = _HEADER.unpack(self._landing.read_local(0, _HEADER.size))
            if head == tail:
                self.stats.empties.increment()
                return None
            yield sim.timeout(self.post_cpu_us)
            original = yield self.endpoint.post_atomic_cas(
                host.region, _HEAD_OFFSET, head, head + 1
            )
            self.stats.remote_ops.increment()
            if original != head:
                self.stats.cas_retries.increment()
                continue
            offset = host.slot_offset(head)
            for _poll in range(self.max_ready_polls):
                yield sim.timeout(self.post_cpu_us)
                yield self.endpoint.post_read(
                    self._landing, 0, host.region, offset, host.slot_bytes
                )
                self.stats.remote_ops.increment()
                (status,) = _STATUS.unpack_from(self._landing.read_local(0, _STATUS.size))
                if status:
                    value = self._landing.read_local(_STATUS.size, status - 1)
                    self.stats.dequeues.increment()
                    return value
                self.stats.ready_polls.increment()
            raise KVError(f"{self.name}: slot {head} never became ready")
        raise KVError(f"{self.name}: dequeue CAS livelocked")


class RfpQueue:
    """The RPC build: queue state in server memory behind two stubs.

    One :class:`~repro.core.server.RfpServer` thread owns the deque, so
    no locking is ever needed (the EREW argument) and every client op is
    exactly one request; under the hybrid rule the server stays
    in-bound-only while responses are prompt.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        config: Optional[RfpConfig] = None,
        process_us: float = 0.2,
        name: str = "rfpq",
        tracer=None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.config = config if config is not None else RfpConfig()
        self.process_us = process_us
        self.name = name
        self.tracer = tracer
        self.items: Deque[bytes] = deque()
        rpc = RpcServer()
        rpc.register(ENQUEUE_FUNCTION, self._handle_enqueue)
        rpc.register(DEQUEUE_FUNCTION, self._handle_dequeue)
        self.rpc = rpc
        self.server = RfpServer(
            sim, cluster, self.machine, rpc.handle, 1, self.config, name,
            tracer=tracer,
        )

    def _handle_enqueue(
        self, arguments: bytes, context: RequestContext
    ) -> Tuple[int, bytes, float]:
        self.items.append(arguments)
        return QUEUE_OK, b"", self.process_us

    def _handle_dequeue(
        self, arguments: bytes, context: RequestContext
    ) -> Tuple[int, bytes, float]:
        if not self.items:
            return QUEUE_EMPTY, b"", self.process_us
        return QUEUE_OK, self.items.popleft(), self.process_us

    def connect(
        self,
        machine: Machine,
        name: str = "",
        register_issuer: bool = True,
        config: Optional[RfpConfig] = None,
    ) -> "RfpQueueClient":
        return RfpQueueClient(
            self.sim,
            machine,
            self,
            name=name,
            register_issuer=register_issuer,
            config=config,
        )


class RfpQueueClient:
    """One client thread of the RPC build: one transport, one op = one RPC."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        queue: RfpQueue,
        name: str = "",
        register_issuer: bool = True,
        config: Optional[RfpConfig] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.queue = queue
        self.name = name or f"rfpq-client@{machine.name}"
        self.stats = QueueStats()
        if register_issuer:
            machine.rnic.register_issuer()
        transport = RfpClient(
            sim,
            machine,
            queue.server,
            config=config,
            name=f"{self.name}.p0",
            thread_id=0,
            register_issuer=False,
            tracer=queue.tracer,
        )
        self.transport = RpcClient(transport)

    def enqueue(self, item: bytes) -> Generator:
        """Process body: one RPC."""
        status, _ = yield from self.transport.call(ENQUEUE_FUNCTION, item)
        self.stats.remote_ops.increment()
        if status != QUEUE_OK:
            raise KVError(f"enqueue failed with status {status}")
        self.stats.enqueues.increment()
        return None

    def dequeue(self) -> Generator:
        """Process body: one RPC; returns the item or ``None`` on empty."""
        status, value = yield from self.transport.call(DEQUEUE_FUNCTION, b"")
        self.stats.remote_ops.increment()
        if status == QUEUE_EMPTY:
            self.stats.empties.increment()
            return None
        if status != QUEUE_OK:
            raise KVError(f"dequeue failed with status {status}")
        self.stats.dequeues.increment()
        return value
