"""Per-shard measurement instruments for cluster runs.

One :class:`ShardMetrics` per shard rides the standard
:mod:`repro.sim.monitor` instruments (Counters for op/timeout counts, a
Tally for routed-op latency), and :class:`ClusterMetrics` aggregates
them into report rows.  Readout is idle-safe: a shard that served
nothing during the window reports NaN latency percentiles instead of
crashing the report (see :meth:`repro.sim.monitor.Tally.percentile`).

Besides the cumulative counters the aggregate keeps a *windowed* view:
per-shard (and per-vnode, when the router attributes a ring token) op
counts since the last :meth:`ClusterMetrics.reset_window`.  The window
is reset in sim time by whoever reads it — the rebalance controller
resets after each decision interval — so the load signal tracks the
*current* skew instead of averaging over the whole run.  Benches read
the same signal via the ``load_ratio`` report column, so the balancer
and the reports can never disagree about what "hot" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import ClusterError
from repro.sim.monitor import Counter, Tally

__all__ = ["ShardMetrics", "ClusterMetrics"]

_NAN = float("nan")


@dataclass
class ShardMetrics:
    """Counters and latency tally for one shard's routed traffic."""

    name: str
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    timeouts: Counter = field(default_factory=lambda: Counter("timeouts"))
    #: Operations that reached this shard on a retry, after a first
    #: attempt timed out against another (failing) shard.
    failover_ops: Counter = field(default_factory=lambda: Counter("failover_ops"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))
    #: Recovery-transfer progress: batches pulled by this shard while it
    #: was RECOVERING, and the keys/bytes they carried.
    transfer_batches: Counter = field(
        default_factory=lambda: Counter("transfer_batches")
    )
    transferred_keys: Counter = field(
        default_factory=lambda: Counter("transferred_keys")
    )
    transferred_bytes: Counter = field(
        default_factory=lambda: Counter("transferred_bytes")
    )
    #: Completed crash→rejoin→handoff cycles for this shard.
    recoveries: Counter = field(default_factory=lambda: Counter("recoveries"))
    #: Vnodes this shard *received* through completed live rebalance
    #: migrations (cutovers, not attempts).
    rebalanced_vnodes: Counter = field(
        default_factory=lambda: Counter("rebalanced_vnodes")
    )

    @property
    def operations(self) -> int:
        return self.gets.value + self.puts.value


class ClusterMetrics:
    """Aggregates :class:`ShardMetrics` across a cluster's shards."""

    def __init__(self, shard_names: Iterable[str]) -> None:
        self.shards: Dict[str, ShardMetrics] = {
            name: ShardMetrics(name) for name in shard_names
        }
        if not self.shards:
            raise ClusterError("cluster metrics need at least one shard")
        #: Sim time of the last :meth:`reset_window`.
        self.window_started_us = 0.0
        self._window_ops: Dict[str, int] = {name: 0 for name in self.shards}
        self._window_vnode_ops: Dict[int, int] = {}

    def shard(self, name: str) -> ShardMetrics:
        try:
            return self.shards[name]
        except KeyError:
            raise ClusterError(f"unknown shard {name!r}") from None

    def record_op(
        self,
        name: str,
        op: str,
        latency_us: float,
        rerouted: bool = False,
        token: Optional[int] = None,
    ) -> None:
        """One completed operation routed to shard ``name``.

        ``token`` is the ring token the key landed on (when the caller
        knows it), feeding the per-vnode window the rebalance controller
        uses to pick *which* vnodes to shed from a hot shard.
        """
        metrics = self.shard(name)
        if op == "get":
            metrics.gets.increment()
        else:
            metrics.puts.increment()
        metrics.latency_us.record(latency_us)
        if rerouted:
            metrics.failover_ops.increment()
        self._window_ops[name] = self._window_ops.get(name, 0) + 1
        if token is not None:
            self._window_vnode_ops[token] = self._window_vnode_ops.get(token, 0) + 1

    def record_timeout(self, name: str) -> None:
        self.shard(name).timeouts.increment()

    def record_transfer(self, name: str, keys: int, transferred_bytes: int) -> None:
        """One recovery batch pulled by the rejoining shard ``name``."""
        metrics = self.shard(name)
        metrics.transfer_batches.increment()
        metrics.transferred_keys.increment(keys)
        metrics.transferred_bytes.increment(transferred_bytes)

    def record_recovery(self, name: str) -> None:
        """Shard ``name`` finished a recovery and re-entered the ring."""
        self.shard(name).recoveries.increment()

    def record_rebalance(self, name: str, vnodes: int) -> None:
        """Shard ``name`` received ``vnodes`` tokens at a rebalance cutover."""
        self.shard(name).rebalanced_vnodes.increment(vnodes)

    def total_operations(self) -> int:
        return sum(m.operations for m in self.shards.values())

    # ------------------------------------------------------------------
    # Windowed load signal
    # ------------------------------------------------------------------

    def reset_window(self, now_us: float) -> None:
        """Start a fresh load window at sim time ``now_us``."""
        self.window_started_us = now_us
        self._window_ops = {name: 0 for name in self.shards}
        self._window_vnode_ops = {}

    def window_ops_by_shard(self) -> Dict[str, int]:
        """Ops routed per shard since the last :meth:`reset_window`."""
        return dict(self._window_ops)

    def window_vnode_ops(self) -> Dict[int, int]:
        """Ops per ring token since the last :meth:`reset_window` (only
        tokens the router attributed; untouched vnodes are absent)."""
        return dict(self._window_vnode_ops)

    def load_imbalance(self) -> float:
        """Max/mean of the windowed per-shard loads (NaN when idle)."""
        loads = list(self._window_ops.values())
        total = sum(loads)
        if not loads or total == 0:
            return _NAN
        return max(loads) / (total / len(loads))

    def report_rows(self) -> List[List[object]]:
        """One row per shard, idle-shard safe (NaN for empty tallies).

        ``load_ratio`` is the shard's windowed ops over the windowed
        per-shard mean — the exact signal the rebalance controller
        thresholds on — so a report showing ``3.0`` on one shard and
        ``0.1`` on the rest *is* the skew the balancer saw.
        """
        window = self._window_ops
        window_mean = sum(window.values()) / max(len(window), 1)
        rows: List[List[object]] = []
        for name in sorted(self.shards):
            metrics = self.shards[name]
            shard_window = window.get(name, 0)
            ratio = shard_window / window_mean if window_mean > 0 else _NAN
            rows.append(
                [
                    name,
                    metrics.gets.value,
                    metrics.puts.value,
                    metrics.timeouts.value,
                    metrics.failover_ops.value,
                    metrics.transferred_keys.value,
                    metrics.recoveries.value,
                    metrics.rebalanced_vnodes.value,
                    round(metrics.latency_us.mean(default=_NAN), 3),
                    round(metrics.latency_us.percentile(99, default=_NAN), 3),
                    shard_window,
                    round(ratio, 3),
                ]
            )
        return rows

    #: Column names matching :meth:`report_rows`.
    REPORT_COLUMNS = [
        "shard",
        "gets",
        "puts",
        "timeouts",
        "failover_ops",
        "transferred_keys",
        "recoveries",
        "rebalanced_vnodes",
        "mean_latency_us",
        "p99_latency_us",
        "window_ops",
        "load_ratio",
    ]
