"""Per-shard measurement instruments for cluster runs.

One :class:`ShardMetrics` per shard rides the standard
:mod:`repro.sim.monitor` instruments (Counters for op/timeout counts, a
Tally for routed-op latency), and :class:`ClusterMetrics` aggregates
them into report rows.  Readout is idle-safe: a shard that served
nothing during the window reports NaN latency percentiles instead of
crashing the report (see :meth:`repro.sim.monitor.Tally.percentile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import ClusterError
from repro.sim.monitor import Counter, Tally

__all__ = ["ShardMetrics", "ClusterMetrics"]

_NAN = float("nan")


@dataclass
class ShardMetrics:
    """Counters and latency tally for one shard's routed traffic."""

    name: str
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    timeouts: Counter = field(default_factory=lambda: Counter("timeouts"))
    #: Operations that reached this shard on a retry, after a first
    #: attempt timed out against another (failing) shard.
    failover_ops: Counter = field(default_factory=lambda: Counter("failover_ops"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))
    #: Recovery-transfer progress: batches pulled by this shard while it
    #: was RECOVERING, and the keys/bytes they carried.
    transfer_batches: Counter = field(
        default_factory=lambda: Counter("transfer_batches")
    )
    transferred_keys: Counter = field(
        default_factory=lambda: Counter("transferred_keys")
    )
    transferred_bytes: Counter = field(
        default_factory=lambda: Counter("transferred_bytes")
    )
    #: Completed crash→rejoin→handoff cycles for this shard.
    recoveries: Counter = field(default_factory=lambda: Counter("recoveries"))

    @property
    def operations(self) -> int:
        return self.gets.value + self.puts.value


class ClusterMetrics:
    """Aggregates :class:`ShardMetrics` across a cluster's shards."""

    def __init__(self, shard_names: Iterable[str]) -> None:
        self.shards: Dict[str, ShardMetrics] = {
            name: ShardMetrics(name) for name in shard_names
        }
        if not self.shards:
            raise ClusterError("cluster metrics need at least one shard")

    def shard(self, name: str) -> ShardMetrics:
        try:
            return self.shards[name]
        except KeyError:
            raise ClusterError(f"unknown shard {name!r}") from None

    def record_op(
        self,
        name: str,
        op: str,
        latency_us: float,
        rerouted: bool = False,
    ) -> None:
        """One completed operation routed to shard ``name``."""
        metrics = self.shard(name)
        if op == "get":
            metrics.gets.increment()
        else:
            metrics.puts.increment()
        metrics.latency_us.record(latency_us)
        if rerouted:
            metrics.failover_ops.increment()

    def record_timeout(self, name: str) -> None:
        self.shard(name).timeouts.increment()

    def record_transfer(self, name: str, keys: int, transferred_bytes: int) -> None:
        """One recovery batch pulled by the rejoining shard ``name``."""
        metrics = self.shard(name)
        metrics.transfer_batches.increment()
        metrics.transferred_keys.increment(keys)
        metrics.transferred_bytes.increment(transferred_bytes)

    def record_recovery(self, name: str) -> None:
        """Shard ``name`` finished a recovery and re-entered the ring."""
        self.shard(name).recoveries.increment()

    def total_operations(self) -> int:
        return sum(m.operations for m in self.shards.values())

    def report_rows(self) -> List[List[object]]:
        """One row per shard, idle-shard safe (NaN for empty tallies)."""
        rows: List[List[object]] = []
        for name in sorted(self.shards):
            metrics = self.shards[name]
            rows.append(
                [
                    name,
                    metrics.gets.value,
                    metrics.puts.value,
                    metrics.timeouts.value,
                    metrics.failover_ops.value,
                    metrics.transferred_keys.value,
                    metrics.recoveries.value,
                    round(metrics.latency_us.mean(default=_NAN), 3),
                    round(metrics.latency_us.percentile(99, default=_NAN), 3),
                ]
            )
        return rows

    #: Column names matching :meth:`report_rows`.
    REPORT_COLUMNS = [
        "shard",
        "gets",
        "puts",
        "timeouts",
        "failover_ops",
        "transferred_keys",
        "recoveries",
        "mean_latency_us",
        "p99_latency_us",
    ]
