"""The two pre-RFP design paradigms (paper Table 1).

Every RDMA RPC design chooses, per step of Fig. 2:

=============  =================  =================  ==================
Paradigm       Request send       Request process    Result return
=============  =================  =================  ==================
server-reply   in-bound (Write)   server involved    out-bound (Write)
server-bypass  in-bound (Write)   server bypassed    in-bound (Read)
RFP            in-bound (Write)   server involved    in-bound (Read)
meaningless    in-bound (Write)   server bypassed    out-bound (Write)
=============  =================  =================  ==================

- :mod:`~repro.paradigms.server_reply` — the porting-friendly baseline:
  identical to RFP except the server pushes every result with an
  out-bound RDMA Write, capping it at the out-bound pipeline rate.
- :mod:`~repro.paradigms.server_bypass` — the client-side access pattern
  of Pilaf/FaRM-style designs: the server CPU never touches a request and
  the client pays *bypass access amplification* (multiple one-sided reads
  for metadata probing, data transfer, and conflict retries).

The "meaningless" corner (bypassed server somehow issuing out-bound
replies) combines both weaknesses and is reproduced in the Table 1 bench
as server-reply with zero process time.
"""

from repro.paradigms.server_bypass import SyntheticBypassClient
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer

__all__ = ["ServerReplyClient", "ServerReplyServer", "SyntheticBypassClient"]
