"""The server-reply paradigm.

The paper's ServerReply comparison system "is extended from Jakiro and
differs from Jakiro in that the server thread directly sends the result
back to the client thread through RDMA Write" (§4.2).  We build it the
same way: it *is* the RFP machinery with every channel pinned to
``SERVER_REPLY`` mode and the hybrid switch disabled.

- request path: identical one-sided Write into the server's buffers,
- result path: the server thread posts an out-bound RDMA Write per
  response and waits for its completion — so aggregate throughput is
  capped by the server NIC's out-bound pipeline (~2.11 MOPS), and adding
  server threads past the issue-contention knee *reduces* throughput
  (Fig. 12's ServerReply curve).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.client import RfpClient
from repro.core.config import RfpConfig
from repro.core.mode import Mode
from repro.core.server import ClientChannel, Handler, RfpServer
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion
from repro.sim.core import Simulator

__all__ = ["ServerReplyClient", "ServerReplyServer"]


def _pinned_config(config: Optional[RfpConfig]) -> RfpConfig:
    base = config if config is not None else RfpConfig()
    return replace(base, hybrid_enabled=False)


class ServerReplyServer(RfpServer):
    """An RFP server whose clients are permanently in server-reply mode."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Machine,
        handler: Handler,
        threads: int = 6,
        config: Optional[RfpConfig] = None,
        name: str = "server-reply",
        tracer=None,
    ) -> None:
        super().__init__(
            sim,
            cluster,
            machine,
            handler,
            threads,
            _pinned_config(config),
            name,
            tracer=tracer,
        )

    def accept(
        self,
        client_machine: Machine,
        reply_region: MemoryRegion,
        thread_id: Optional[int] = None,
    ) -> ClientChannel:
        channel = super().accept(client_machine, reply_region, thread_id)
        channel.mode = Mode.SERVER_REPLY
        return channel


class ServerReplyClient(RfpClient):
    """An RFP client that always blocks for the server's pushed reply."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: ServerReplyServer,
        config: Optional[RfpConfig] = None,
        name: str = "",
        thread_id: Optional[int] = None,
        register_issuer: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            sim,
            machine,
            server,
            _pinned_config(config),
            name=name or "reply-client",
            thread_id=thread_id,
            register_issuer=register_issuer,
            tracer=tracer,
        )
        self.policy.mode = Mode.SERVER_REPLY
