"""The server-bypass paradigm: client-driven one-sided access.

In server-bypass designs the server CPU never processes requests; clients
reach into server memory with one-sided RDMA Reads/Writes and coordinate
among themselves.  The price is *bypass access amplification* (§2.3): a
logical request needs several RDMA operations — metadata probes to locate
the data, the data transfer itself, checksum validation retries when a
read races a writer, and key-conflict retries.

This module provides the **synthetic** client used by the Fig. 6
microbenchmark (a configurable number of one-sided reads per logical
request); the full, honest server-bypass *system* — Pilaf with its 3-way
Cuckoo hash and CRC64-validated GETs — lives in
:mod:`repro.baselines.pilaf` and drives its reads through real data
structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally

__all__ = ["SyntheticBypassClient", "BypassStats"]


@dataclass
class BypassStats:
    """Counters for a server-bypass client."""

    requests: Counter = field(default_factory=lambda: Counter("requests"))
    rdma_reads: Counter = field(default_factory=lambda: Counter("rdma_reads"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))

    def reads_per_request(self) -> float:
        if self.requests.value == 0:
            return 0.0
        return self.rdma_reads.value / self.requests.value


class SyntheticBypassClient:
    """A client that completes one logical request with k one-sided reads.

    This is the experiment behind Fig. 6: as ``operations_per_request``
    grows (metadata probing, conflict resolution), per-request throughput
    collapses even though the server NIC's in-bound IOPS stays saturated.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        cluster: Cluster,
        server_region: MemoryRegion,
        operations_per_request: int,
        op_size: int = 32,
        post_cpu_us: float = 0.15,
        name: str = "",
    ) -> None:
        if operations_per_request < 1:
            raise ProtocolError(
                f"a request needs >= 1 operation, got {operations_per_request}"
            )
        if op_size < 1:
            raise ProtocolError(f"op size must be >= 1, got {op_size}")
        self.sim = sim
        self.machine = machine
        self.operations_per_request = operations_per_request
        self.op_size = op_size
        self.post_cpu_us = post_cpu_us
        self.name = name or f"bypass-client@{machine.name}"
        self.stats = BypassStats()
        server_machine = server_region.machine
        self.endpoint, _ = cluster.connect(machine, server_machine)
        self.server_region = server_region
        self._landing = machine.register_memory(
            max(op_size, 64), name=f"{self.name}.landing"
        )
        self._offsets = self._spread_offsets(server_region.size, op_size)
        machine.rnic.register_issuer()

    def _spread_offsets(self, region_size: int, op_size: int) -> list:
        """Distinct probe offsets, mimicking hash-bucket scatter."""
        count = max(1, self.operations_per_request)
        stride = max(op_size, (region_size - op_size) // count or 1)
        return [(i * stride) % max(1, region_size - op_size) for i in range(count)]

    def request(self) -> Generator:
        """Process body: one logical request = k sequential sync reads."""
        sim = self.sim
        start = sim.now
        for offset in self._offsets:
            yield sim.timeout(self.post_cpu_us)
            yield self.endpoint.post_read(
                self._landing, 0, self.server_region, offset, self.op_size
            )
            self.stats.rdma_reads.increment()
        self.stats.requests.increment()
        self.stats.latency_us.record(sim.now - start)

    def run_forever(self) -> Generator:
        """Process body: issue requests back to back."""
        while True:
            yield from self.request()
