"""Exception hierarchy shared across the reproduction.

Each layer raises a subclass of :class:`ReproError` so callers can catch
library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareModelError",
    "RegistrationError",
    "TransportError",
    "ProtocolError",
    "KVError",
    "KeyTooLargeError",
    "ValueTooLargeError",
    "ClusterError",
    "WorkloadError",
    "BenchError",
    "ExpError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class HardwareModelError(ReproError):
    """Invalid hardware configuration or misuse of the hardware model."""


class RegistrationError(HardwareModelError):
    """RDMA access to memory that is not registered with the RNIC."""


class TransportError(ReproError):
    """Failure in a simulated RDMA verb or connection."""


class ProtocolError(ReproError):
    """Malformed message or invalid state in an RPC paradigm."""


class KVError(ReproError):
    """Key-value store error."""


class KeyTooLargeError(KVError):
    """Key exceeds the store's configured maximum key size."""


class ValueTooLargeError(KVError):
    """Value exceeds the store's configured maximum value size."""


class ClusterError(ReproError):
    """Invalid cluster-layer configuration or an unroutable operation."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class BenchError(ReproError):
    """Benchmark harness misconfiguration."""


class ExpError(BenchError):
    """Invalid experiment spec, artifact, or ``repro.exp`` registry state."""
