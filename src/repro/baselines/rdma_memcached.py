"""RDMA-Memcached (OSU) — the CPU-bound server-reply baseline (§4.2).

The paper's characterization, which this model reproduces:

- server threads *share* the cache (hash table + global LRU list), so
  every request takes a global lock for the LRU/bookkeeping critical
  section — writes hold it much longer than reads (Fig. 16's collapse
  under PUT-heavy load),
- each thread also packs/unpacks messages and performs its own network
  operations, a heavyweight software path — so throughput is bounded by
  CPU, not the RNIC, and grows with thread count up to the core count
  (Fig. 12),
- skewed workloads *help*: hot keys hit caches and shortcut the lookup
  path, letting 16 threads finally saturate the out-bound pipeline
  (Fig. 19).

Results are pushed back with out-bound RDMA Writes, so even the best
case is capped at the out-bound rate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generator, Optional, Tuple

from repro.core.config import RfpConfig
from repro.core.headers import REQUEST_HEADER_BYTES, RequestHeader
from repro.core.mode import Mode
from repro.core.rpc import RpcClient
from repro.core.server import ClientChannel, RfpServer
from repro.errors import KVError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.kv.serialization import (
    GET_FUNCTION,
    PUT_FUNCTION,
    STATUS_NOT_FOUND,
    STATUS_OK,
    pack_get_request,
    pack_put_request,
    unpack_get_request,
    unpack_put_request,
)
from repro.paradigms.server_reply import ServerReplyClient
from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.sim.resources import Resource, Store

__all__ = ["MemcachedCostModel", "RdmaMemcachedServer", "RdmaMemcachedClient"]


@dataclass(frozen=True)
class MemcachedCostModel:
    """Per-request CPU costs, calibrated to the paper's measurements
    (peak 1.3 MOPS at 16 threads for 95% GET; ~14x below Jakiro at
    95% PUT; out-bound-saturating under skew)."""

    recv_handling_us: float = 1.2
    get_process_us: float = 9.0
    put_process_us: float = 12.0
    get_lock_us: float = 0.6
    put_lock_us: float = 2.5
    #: Multiplier on process time when the key was touched recently
    #: (cache locality under skew).
    locality_factor: float = 0.30
    locality_window: int = 512


@dataclass
class MemcachedStats:
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    hits: Counter = field(default_factory=lambda: Counter("hits"))
    lock_waits: Counter = field(default_factory=lambda: Counter("lock_waits"))


class _SharedLruCache:
    """The shared hash + global LRU structure all server threads touch."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise KVError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: "OrderedDict[bytes, bytes]" = OrderedDict()
        self.evictions = 0

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._items.get(key)
        if value is not None:
            self._items.move_to_end(key)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        if key in self._items:
            self._items.move_to_end(key)
        elif len(self._items) >= self.capacity:
            self._items.popitem(last=False)
            self.evictions += 1
        self._items[key] = value

    def __len__(self) -> int:
        return len(self._items)


class RdmaMemcachedServer(RfpServer):
    """Memcached-style server: shared cache, global lock, CPU-heavy path.

    Reuses the channel/buffer plumbing of :class:`RfpServer` but replaces
    the worker loop: every request crosses the global LRU lock and the
    thread pushes its own reply.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        threads: int = 16,
        capacity: int = 1 << 20,
        cost_model: MemcachedCostModel = MemcachedCostModel(),
        config: Optional[RfpConfig] = None,
        name: str = "rdma-memcached",
    ) -> None:
        machine = machine if machine is not None else cluster.server
        self.cache = _SharedLruCache(capacity)
        self.cost_model = cost_model
        self.lock = Resource(sim, capacity=1)
        self.kv_stats = MemcachedStats()
        self._recent: "OrderedDict[bytes, None]" = OrderedDict()
        super().__init__(
            sim,
            cluster,
            machine,
            handler=self._unused_handler,
            threads=threads,
            config=config if config is not None else RfpConfig(hybrid_enabled=False),
            name=name,
        )

    @staticmethod
    def _unused_handler(payload: bytes, context) -> Tuple[bytes, float]:
        raise AssertionError("memcached overrides the worker loop")  # pragma: no cover

    def accept(self, client_machine, reply_region, thread_id=None) -> ClientChannel:
        channel = super().accept(client_machine, reply_region, thread_id)
        channel.mode = Mode.SERVER_REPLY
        return channel

    def preload(self, pairs) -> None:
        for key, value in pairs:
            self.cache.put(key, value)

    # ------------------------------------------------------------------
    # The memcached worker loop
    # ------------------------------------------------------------------

    def _thread_body(self, thread_id: int, store: Store):
        sim = self.sim
        cost = self.cost_model
        while True:
            channel: ClientChannel = yield store.get()
            yield sim.timeout(cost.recv_handling_us)
            header = RequestHeader.unpack(
                channel.request_region.read_local(0, REQUEST_HEADER_BYTES)
            )
            payload = channel.request_region.read_local(
                REQUEST_HEADER_BYTES, header.size
            )
            function_id = payload[0]
            arguments = payload[2:]
            response = yield from self._execute(function_id, arguments)
            self._publish_response(channel, header.status, response)
            yield from self._send_reply(channel)

    def _execute(self, function_id: int, arguments: bytes) -> Generator:
        sim = self.sim
        cost = self.cost_model
        if function_id == GET_FUNCTION:
            key = unpack_get_request(arguments)
            lock_us, process_us = cost.get_lock_us, cost.get_process_us
        elif function_id == PUT_FUNCTION:
            key, value = unpack_put_request(arguments)
            lock_us, process_us = cost.put_lock_us, cost.put_process_us
        else:
            raise KVError(f"unknown memcached function {function_id}")
        # Hot keys shortcut both the lookup work *and* the time spent
        # under the global lock (warm hash walk) — this is why skewed
        # read-heavy load lets memcached finally reach the out-bound
        # ceiling (§4.4.3, Fig. 19).
        locality = self._locality(key)
        process_us *= locality
        if function_id == GET_FUNCTION:
            lock_us *= locality
        grant = self.lock.request()
        if not grant.triggered:
            self.kv_stats.lock_waits.increment()
        yield grant
        yield sim.timeout(lock_us)
        if function_id == GET_FUNCTION:
            value = self.cache.get(key)
            self.kv_stats.gets.increment()
            if value is not None:
                self.kv_stats.hits.increment()
        else:
            self.cache.put(key, value)
            self.kv_stats.puts.increment()
            value = b""
        self.lock.release()
        yield sim.timeout(process_us)
        if function_id == GET_FUNCTION and value is None:
            return bytes([STATUS_NOT_FOUND])
        return bytes([STATUS_OK]) + (value if function_id == GET_FUNCTION else b"")

    def _locality(self, key: bytes) -> float:
        """Recently-touched keys process faster (cache locality, §4.4.3)."""
        factor = (
            self.cost_model.locality_factor if key in self._recent else 1.0
        )
        self._recent[key] = None
        self._recent.move_to_end(key)
        while len(self._recent) > self.cost_model.locality_window:
            self._recent.popitem(last=False)
        return factor

    def connect(self, machine: Machine, name: str = "") -> "RdmaMemcachedClient":
        return RdmaMemcachedClient(self.sim, machine, self, name=name)


class RdmaMemcachedClient:
    """A memcached client: single server-reply transport, GET/PUT API."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: RdmaMemcachedServer,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.server = server
        self.name = name or f"memcached-client@{machine.name}"
        self.transport = ServerReplyClient(sim, machine, server, name=self.name)
        self._rpc = RpcClient(self.transport)

    def get(self, key: bytes) -> Generator:
        """Process body: GET; returns value or ``None``."""
        status, value = yield from self._rpc.call(GET_FUNCTION, pack_get_request(key))
        if status == STATUS_NOT_FOUND:
            return None
        if status != STATUS_OK:
            raise KVError(f"memcached GET failed with status {status}")
        return value

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: PUT."""
        status, _ = yield from self._rpc.call(
            PUT_FUNCTION, pack_put_request(key, value)
        )
        if status != STATUS_OK:
            raise KVError(f"memcached PUT failed with status {status}")
        return None
