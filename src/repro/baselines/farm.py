"""A FaRM-style lookup path (§5, Related Work).

FaRM's Hopscotch layout guarantees a key lives within ``N`` consecutive
slots of its home bucket, so a client fetches the *whole neighborhood* —
``N × (header + key + value + crc)`` bytes — with one oversized RDMA Read
and scans it locally.  The paper's critique, which this baseline
reproduces in the ``tab1``/related-work benches:

- a GET moves ``N*(Sk+Sv)`` bytes for one useful pair (bandwidth and
  in-bound pipeline time wasted on large transfers),
- latency is dominated by the big read (paper: 35 µs vs Jakiro's 5.78 µs
  average for 16 B keys / 32 B values at load),
- PUTs still use server-reply, inheriting the out-bound ceiling.

Slot layout: ``used u8 | key_len u8 | value_len u16 | pad u32 | key[kmax]
| value[vmax] | crc64 u64``; the CRC covers the header+key+value prefix
so torn slots (a racing PUT) are detected and retried, as in Pilaf.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.core.config import RfpConfig
from repro.core.rpc import RpcClient, RpcServer
from repro.errors import KVError, ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.memory import staged_write
from repro.kv.crc import crc64
from repro.kv.hopscotch import HopscotchTable
from repro.kv.serialization import (
    PUT_FUNCTION,
    STATUS_OK,
    pack_put_request,
    unpack_put_request,
)
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally

__all__ = ["FarmServer", "FarmClient"]

_SLOT_HEADER = struct.Struct("<BBHI")
_CRC = struct.Struct("<Q")


@dataclass
class FarmStats:
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    rdma_reads: Counter = field(default_factory=lambda: Counter("rdma_reads"))
    bytes_fetched: Counter = field(default_factory=lambda: Counter("bytes_fetched"))
    checksum_retries: Counter = field(default_factory=lambda: Counter("crc_retries"))
    get_latency_us: Tally = field(default_factory=lambda: Tally("get_latency_us"))

    def bytes_per_get(self) -> float:
        if self.gets.value == 0:
            return 0.0
        return self.bytes_fetched.value / self.gets.value


class FarmServer:
    """Hopscotch table mirrored into registered memory; PUTs via RPC."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        capacity: int = 8192,
        neighborhood: int = 8,
        max_key_bytes: int = 16,
        max_value_bytes: int = 64,
        threads: int = 4,
        put_write_us: float = 0.25,
        config: Optional[RfpConfig] = None,
        name: str = "farm",
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes
        self.put_write_us = put_write_us
        self.slot_bytes = (
            _SLOT_HEADER.size + max_key_bytes + max_value_bytes + _CRC.size
        )
        self.table: HopscotchTable = HopscotchTable(
            capacity, neighborhood, on_slot_update=self._mirror_slot
        )
        self.region = self.machine.register_memory(
            capacity * self.slot_bytes, name=f"{name}.table"
        )
        self._staged = False
        rpc = RpcServer()
        rpc.register(PUT_FUNCTION, self._handle_put)
        self.rpc_server = ServerReplyServer(
            sim, cluster, self.machine, rpc.handle, threads, config, name=f"{name}.rpc"
        )

    def _encode_slot(self, key: bytes, value: bytes) -> bytes:
        body = (
            _SLOT_HEADER.pack(1, len(key), len(value), 0)
            + key.ljust(self.max_key_bytes, b"\x00")
            + value.ljust(self.max_value_bytes, b"\x00")
        )
        return body + _CRC.pack(crc64(body))

    def _mirror_slot(self, index: int, key, value) -> None:
        offset = index * self.slot_bytes
        if key is None:
            self.region.write_local(offset, bytes(self.slot_bytes))
            return
        encoded = self._encode_slot(key, value)
        if self._staged:
            self.sim.process(
                staged_write(self.sim, self.region, offset, encoded, self.put_write_us),
                name="farm.slot-write",
            )
        else:
            self.region.write_local(offset, encoded)

    def _handle_put(self, arguments: bytes, context) -> Tuple[int, bytes, float]:
        key, value = unpack_put_request(arguments)
        if len(key) > self.max_key_bytes or len(value) > self.max_value_bytes:
            raise KVError("key/value exceed the fixed FaRM slot geometry")
        self._staged = True
        try:
            self.table.insert(key, value)
        finally:
            self._staged = False
        return STATUS_OK, b"", self.put_write_us + 0.20

    def preload(self, pairs) -> None:
        for key, value in pairs:
            self.table.insert(key, value)

    def connect(self, machine: Machine, name: str = "") -> "FarmClient":
        return FarmClient(self.sim, machine, self, name=name)


class FarmClient:
    """One-sided neighborhood GETs, server-reply PUTs."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: FarmServer,
        post_cpu_us: float = 0.15,
        max_retries: int = 64,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.server = server
        self.post_cpu_us = post_cpu_us
        self.max_retries = max_retries
        self.name = name or f"farm-client@{machine.name}"
        self.stats = FarmStats()
        self.endpoint, _ = server.cluster.connect(machine, server.machine)
        self._landing = machine.register_memory(
            server.table.neighborhood * server.slot_bytes, name=f"{self.name}.landing"
        )
        self._rpc = RpcClient(
            ServerReplyClient(
                sim,
                machine,
                server.rpc_server,
                name=f"{self.name}.rpc",
                register_issuer=False,
            )
        )
        machine.rnic.register_issuer()

    def get(self, key: bytes) -> Generator:
        """Process body: fetch the key's whole neighborhood, scan locally."""
        sim = self.sim
        start = sim.now
        server = self.server
        self.stats.gets.increment()
        slots = server.table.neighborhood_slots(key)
        runs = self._contiguous_runs(slots)
        for _attempt in range(self.max_retries):
            landed = 0
            for first_slot, count in runs:
                yield sim.timeout(self.post_cpu_us)
                length = count * server.slot_bytes
                yield self.endpoint.post_read(
                    self._landing,
                    landed,
                    server.region,
                    first_slot * server.slot_bytes,
                    length,
                )
                self.stats.rdma_reads.increment()
                self.stats.bytes_fetched.increment(length)
                landed += length
            result = self._scan(key, len(slots))
            if result is not None:
                found, value = result
                self.stats.get_latency_us.record(sim.now - start)
                return value if found else None
            self.stats.checksum_retries.increment()
        raise KVError(f"FaRM GET of {key!r} kept racing writers")

    def _contiguous_runs(self, slots: List[int]) -> List[Tuple[int, int]]:
        """Coalesce the neighborhood into contiguous reads (the wrap at
        the table end needs a second read)."""
        runs: List[Tuple[int, int]] = []
        start = slots[0]
        length = 1
        for previous, current in zip(slots, slots[1:]):
            if current == previous + 1:
                length += 1
            else:
                runs.append((start, length))
                start, length = current, 1
        runs.append((start, length))
        return runs

    def _scan(self, key: bytes, slot_count: int):
        """Scan fetched slots; None => torn slot, retry the fetch."""
        server = self.server
        for index in range(slot_count):
            raw = self._landing.read_local(
                index * server.slot_bytes, server.slot_bytes
            )
            used, key_len, value_len, _pad = _SLOT_HEADER.unpack_from(raw)
            if not used:
                continue
            body, (crc,) = raw[: -_CRC.size], _CRC.unpack(raw[-_CRC.size :])
            if crc != crc64(body):
                return None  # torn slot: refetch the neighborhood
            slot_key = raw[_SLOT_HEADER.size : _SLOT_HEADER.size + key_len]
            if slot_key == key:
                value_start = _SLOT_HEADER.size + server.max_key_bytes
                return True, raw[value_start : value_start + value_len]
        return False, None

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: PUT via the server-reply channel."""
        status, _ = yield from self._rpc.call(
            PUT_FUNCTION, pack_put_request(key, value)
        )
        if status != STATUS_OK:
            raise ProtocolError(f"FaRM PUT failed with status {status}")
        self.stats.puts.increment()
        return None
