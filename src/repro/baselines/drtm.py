"""A DrTM-style lock-based server-bypass store (§5).

DrTM (Wei et al., SOSP'15) coordinates one-sided access with "explicit
locks" (plus HTM on the server, which has no remote analogue): a client
takes a per-record spinlock with RDMA compare-and-swap, reads or writes
the record with one-sided verbs, and releases the lock with a write.
This baseline reproduces that access pattern — and the cost the paper's
§2.3/§5 charges it with: every logical operation is now 3+ one-sided
verbs, and lock contention on hot keys burns further CAS retries.

Layout: a direct-mapped slot table (linear probing for placement), each
slot ``lock u64 | used u8 | key_len u8 | value_len u16 | pad u32 |
key[kmax] | value[vmax]``.  GETs also take the lock — the simplest
correct protocol (no CRC machinery needed) and the one whose contention
behaviour §5 critiques.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import KVError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally

__all__ = ["DrtmServer", "DrtmClient"]

_SLOT_HEADER = struct.Struct("<QBBHI")  # lock, used, key_len, value_len, pad
_UNLOCKED = 0


@dataclass
class DrtmStats:
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    rdma_ops: Counter = field(default_factory=lambda: Counter("rdma_ops"))
    cas_retries: Counter = field(default_factory=lambda: Counter("cas_retries"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))

    def ops_per_request(self) -> float:
        requests = self.gets.value + self.puts.value
        return self.rdma_ops.value / requests if requests else 0.0


class DrtmServer:
    """Passive host: registers the slot table; its CPU serves nothing."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        capacity: int = 8192,
        max_key_bytes: int = 16,
        max_value_bytes: int = 64,
        name: str = "drtm",
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.capacity = capacity
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes
        self.slot_bytes = _pad8(
            _SLOT_HEADER.size + max_key_bytes + max_value_bytes
        )
        self.region = self.machine.register_memory(
            capacity * self.slot_bytes, name=f"{name}.table"
        )
        self._next_client = 0

    def slot_of(self, key: bytes) -> int:
        """The key's home slot (clients compute the same placement)."""
        from repro.kv.store import key_hash

        return key_hash(key) % self.capacity

    def preload(self, pairs) -> None:
        """Host-side population before clients arrive (lock-free)."""
        for key, value in pairs:
            slot = self._place(key)
            self.region.write_local(
                slot * self.slot_bytes, self._encode(key, value)
            )

    def _place(self, key: bytes) -> int:
        """Linear probing for a free or matching slot (host side only)."""
        start = self.slot_of(key)
        for step in range(self.capacity):
            slot = (start + step) % self.capacity
            raw = self.region.read_local(slot * self.slot_bytes, _SLOT_HEADER.size)
            _lock, used, key_len, _value_len, _pad = _SLOT_HEADER.unpack(raw)
            if not used:
                return slot
            offset = slot * self.slot_bytes + _SLOT_HEADER.size
            if self.region.read_local(offset, key_len) == key:
                return slot
        raise KVError("DrTM slot table full")

    def _encode(self, key: bytes, value: bytes) -> bytes:
        if len(key) > self.max_key_bytes:
            raise KVError(f"key of {len(key)} B > {self.max_key_bytes} B")
        if len(value) > self.max_value_bytes:
            raise KVError(f"value of {len(value)} B > {self.max_value_bytes} B")
        body = (
            _SLOT_HEADER.pack(_UNLOCKED, 1, len(key), len(value), 0)
            + key.ljust(self.max_key_bytes, b"\x00")
            + value.ljust(self.max_value_bytes, b"\x00")
        )
        return body.ljust(self.slot_bytes, b"\x00")

    def connect(self, machine: Machine, name: str = "") -> "DrtmClient":
        self._next_client += 1
        return DrtmClient(
            self.sim, machine, self, client_id=self._next_client, name=name
        )


def _pad8(n: int) -> int:
    return (n + 7) & ~7


class DrtmClient:
    """All logic lives here: CAS-lock, one-sided access, unlock."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: DrtmServer,
        client_id: int,
        post_cpu_us: float = 0.15,
        max_lock_attempts: int = 512,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.server = server
        self.client_id = client_id
        self.post_cpu_us = post_cpu_us
        self.max_lock_attempts = max_lock_attempts
        self.name = name or f"drtm-client{client_id}@{machine.name}"
        self.stats = DrtmStats()
        self.endpoint, _ = server.cluster.connect(machine, server.machine)
        self._landing = machine.register_memory(
            server.slot_bytes, name=f"{self.name}.landing"
        )
        machine.rnic.register_issuer()

    # ------------------------------------------------------------------
    # Lock protocol
    # ------------------------------------------------------------------

    def _lock_offset(self, slot: int) -> int:
        return slot * self.server.slot_bytes

    def _acquire(self, slot: int) -> Generator:
        sim = self.sim
        for _attempt in range(self.max_lock_attempts):
            yield sim.timeout(self.post_cpu_us)
            original = yield self.endpoint.post_atomic_cas(
                self.server.region, self._lock_offset(slot), _UNLOCKED, self.client_id
            )
            self.stats.rdma_ops.increment()
            if original == _UNLOCKED:
                return None
            self.stats.cas_retries.increment()
        raise KVError(f"{self.name}: lock on slot {slot} livelocked")

    def _release(self, slot: int) -> Generator:
        yield self.sim.timeout(self.post_cpu_us)
        self._landing.write_local(0, _UNLOCKED.to_bytes(8, "little"))
        yield self.endpoint.post_write(
            self._landing, 0, self.server.region, self._lock_offset(slot), 8
        )
        self.stats.rdma_ops.increment()

    # ------------------------------------------------------------------
    # KV operations
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Process body: locked one-sided GET; None when absent."""
        sim = self.sim
        began = sim.now
        server = self.server
        slot = server.slot_of(key)
        value = None
        for _probe in range(server.capacity):
            yield from self._acquire(slot)
            yield sim.timeout(self.post_cpu_us)
            yield self.endpoint.post_read(
                self._landing, 0, server.region, slot * server.slot_bytes,
                server.slot_bytes,
            )
            self.stats.rdma_ops.increment()
            _lock, used, key_len, value_len, _pad = _SLOT_HEADER.unpack_from(
                self._landing.read_local(0, _SLOT_HEADER.size)
            )
            slot_key = self._landing.read_local(_SLOT_HEADER.size, key_len)
            yield from self._release(slot)
            if not used:
                break  # empty slot terminates the probe chain
            if slot_key == key:
                value_start = _SLOT_HEADER.size + server.max_key_bytes
                value = self._landing.read_local(value_start, value_len)
                break
            slot = (slot + 1) % server.capacity  # placement collision
        self.stats.gets.increment()
        self.stats.latency_us.record(sim.now - began)
        return value

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: locked one-sided PUT into the key's slot."""
        sim = self.sim
        began = sim.now
        server = self.server
        slot = server.slot_of(key)
        encoded = server._encode(key, value)
        for _probe in range(server.capacity):
            yield from self._acquire(slot)
            yield sim.timeout(self.post_cpu_us)
            yield self.endpoint.post_read(
                self._landing, 0, server.region, slot * server.slot_bytes,
                _SLOT_HEADER.size + server.max_key_bytes,
            )
            self.stats.rdma_ops.increment()
            _lock, used, key_len, _value_len, _pad = _SLOT_HEADER.unpack_from(
                self._landing.read_local(0, _SLOT_HEADER.size)
            )
            slot_key = self._landing.read_local(_SLOT_HEADER.size, key_len)
            if not used or slot_key == key:
                # Write the record body (everything after the lock word),
                # then unlock.  The lock word stays ours during the write.
                self._landing.write_local(0, encoded)
                yield sim.timeout(self.post_cpu_us)
                yield self.endpoint.post_write(
                    self._landing,
                    8,
                    server.region,
                    slot * server.slot_bytes + 8,
                    server.slot_bytes - 8,
                )
                self.stats.rdma_ops.increment()
                yield from self._release(slot)
                self.stats.puts.increment()
                self.stats.latency_us.record(sim.now - began)
                return None
            yield from self._release(slot)
            slot = (slot + 1) % server.capacity
        raise KVError("DrTM PUT found no slot")
