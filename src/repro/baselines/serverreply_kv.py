"""ServerReply — Jakiro with out-bound result pushes (§4.2).

The paper: "The first system is ServerReply, which is extended from
Jakiro and differs from Jakiro in that the server thread directly sends
the result back to the client thread through RDMA Write."  We extend the
same way: the full Jakiro stack (RPC stubs, EREW-partitioned store, key
routing) over the pinned server-reply transports.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import RfpConfig
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.kv.jakiro import Jakiro
from repro.kv.store import StoreCostModel
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer
from repro.sim.core import Simulator

__all__ = ["build_serverreply_kv"]


def build_serverreply_kv(
    sim: Simulator,
    cluster: Cluster,
    machine: Optional[Machine] = None,
    threads: int = 6,
    config: Optional[RfpConfig] = None,
    cost_model: Optional[StoreCostModel] = None,
    seed: int = 0,
    name: str = "serverreply-kv",
    tracer=None,
    **store_kwargs,
) -> Jakiro:
    """Build the ServerReply comparison system.

    Returns a :class:`~repro.kv.jakiro.Jakiro` whose transports are the
    pinned server-reply classes; ``connect`` hands out clients that block
    for pushed replies on every call.
    """
    return Jakiro(
        sim,
        cluster,
        machine=machine,
        threads=threads,
        config=config,
        cost_model=cost_model,
        seed=seed,
        name=name,
        server_class=ServerReplyServer,
        client_class=ServerReplyClient,
        tracer=tracer,
        **store_kwargs,
    )
