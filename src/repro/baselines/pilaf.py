"""Pilaf — the server-bypass key-value store (§2.3, §4.3).

GETs never involve the server CPU.  The client:

1. computes the key's three cuckoo candidate slots locally,
2. RDMA-Reads 32-byte index entries until one matches the key hash
   (CRC64-protected),
3. RDMA-Reads the data record (key + value + CRC64) at the entry's
   offset,
4. verifies the record checksum — a read racing an in-progress PUT sees
   genuinely torn bytes and retries — and verifies the full key
   (hash collisions fall back to the outer probe loop).

This is Fig. 8(b) verbatim, and the read counting reproduces the paper's
*bypass access amplification*: ~2.2 index probes + 1 data read + race
retries ≈ 3.2+ RDMA operations per GET.

PUTs are server-reply RPCs (as in Pilaf itself): the server appends the
record with a *staged* (non-atomic) write, then publishes the index
entry.  The staged write is what makes GET/PUT races observable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, Optional, Tuple

from repro.core.config import RfpConfig
from repro.core.rpc import RpcClient, RpcServer
from repro.errors import KVError, ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.memory import staged_write
from repro.kv.crc import crc64
from repro.kv.cuckoo import CuckooHashTable, cuckoo_candidates
from repro.kv.serialization import (
    PUT_FUNCTION,
    STATUS_OK,
    pack_put_request,
    unpack_put_request,
)
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally

__all__ = ["PilafServer", "PilafClient", "INDEX_ENTRY_BYTES"]

#: used(u8) key_len(u8) pad(u16) value_len(u32) data_offset(u64)
#: key_hash(u64) crc(u64)
_ENTRY = struct.Struct("<BBHIQQQ")
INDEX_ENTRY_BYTES = _ENTRY.size  # 32

_RECORD_CRC = struct.Struct("<Q")


def _pack_entry(used: int, key_len: int, value_len: int, offset: int, khash: int) -> bytes:
    body = _ENTRY.pack(used, key_len, 0, value_len, offset, khash, 0)[:-8]
    return body + _RECORD_CRC.pack(crc64(body))


def _unpack_entry(raw: bytes) -> Tuple[int, int, int, int, int, bool]:
    """Returns (used, key_len, value_len, offset, key_hash, crc_ok)."""
    used, key_len, _pad, value_len, offset, khash, crc = _ENTRY.unpack(raw)
    crc_ok = crc == crc64(raw[:-8])
    return used, key_len, value_len, offset, khash, crc_ok


@dataclass
class PilafStats:
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    rdma_reads: Counter = field(default_factory=lambda: Counter("rdma_reads"))
    checksum_retries: Counter = field(default_factory=lambda: Counter("crc_retries"))
    get_latency_us: Tally = field(default_factory=lambda: Tally("get_latency_us"))

    def reads_per_get(self) -> float:
        if self.gets.value == 0:
            return 0.0
        return self.rdma_reads.value / self.gets.value


class PilafServer:
    """The Pilaf server: cuckoo index + data extents in registered memory.

    Only PUTs consume server CPU (through an embedded server-reply RPC
    channel); the GET path is served entirely by the RNIC.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        capacity: int = 8192,
        max_key_bytes: int = 64,
        max_value_bytes: int = 1024,
        threads: int = 1,
        put_write_us: float = 0.25,
        put_process_us: float = 1.2,
        config: Optional[RfpConfig] = None,
        seed: int = 0,
        name: str = "pilaf",
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.capacity = capacity
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes
        self.put_write_us = put_write_us
        # Pilaf's server is effectively single-threaded and its PUT path is
        # heavyweight (message handling, cuckoo insertion with kicks, CRC64
        # over the record, extent management) — this is what caps Pilaf at
        # ~1.3 MOPS under 50% GET in the paper's Fig. 11.
        self.put_process_us = put_process_us
        self.record_slot_bytes = max_key_bytes + max_value_bytes + _RECORD_CRC.size
        self.index_region = self.machine.register_memory(
            capacity * INDEX_ENTRY_BYTES, name=f"{name}.index"
        )
        self.data_region = self.machine.register_memory(
            capacity * self.record_slot_bytes, name=f"{name}.data"
        )
        # The logical table maps key -> (value_len, data_slot).  Data
        # slots are allocated per *key*, independent of index slots:
        # cuckoo kicks relocate index entries, and the entry must keep
        # pointing at the key's record wherever the entry lands.
        self.table: CuckooHashTable = CuckooHashTable(
            capacity, seed=seed, on_slot_update=self._mirror_slot
        )
        self._next_data_slot = 0
        self._free_data_slots: list = []
        rpc = RpcServer()
        rpc.register(PUT_FUNCTION, self._handle_put)
        self.rpc_server = ServerReplyServer(
            sim, cluster, self.machine, rpc.handle, threads, config, name=f"{name}.rpc"
        )

    # ------------------------------------------------------------------
    # Index mirroring: logical cuckoo table -> registered index region
    # ------------------------------------------------------------------

    def _mirror_slot(self, slot_index: int, key, value) -> None:
        offset = slot_index * INDEX_ENTRY_BYTES
        if key is None:
            self.index_region.write_local(offset, bytes(INDEX_ENTRY_BYTES))
            return
        value_len, data_slot = value
        entry = _pack_entry(
            used=1,
            key_len=len(key),
            value_len=value_len,
            offset=data_slot * self.record_slot_bytes,
            khash=crc64(key),
        )
        self.index_region.write_local(offset, entry)

    def _allocate_data_slot(self, key: bytes) -> int:
        existing = self.table.lookup(key)[0]
        if existing is not None:
            return existing[1]
        if self._free_data_slots:
            return self._free_data_slots.pop()
        slot = self._next_data_slot
        if slot >= self.capacity:
            raise KVError("Pilaf data extents exhausted")
        self._next_data_slot += 1
        return slot

    # ------------------------------------------------------------------
    # PUT path (server-reply RPC)
    # ------------------------------------------------------------------

    def _handle_put(self, arguments: bytes, context) -> Tuple[int, bytes, float]:
        key, value = unpack_put_request(arguments)
        if len(key) > self.max_key_bytes:
            raise KVError(f"key of {len(key)} B > {self.max_key_bytes} B")
        if len(value) > self.max_value_bytes:
            raise KVError(f"value of {len(value)} B > {self.max_value_bytes} B")
        data_slot = self._allocate_data_slot(key)
        self.table.insert(key, (len(value), data_slot))
        record = key + value + _RECORD_CRC.pack(crc64(key + value))
        self.sim.process(
            staged_write(
                self.sim,
                self.data_region,
                data_slot * self.record_slot_bytes,
                record,
                self.put_write_us,
            ),
            name="pilaf.put-write",
        )
        # Process time: message handling + cuckoo/CRC work + staged write.
        return STATUS_OK, b"", self.put_write_us + self.put_process_us

    def preload(self, pairs) -> None:
        """Populate off-line (paper: 75%-filled table before measuring)."""
        for key, value in pairs:
            data_slot = self._allocate_data_slot(key)
            self.table.insert(key, (len(value), data_slot))
            record = key + value + _RECORD_CRC.pack(crc64(key + value))
            self.data_region.write_local(data_slot * self.record_slot_bytes, record)

    def connect(self, machine: Machine, name: str = "") -> "PilafClient":
        return PilafClient(self.sim, machine, self, name=name)


class PilafClient:
    """A Pilaf client: one-sided GETs, server-reply PUTs (Fig. 8b)."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: PilafServer,
        post_cpu_us: float = 0.15,
        max_probe_rounds: int = 64,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.server = server
        self.post_cpu_us = post_cpu_us
        self.max_probe_rounds = max_probe_rounds
        self.name = name or f"pilaf-client@{machine.name}"
        self.stats = PilafStats()
        self.endpoint, _ = server.cluster.connect(machine, server.machine)
        landing = max(INDEX_ENTRY_BYTES, server.record_slot_bytes)
        self._landing = machine.register_memory(landing, name=f"{self.name}.landing")
        self._rpc = RpcClient(
            ServerReplyClient(
                sim,
                machine,
                server.rpc_server,
                name=f"{self.name}.rpc",
                register_issuer=False,
            )
        )
        machine.rnic.register_issuer()

    # ------------------------------------------------------------------
    # GET: pure one-sided (Fig. 8b)
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Process body: one-sided GET; returns the value or ``None``."""
        sim = self.sim
        start = sim.now
        khash = crc64(key)
        candidates = cuckoo_candidates(key, self.server.capacity)
        self.stats.gets.increment()
        for _round in range(self.max_probe_rounds):
            entry = None
            for slot_index in candidates:
                raw = yield from self._read_index_entry(slot_index)
                used, key_len, value_len, offset, entry_hash, crc_ok = _unpack_entry(raw)
                if not used:
                    continue  # a free slot is valid regardless of CRC
                if not crc_ok:
                    self.stats.checksum_retries.increment()
                    break  # torn index entry: restart probing
                if entry_hash == khash and key_len == len(key):
                    entry = (value_len, offset)
                    break
            else:
                # All three candidates probed, no match: a miss.
                self.stats.get_latency_us.record(sim.now - start)
                return None
            if entry is None:
                continue  # index CRC retry
            value_len, offset = entry
            record = yield from self._read_record(offset, len(key) + value_len)
            payload, (crc,) = record[:-8], _RECORD_CRC.unpack(record[-8:])
            if crc != crc64(payload):
                self.stats.checksum_retries.increment()
                continue  # raced a PUT: retry from the index
            if payload[: len(key)] != key:
                continue  # key-hash collision: re-probe
            self.stats.get_latency_us.record(sim.now - start)
            return payload[len(key) :]
        raise KVError(f"GET of {key!r} exceeded {self.max_probe_rounds} probe rounds")

    def _read_index_entry(self, slot_index: int) -> Generator:
        yield self.sim.timeout(self.post_cpu_us)
        yield self.endpoint.post_read(
            self._landing,
            0,
            self.server.index_region,
            slot_index * INDEX_ENTRY_BYTES,
            INDEX_ENTRY_BYTES,
        )
        self.stats.rdma_reads.increment()
        return self._landing.read_local(0, INDEX_ENTRY_BYTES)

    def _read_record(self, offset: int, payload_len: int) -> Generator:
        total = payload_len + _RECORD_CRC.size
        yield self.sim.timeout(self.post_cpu_us)
        yield self.endpoint.post_read(
            self._landing, 0, self.server.data_region, offset, total
        )
        self.stats.rdma_reads.increment()
        return self._landing.read_local(0, total)

    # ------------------------------------------------------------------
    # PUT: server-reply RPC
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: PUT via the server-reply channel."""
        status, _ = yield from self._rpc.call(
            PUT_FUNCTION, pack_put_request(key, value)
        )
        if status != STATUS_OK:
            raise ProtocolError(f"Pilaf PUT failed with status {status}")
        self.stats.puts.increment()
        return None
