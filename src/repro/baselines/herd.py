"""A HERD-style RPC system over unreliable transports (§5, Related Work).

HERD (Kalia et al., SIGCOMM'14) issues requests as **UC RDMA Writes**
into server memory and replies with **UD Sends** — both cheaper to issue
than RC verbs because the NIC tracks no reliability state.  The paper's
§5 concedes such designs can beat RC-based ones on raw rate, "but it is
at a cost of requiring the applications to handle many subtle problems,
such as message lost, reorder and duplication."

This baseline implements exactly those subtle problems, honestly:

- UC request writes and UD reply sends can be **silently dropped** (the
  queue pair's ``loss_probability``); the sender's completion fires
  anyway, as on real hardware;
- the client therefore runs a **timeout-and-retransmit** loop keyed by a
  per-call sequence number;
- the server keeps the last reply per client and **resends it for
  duplicate sequence numbers** without re-executing the handler (PUTs
  must not be applied twice).

Wire formats: requests are ``u32 seq | u16 size | payload`` in the
per-client request buffer; replies are ``u32 seq | payload`` UD messages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from repro.core.server import RequestContext
from repro.errors import ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.verbs import QPType
from repro.sim.core import AnyOf, Simulator
from repro.sim.monitor import Counter, Tally
from repro.sim.resources import Store

__all__ = ["HerdServer", "HerdClient"]

_REQUEST_HEADER = struct.Struct("<IH")
_REPLY_HEADER = struct.Struct("<I")

#: ``handler(payload, ctx) -> (response_bytes, process_time_us)``
Handler = Callable[[bytes, RequestContext], Tuple[bytes, float]]


@dataclass
class HerdStats:
    calls: Counter = field(default_factory=lambda: Counter("calls"))
    retransmits: Counter = field(default_factory=lambda: Counter("retransmits"))
    duplicate_requests: Counter = field(default_factory=lambda: Counter("dups"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))


class _HerdChannel:
    """Server-side per-client state: buffers, QPs, duplicate cache."""

    def __init__(self, server: "HerdServer", client_machine: Machine, thread_id: int):
        cluster = server.cluster
        self.thread_id = thread_id
        self.client_id = len(server.channels) + 1
        self.uc_client, self.uc_server = cluster.connect(
            client_machine,
            server.machine,
            qp_type=QPType.UC,
            loss_probability=server.loss_probability,
            loss_seed=2 * self.client_id,
        )
        self.ud_client, self.ud_server = cluster.connect(
            client_machine,
            server.machine,
            qp_type=QPType.UD,
            loss_probability=server.loss_probability,
            loss_seed=2 * self.client_id + 1,
        )
        self.request_region = server.machine.register_memory(
            server.request_buffer_bytes, name=f"herd.req[{self.client_id}]"
        )
        self.last_seq = 0
        self.last_reply: Optional[bytes] = None


class HerdServer:
    """UC-request / UD-reply RPC server with duplicate suppression."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        handler: Optional[Handler] = None,
        threads: int = 6,
        request_buffer_bytes: int = 4096,
        loss_probability: float = 0.0,
        poll_cpu_us: float = 0.05,
        sw_us: float = 0.15,
        name: str = "herd",
    ) -> None:
        if handler is None:
            raise ProtocolError("HerdServer needs a handler")
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.handler = handler
        self.threads = threads
        self.request_buffer_bytes = request_buffer_bytes
        self.loss_probability = loss_probability
        self.poll_cpu_us = poll_cpu_us
        self.sw_us = sw_us
        self.name = name
        self.requests_served = Counter("requests")
        self.replies_sent = Counter("replies")
        self.channels: List[_HerdChannel] = []
        self._stores: List[Store] = [Store(sim) for _ in range(threads)]
        for thread_id, store in enumerate(self._stores):
            self.machine.rnic.register_issuer()
            sim.process(self._thread_body(thread_id, store), name=f"{name}.t{thread_id}")

    def accept(self, client_machine: Machine) -> _HerdChannel:
        channel = _HerdChannel(self, client_machine, len(self.channels) % self.threads)
        self.channels.append(channel)
        return channel

    def notify(self, channel: _HerdChannel) -> None:
        """Delivery hook of a client's UC request write."""
        self._stores[channel.thread_id].put(channel)

    def _thread_body(self, thread_id: int, store: Store) -> Generator:
        sim = self.sim
        while True:
            channel: _HerdChannel = yield store.get()
            yield sim.timeout(self.poll_cpu_us)
            raw = channel.request_region.read_local(0, _REQUEST_HEADER.size)
            seq, size = _REQUEST_HEADER.unpack(raw)
            payload = channel.request_region.read_local(_REQUEST_HEADER.size, size)
            if seq == channel.last_seq and channel.last_reply is not None:
                # A retransmitted request: resend the cached reply, do not
                # re-execute (PUTs are not idempotent).
                yield from self._send_reply(channel, channel.last_reply)
                continue
            context = RequestContext(client_id=channel.client_id, thread_id=thread_id)
            response, process_us = self.handler(payload, context)
            if process_us > 0:
                yield sim.timeout(process_us)
            yield sim.timeout(self.sw_us)
            reply = _REPLY_HEADER.pack(seq) + response
            channel.last_seq = seq
            channel.last_reply = reply
            self.requests_served.increment()
            yield from self._send_reply(channel, reply)

    def _send_reply(self, channel: _HerdChannel, reply: bytes) -> Generator:
        yield self.sim.timeout(self.machine.rnic.spec.post_cpu_us)
        channel.ud_server.post_send(reply)  # fire-and-forget datagram
        self.replies_sent.increment()

    def connect(self, machine: Machine, name: str = "") -> "HerdClient":
        return HerdClient(self.sim, machine, self, name=name)


class HerdClient:
    """One HERD client: UC request writes, UD reply waits, retransmits."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: HerdServer,
        timeout_us: float = 30.0,
        max_attempts: int = 50,
        post_cpu_us: float = 0.15,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.server = server
        self.timeout_us = timeout_us
        self.max_attempts = max_attempts
        self.post_cpu_us = post_cpu_us
        self.name = name or f"herd-client@{machine.name}"
        self.stats = HerdStats()
        self.channel = server.accept(machine)
        self._staging = machine.register_memory(
            server.request_buffer_bytes, name=f"{self.name}.staging"
        )
        self.seq = 0
        # One receive is kept pending across timeouts: abandoning a
        # timed-out recv() would silently swallow the next delivery.
        self._pending_recv = None
        machine.rnic.register_issuer()

    def call(self, payload: bytes) -> Generator:
        """Process body: one RPC with loss recovery; returns the response."""
        sim = self.sim
        limit = self.server.request_buffer_bytes - _REQUEST_HEADER.size
        if len(payload) > limit:
            raise ProtocolError(f"request of {len(payload)} B exceeds {limit} B")
        began = sim.now
        self.seq += 1
        seq = self.seq
        self._staging.write_local(0, _REQUEST_HEADER.pack(seq, len(payload)) + payload)
        channel = self.channel
        server = self.server
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.stats.retransmits.increment()
            yield sim.timeout(self.post_cpu_us)
            yield channel.uc_client.post_write(
                self._staging,
                0,
                channel.request_region,
                0,
                _REQUEST_HEADER.size + len(payload),
                on_delivery=lambda: server.notify(channel),
            )
            response = yield from self._await_reply(seq)
            if response is not None:
                self.stats.calls.increment()
                self.stats.latency_us.record(sim.now - began)
                return response
        raise ProtocolError(
            f"{self.name}: call seq={seq} lost {self.max_attempts} times"
        )

    def _await_reply(self, seq: int) -> Generator:
        """Wait for the matching UD reply; None means timed out."""
        sim = self.sim
        deadline = sim.now + self.timeout_us
        spec = self.machine.rnic.spec
        while True:
            if self._pending_recv is None:
                self._pending_recv = self.channel.ud_client.recv()
            if not self._pending_recv.triggered:
                remaining = deadline - sim.now
                if remaining <= 0:
                    return None  # timed out; the pending recv stays armed
                index, _ = yield AnyOf(
                    sim, [self._pending_recv, sim.timeout(remaining)]
                )
                if index == 1:
                    return None  # timed out; caller retransmits
            value = self._pending_recv.value
            self._pending_recv = None
            yield sim.timeout(spec.recv_cpu_us)
            (reply_seq,) = _REPLY_HEADER.unpack_from(value)
            if reply_seq == seq:
                return value[_REPLY_HEADER.size :]
            if reply_seq < seq:
                self.stats.duplicate_requests.increment()
                continue  # stale duplicate of an older reply
            raise ProtocolError(f"reply from the future: {reply_seq} > {seq}")
