"""The comparison systems from the paper's evaluation (§4).

- :mod:`~repro.baselines.pilaf` — the server-bypass key-value store
  (Mitchell et al., ATC'13): GETs are pure one-sided probing of a 3-way
  Cuckoo index plus a CRC64-validated data read; PUTs go through
  server-reply messaging.
- :mod:`~repro.baselines.serverreply_kv` — "ServerReply": Jakiro with the
  result path flipped to out-bound RDMA Writes (§4.2).
- :mod:`~repro.baselines.rdma_memcached` — OSU's RDMA-Memcached model:
  shared cache + global LRU lock, CPU-heavy per-request software path,
  server threads performing their own network sends.
- :mod:`~repro.baselines.farm` — a FaRM-style lookup path (§5): one
  oversized RDMA Read fetches an entire Hopscotch neighborhood.
- :mod:`~repro.baselines.herd` — a HERD-style UC/UD RPC (§5) with real
  loss handling: timeouts, retransmits, duplicate suppression.
- :mod:`~repro.baselines.drtm` — a DrTM-style lock-based bypass store
  (§5): RDMA CAS spinlocks coordinate one-sided access.
"""

from repro.baselines.drtm import DrtmClient, DrtmServer
from repro.baselines.farm import FarmClient, FarmServer
from repro.baselines.herd import HerdClient, HerdServer
from repro.baselines.pilaf import PilafClient, PilafServer
from repro.baselines.rdma_memcached import (
    MemcachedCostModel,
    RdmaMemcachedClient,
    RdmaMemcachedServer,
)
from repro.baselines.serverreply_kv import build_serverreply_kv

__all__ = [
    "DrtmClient",
    "DrtmServer",
    "FarmClient",
    "FarmServer",
    "HerdClient",
    "HerdServer",
    "MemcachedCostModel",
    "PilafClient",
    "PilafServer",
    "RdmaMemcachedClient",
    "RdmaMemcachedServer",
    "build_serverreply_kv",
]
