"""RFP — the Remote Fetching Paradigm (the paper's contribution).

RFP keeps the server CPU in the request path (so legacy RPC applications
port with only moderate cost) but inverts the result path: the server only
*buffers* results in its local memory and **clients fetch them with
one-sided RDMA Reads**.  The server's RNIC therefore handles nothing but
in-bound traffic, whose peak rate is ~5× the out-bound rate it would burn
replying (paper §2.2).

Package map:

- :mod:`~repro.core.config`  — tunables (R, F, switch policy, CPU costs),
- :mod:`~repro.core.headers` — request/response wire headers (Fig. 7),
- :mod:`~repro.core.mode`    — hybrid fetch/server-reply switch policy,
- :mod:`~repro.core.fetch`   — fetch-size planning (one read in the common
  case, a second read only when the result exceeds F),
- :mod:`~repro.core.client`  — :class:`RfpClient` (client_send/client_recv),
- :mod:`~repro.core.server`  — :class:`RfpServer` (server_recv/server_send),
- :mod:`~repro.core.params`  — the (R, F) selection procedure (§3.2, Eq. 2),
- :mod:`~repro.core.sampling`— result-size sampling for parameter selection,
- :mod:`~repro.core.rpc`     — a thin RPC stub layer used by Jakiro.
"""

from repro.core.adaptive import AdaptiveParameterController
from repro.core.api import free_buf, malloc_buf
from repro.core.client import RfpClient, RfpClientStats
from repro.core.config import RfpConfig
from repro.core.fetch import FetchPlan, plan_fetch, reads_required
from repro.core.headers import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    RequestHeader,
    ResponseHeader,
)
from repro.core.mode import Mode, SwitchPolicy
from repro.core.params import (
    ParameterChoice,
    derive_retry_bound,
    derive_size_bounds,
    select_parameters,
)
from repro.core.rpc import RpcClient, RpcServer
from repro.core.sampling import ResultSampler
from repro.core.server import RfpServer, RfpServerStats

__all__ = [
    "AdaptiveParameterController",
    "FetchPlan",
    "Mode",
    "ParameterChoice",
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "RequestHeader",
    "ResponseHeader",
    "ResultSampler",
    "RfpClient",
    "RfpClientStats",
    "RfpConfig",
    "RfpServer",
    "RfpServerStats",
    "RpcClient",
    "RpcServer",
    "SwitchPolicy",
    "derive_retry_bound",
    "derive_size_bounds",
    "free_buf",
    "malloc_buf",
    "plan_fetch",
    "reads_required",
    "select_parameters",
]
