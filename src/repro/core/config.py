"""RFP tunables.

``R`` (retry bound) and ``F`` (fetch size) are the two user-visible
parameters the paper's §3.2 is about; the remainder model software costs
of the stub layer and the buffer geometry of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ProtocolError

__all__ = ["RfpConfig"]


@dataclass(frozen=True)
class RfpConfig:
    """Configuration for one RFP client/server pair.

    Attributes
    ----------
    retry_bound:
        ``R`` — failed remote-fetch retries tolerated per call before the
        call counts as *slow* (paper default: 5 for the testbed NIC).
    fetch_size:
        ``F`` — default number of bytes fetched per RDMA Read, header
        included.  One read suffices whenever the whole response fits.
    hybrid_enabled:
        Master switch for the fetch/server-reply hybrid.  ``False`` gives
        the pure repeated-remote-fetching client of Fig. 9 and the
        "Jakiro w/o Switch" ablation of Fig. 14.
    consecutive_slow_calls:
        How many *consecutive* slow calls trigger the switch to
        server-reply (paper §3.2 Discussion: two, so an occasional
        long-running request does not flap the mode).
    switch_back_process_time_us:
        Observed server process time below which a server-reply-mode
        client switches back to remote fetching (the ``time`` header
        field feeds this; paper maps it to P ≈ 7 µs).
    request_buffer_bytes / response_buffer_bytes:
        Per-client buffer sizes on the server (Fig. 7 geometry).
    client_post_cpu_us:
        Client software cost to prepare and post one verb.
    server_sw_jitter_us:
        Per-request uniform noise on the server stub cost.
    client_parse_cpu_us:
        Client software cost to validate a fetched/delivered response.
    client_wake_cpu_us:
        Client cost to notice a server-reply delivery (local poll wake).
    server_poll_cpu_us:
        Server cost to notice a request in its request buffers.
    server_sw_us:
        Server stub cost per request (unpack, dispatch, pack).
    """

    retry_bound: int = 5
    fetch_size: int = 256
    hybrid_enabled: bool = True
    consecutive_slow_calls: int = 2
    switch_back_process_time_us: float = 7.0
    request_buffer_bytes: int = 16384
    response_buffer_bytes: int = 16384
    client_post_cpu_us: float = 0.15
    client_parse_cpu_us: float = 0.05
    client_wake_cpu_us: float = 0.20
    server_poll_cpu_us: float = 0.05
    server_sw_us: float = 0.15
    #: Uniform software-timing noise added to ``server_sw_us`` per request
    #: (cache misses, branch behaviour) — gives latency CDFs their natural
    #: spread instead of a deterministic lockstep.
    server_sw_jitter_us: float = 0.15
    #: Per-byte CPU a server thread burns pushing a reply (staging the
    #: payload, scatter/gather setup, completion handling).  Negligible at
    #: 32 B; at KB-scale values this is why the paper's ServerReply keeps
    #: losing CPU to networking as values grow (§4.4.3, Fig. 17).
    reply_send_per_byte_us: float = 0.0015

    def __post_init__(self) -> None:
        if self.retry_bound < 1:
            raise ProtocolError(f"retry bound R must be >= 1, got {self.retry_bound}")
        if self.fetch_size < 16:
            raise ProtocolError(
                f"fetch size F must cover at least a header, got {self.fetch_size}"
            )
        if self.fetch_size > self.response_buffer_bytes:
            raise ProtocolError("fetch size F cannot exceed the response buffer")
        if self.consecutive_slow_calls < 1:
            raise ProtocolError("consecutive_slow_calls must be >= 1")

    def with_parameters(self, retry_bound: int, fetch_size: int) -> "RfpConfig":
        """Copy with new (R, F) — output of the §3.2 selection procedure."""
        return replace(self, retry_bound=retry_bound, fetch_size=fetch_size)
