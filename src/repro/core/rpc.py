"""A small RPC stub layer over the RFP primitives.

RFP exposes socket-like primitives (Table 2), so a conventional RPC
mechanism layers directly on top (Fig. 2): the client stub marshals a
function id and arguments into the request payload; the server stub
dispatches to a registered handler and returns its result.  Jakiro's
GET/PUT (Fig. 8a) are two registered functions.

Wire format: ``u8 function_id | u8 status | arguments...`` on requests,
``u8 status | result...`` on responses.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Generator, Tuple

from repro.core.client import RfpClient
from repro.errors import ProtocolError

__all__ = ["RpcClient", "RpcServer", "RPC_OK", "RPC_APP_ERROR", "RPC_NO_FUNCTION"]

RPC_OK = 0
RPC_APP_ERROR = 1
RPC_NO_FUNCTION = 2

_REQUEST_PREFIX = struct.Struct("<BB")
_RESPONSE_PREFIX = struct.Struct("<B")

#: ``handler(args, ctx) -> (status, result_bytes, process_time_us)``
RpcHandler = Callable[[bytes, object], Tuple[int, bytes, float]]


class RpcServer:
    """Function registry + dispatcher; plugs into ``RfpServer`` as handler."""

    def __init__(self) -> None:
        self._functions: Dict[int, RpcHandler] = {}

    def register(self, function_id: int, handler: RpcHandler) -> None:
        if not 0 <= function_id <= 0xFF:
            raise ProtocolError(f"function id must fit a byte: {function_id}")
        if function_id in self._functions:
            raise ProtocolError(f"function {function_id} registered twice")
        self._functions[function_id] = handler

    def handle(self, payload: bytes, context) -> Tuple[bytes, float]:
        """The ``RfpServer`` handler: unmarshal, dispatch, marshal."""
        if len(payload) < _REQUEST_PREFIX.size:
            raise ProtocolError(f"runt RPC request of {len(payload)} bytes")
        function_id, _reserved = _REQUEST_PREFIX.unpack_from(payload)
        arguments = payload[_REQUEST_PREFIX.size :]
        handler = self._functions.get(function_id)
        if handler is None:
            return _RESPONSE_PREFIX.pack(RPC_NO_FUNCTION), 0.0
        status, result, process_us = handler(arguments, context)
        return _RESPONSE_PREFIX.pack(status) + result, process_us


class RpcClient:
    """Client stub: marshals calls through an :class:`RfpClient`."""

    def __init__(self, transport: RfpClient) -> None:
        self.transport = transport

    def call(self, function_id: int, arguments: bytes) -> Generator:
        """Process body: invoke a remote function.

        Returns ``(status, result_bytes)``::

            status, result = yield from rpc.call(GET, key_bytes)
        """
        if not 0 <= function_id <= 0xFF:
            raise ProtocolError(f"function id must fit a byte: {function_id}")
        request = _REQUEST_PREFIX.pack(function_id, 0) + arguments
        response = yield from self.transport.call(request)
        if len(response) < _RESPONSE_PREFIX.size:
            raise ProtocolError(f"runt RPC response of {len(response)} bytes")
        (status,) = _RESPONSE_PREFIX.unpack_from(response)
        return status, response[_RESPONSE_PREFIX.size :]
