"""Hybrid-mode state machine (paper §3.2).

A client starts in :attr:`Mode.REMOTE_FETCH`.  A call whose remote fetch
fails ``R`` times is *slow*.  The first slow call leaves the mode alone
(the client keeps fetching until the result appears); only after
``consecutive_slow_calls`` slow calls in a row does the client switch to
:attr:`Mode.SERVER_REPLY`, saving its own CPU and the server NIC's wasted
in-bound reads.  While in server-reply mode every response carries the
server's response time (the 16-bit ``time`` header field); once that
drops below the configured threshold the client switches back.

:class:`SwitchPolicy` is pure logic (no simulator types) so the paper's
flap-damping behaviour is unit-testable in isolation.
"""

from __future__ import annotations

import enum

from repro.core.config import RfpConfig

__all__ = ["Mode", "SwitchPolicy"]


class Mode(enum.Enum):
    """Result-return mode for one ⟨client, RPC⟩ pair."""

    REMOTE_FETCH = 0
    SERVER_REPLY = 1


class SwitchPolicy:
    """Decides mode transitions from per-call observations.

    The client calls exactly one of :meth:`note_fast_call` /
    :meth:`note_slow_call` per remote-fetch call, and
    :meth:`note_reply_time` per server-reply call.
    """

    def __init__(self, config: RfpConfig) -> None:
        self.config = config
        self.mode = Mode.REMOTE_FETCH
        self.consecutive_slow = 0
        self.switches_to_reply = 0
        self.switches_to_fetch = 0

    def note_fast_call(self) -> None:
        """A remote-fetch call succeeded within ``R`` failed retries."""
        self._require(Mode.REMOTE_FETCH)
        self.consecutive_slow = 0

    def note_slow_call(self) -> bool:
        """A remote-fetch call hit ``R`` failed retries.

        Returns ``True`` when the client must switch to server-reply *for
        this call* (i.e. this is the ``consecutive_slow_calls``-th slow
        call in a row and the hybrid is enabled).
        """
        self._require(Mode.REMOTE_FETCH)
        self.consecutive_slow += 1
        if not self.config.hybrid_enabled:
            return False
        if self.consecutive_slow >= self.config.consecutive_slow_calls:
            self.mode = Mode.SERVER_REPLY
            self.consecutive_slow = 0
            self.switches_to_reply += 1
            return True
        return False

    def note_reply_time(self, response_time_us: float) -> bool:
        """A server-reply call completed; ``True`` => switch back now.

        The server got fast again when its observed response time dropped
        below the threshold that made remote fetching worthwhile.
        """
        self._require(Mode.SERVER_REPLY)
        if not self.config.hybrid_enabled:
            return False
        if response_time_us < self.config.switch_back_process_time_us:
            self.mode = Mode.REMOTE_FETCH
            self.switches_to_fetch += 1
            return True
        return False

    def _require(self, mode: Mode) -> None:
        if self.mode is not mode:
            raise ValueError(f"observation valid in {mode}, current mode {self.mode}")
