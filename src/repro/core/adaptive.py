"""Online (R, F) re-selection — the "sampling periodically during its
run" half of §3.2.

The paper's selection procedure can run either on a pre-run sample or
continuously: :class:`AdaptiveParameterController` owns a shared
:class:`~repro.core.sampling.ResultSampler` fed by a group of clients,
periodically re-runs the Eq. 2 enumeration against it, and pushes the
chosen (R, F) to every client.  When the workload's result sizes drift
(say, values grow from 32 B to 500 B), F follows within one adaptation
interval and the clients return to single-read fetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.core.client import RfpClient
from repro.core.params import select_parameters
from repro.core.sampling import ResultSampler
from repro.errors import ProtocolError
from repro.sim.core import Process, Simulator

__all__ = ["AdaptiveParameterController"]


@dataclass
class AdaptationRecord:
    """One re-selection: when it happened and what it chose."""

    at_us: float
    retry_bound: int
    fetch_size: int
    samples_seen: int


class AdaptiveParameterController:
    """Periodically re-selects (R, F) for a group of RFP clients.

    Parameters
    ----------
    iops_at:
        The hardware curve ``I(R, F)`` (e.g.
        :func:`repro.bench.calibration.model_inbound_iops`).
    retry_upper_bound / size_lower_bound / size_upper_bound:
        The N and [L, H] bounds previously derived from calibration.
    interval_us:
        Re-selection period; the paper leaves cadence open — anything
        long enough to gather a fresh sample works.
    min_samples:
        Skip adaptation rounds until the sampler has seen this many new
        results (avoids thrashing on startup).
    """

    def __init__(
        self,
        sim: Simulator,
        clients: List[RfpClient],
        iops_at: Callable[[int, int], float],
        retry_upper_bound: int,
        size_lower_bound: int,
        size_upper_bound: int,
        interval_us: float = 500.0,
        min_samples: int = 64,
        size_step: int = 64,
        sampler: Optional[ResultSampler] = None,
    ) -> None:
        if not clients:
            raise ProtocolError("controller needs at least one client")
        if interval_us <= 0:
            raise ProtocolError(f"interval must be positive: {interval_us}")
        self.sim = sim
        self.clients = clients
        self.iops_at = iops_at
        self.retry_upper_bound = retry_upper_bound
        self.size_lower_bound = size_lower_bound
        self.size_upper_bound = size_upper_bound
        self.interval_us = interval_us
        self.min_samples = min_samples
        self.size_step = size_step
        self.sampler = sampler if sampler is not None else ResultSampler()
        self.history: List[AdaptationRecord] = []
        self._seen_at_last_round = 0
        for client in clients:
            client.result_sampler = self.sampler

    @property
    def current_parameters(self) -> Tuple[int, int]:
        """The (R, F) currently applied to the clients."""
        config = self.clients[0].config
        return config.retry_bound, config.fetch_size

    def start(self) -> Process:
        """Spawn the periodic adaptation process."""
        return self.sim.process(self._body(), name="rfp-adaptive")

    def adapt_once(self) -> Optional[AdaptationRecord]:
        """Run one re-selection now; None if too few new samples."""
        new_samples = self.sampler.seen - self._seen_at_last_round
        if new_samples < self.min_samples:
            return None
        self._seen_at_last_round = self.sampler.seen
        choice = select_parameters(
            self.sampler.sizes(),
            self.iops_at,
            self.retry_upper_bound,
            self.size_lower_bound,
            self.size_upper_bound,
            size_step=self.size_step,
        )
        record = AdaptationRecord(
            at_us=self.sim.now,
            retry_bound=choice.retry_bound,
            fetch_size=choice.fetch_size,
            samples_seen=self.sampler.seen,
        )
        current = self.current_parameters
        if (choice.retry_bound, choice.fetch_size) != current:
            for client in self.clients:
                client.apply_parameters(choice.retry_bound, choice.fetch_size)
            self.history.append(record)
        return record

    def _body(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval_us)
            self.adapt_once()
