"""The RFP API surface of the paper's Table 2.

| Paper API                                | This library                        |
|------------------------------------------|-------------------------------------|
| ``client_send(server_id, buf, size)``    | :meth:`RfpClient.client_send`       |
| ``client_recv(server_id, buf)``          | :meth:`RfpClient.client_recv`       |
| ``server_send(client_id, buf, size)``    | internal: the server worker buffers |
|                                          | the response locally                |
| ``server_recv(client_id, buf)``          | internal: the server worker drains  |
|                                          | its request-buffer partition        |
| ``malloc_buf(size)``                     | :func:`malloc_buf`                  |
| ``free_buf(buf)``                        | :func:`free_buf`                    |

An :class:`RfpClient` binds to one server, so the paper's ``server_id``
argument is the client object itself; likewise ``client_id`` is implicit
in the per-client channel held by :class:`RfpServer`.
"""

from __future__ import annotations

from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion

__all__ = ["malloc_buf", "free_buf"]


def malloc_buf(machine: Machine, size: int, name: str = "") -> MemoryRegion:
    """Allocate a buffer registered with ``machine``'s RNIC (Table 2).

    Messages are placed directly in these buffers for RDMA transfer;
    unregistered memory is rejected by every verb.
    """
    return machine.register_memory(size, name=name)


def free_buf(buf: MemoryRegion) -> None:
    """Release a buffer allocated with :func:`malloc_buf` (Table 2)."""
    buf.machine.release_memory(buf)
