"""The RFP client.

``call`` runs one full RPC (paper Fig. 7, bottom-up):

1. **client_send** — write the request (header + payload) into the
   client's exclusive request buffer on the server with a one-sided RDMA
   Write.  The server's poller sees the payload the instant the write is
   delivered; no server out-bound work is involved.
2. **client_recv** — in ``REMOTE_FETCH`` mode, repeatedly read ``F`` bytes
   of the response buffer until the header parity matches this call; a
   second read collects any remainder beyond ``F``.  After ``R`` failed
   retries the call is *slow* and the hybrid policy may switch the client
   to ``SERVER_REPLY`` mode mid-call, in which case the client publishes
   its mode flag (a 1-byte RDMA Write) and blocks until the server pushes
   the response.
3. In ``SERVER_REPLY`` mode the client simply blocks for the pushed
   response and uses the header's ``time`` field to decide when the
   server is fast enough to switch back.

CPU accounting mirrors the paper's Fig. 15: remote fetching spins (the
whole call duration is busy time), server-reply mode is almost idle (only
post/wake/parse costs are busy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.config import RfpConfig
from repro.core.fetch import plan_fetch
from repro.core.headers import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    pack_request,
    unpack_response,
)
from repro.core.mode import Mode, SwitchPolicy
from repro.core.sampling import ResultSampler
from repro.core.server import ClientChannel, RfpServer
from repro.errors import ProtocolError
from repro.hw.machine import Machine
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally, UtilizationMeter

__all__ = ["RfpClient", "RfpClientStats"]


@dataclass
class RfpClientStats:
    """Per-client counters the harness and Table 3 read out."""

    calls: Counter = field(default_factory=lambda: Counter("calls"))
    latency_us: Tally = field(default_factory=lambda: Tally("latency_us"))
    #: Fetch reads issued for each remote-fetch call (Table 3's N).
    fetch_attempts: Tally = field(default_factory=lambda: Tally("fetch_attempts"))
    remote_reads: Counter = field(default_factory=lambda: Counter("remote_reads"))
    reply_waits: Counter = field(default_factory=lambda: Counter("reply_waits"))
    busy: UtilizationMeter = field(default_factory=lambda: UtilizationMeter("client"))

    def slow_fetch_fraction(self) -> float:
        """Fraction of remote-fetch calls that needed more than one read."""
        if self.fetch_attempts.count == 0:
            return 0.0
        attempts = self.fetch_attempts.samples
        return sum(1 for a in attempts if a > 1) / len(attempts)


class RfpClient:
    """One client thread speaking RFP to one server."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        server: RfpServer,
        config: Optional[RfpConfig] = None,
        name: str = "",
        thread_id: Optional[int] = None,
        register_issuer: bool = True,
        result_sampler: Optional[ResultSampler] = None,
        tracer=None,
    ) -> None:
        """Connect one client to ``server``.

        ``thread_id`` pins the connection to a specific server worker
        (EREW key routing); ``register_issuer=False`` lets a client
        thread that multiplexes several transports register itself with
        the NIC contention model exactly once.  ``result_sampler``, when
        given, observes every response size — the online half of the
        §3.2 parameter selection (see
        :class:`repro.core.adaptive.AdaptiveParameterController`).
        """
        self.sim = sim
        self.machine = machine
        self.server = server
        self.config = config if config is not None else server.config
        if self.config.response_buffer_bytes > server.config.response_buffer_bytes:
            raise ProtocolError("client expects larger buffers than the server has")
        self.name = name or f"rfp-client@{machine.name}"
        self.policy = SwitchPolicy(self.config)
        self.stats = RfpClientStats()
        self.seq = 0
        # malloc_buf'd regions (Table 2): request staging, fetch landing,
        # server-reply landing, and flag staging.
        self._request_staging = machine.register_memory(
            self.config.request_buffer_bytes, name=f"{self.name}.req"
        )
        self._fetch_landing = machine.register_memory(
            self.config.response_buffer_bytes, name=f"{self.name}.fetch"
        )
        self._reply_landing = machine.register_memory(
            self.config.response_buffer_bytes, name=f"{self.name}.reply"
        )
        self._flag_staging = machine.register_memory(8, name=f"{self.name}.flag")
        self.channel: ClientChannel = server.accept(
            machine, self._reply_landing, thread_id=thread_id
        )
        self.endpoint = self.channel.client_endpoint
        self._inflight_parity: Optional[int] = None
        self._call_started_at = 0.0
        self._send_completed_at = 0.0
        self.result_sampler = result_sampler
        #: Optional :class:`repro.sim.Tracer` recording protocol phases.
        self.tracer = tracer
        if register_issuer:
            machine.rnic.register_issuer()

    def _trace(self, label: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "rfp.client",
                label,
                client=self.name,
                channel=self.channel.client_id,
                **data,
            )

    def apply_parameters(self, retry_bound: int, fetch_size: int) -> None:
        """Adopt new (R, F) — the output of a §3.2 (re-)selection.

        Takes effect from the next call; the hybrid policy keeps its
        current mode and streak state.
        """
        self.config = self.config.with_parameters(retry_bound, fetch_size)
        self.policy.config = self.config

    @property
    def mode(self) -> Mode:
        """The client's current result-return mode."""
        return self.policy.mode

    # ------------------------------------------------------------------
    # The RPC entry point
    # ------------------------------------------------------------------

    def call(self, payload: bytes) -> Generator:
        """Process body: one RPC; yields until the response is in hand.

        Usage::

            response = yield from client.call(b"...")
        """
        yield from self.client_send(payload)
        response = yield from self.client_recv()
        return response

    def client_send(self, payload: bytes) -> Generator:
        """Table 2 ``client_send``: push the request to the server.

        One one-sided RDMA Write places header + payload into this
        client's exclusive request buffer on the server.
        """
        if self._inflight_parity is not None:
            raise ProtocolError("client_send before receiving the previous response")
        config = self.config
        limit = config.request_buffer_bytes - REQUEST_HEADER_BYTES
        if len(payload) > limit:
            raise ProtocolError(f"request of {len(payload)} B exceeds {limit} B")
        sim = self.sim
        self._call_started_at = sim.now
        self.seq += 1
        parity = self.seq & 1
        self._request_staging.write_local(0, pack_request(parity, len(payload)))
        self._request_staging.write_local(REQUEST_HEADER_BYTES, payload)
        yield config.client_post_cpu_us
        channel = self.channel
        completion = self.endpoint.post_write(
            self._request_staging,
            0,
            channel.request_region,
            0,
            REQUEST_HEADER_BYTES + len(payload),
            on_delivery=lambda: self._request_delivered(channel),
        )
        yield completion
        self._send_completed_at = sim.now
        # Re-check after resuming: the guard above ran before this
        # process yielded, so a concurrent send interleaved at the
        # yields would slip past it and both would claim the channel.
        if self._inflight_parity is not None:
            raise ProtocolError(
                "concurrent client_send interleaved on one channel"
            )
        self._inflight_parity = parity
        if self.tracer is not None:
            self._trace("request_sent", seq=self.seq, bytes=len(payload))

    def client_recv(self) -> Generator:
        """Table 2 ``client_recv``: obtain the response for the last send.

        Remote-fetches in ``REMOTE_FETCH`` mode (switching mid-call when
        the hybrid policy fires); blocks for the pushed reply in
        ``SERVER_REPLY`` mode.
        """
        if self._inflight_parity is None:
            raise ProtocolError("client_recv without a preceding client_send")
        parity = self._inflight_parity
        config = self.config
        sim = self.sim
        if self.policy.mode is Mode.REMOTE_FETCH:
            response = yield from self._fetch_response(parity)
            if response is None:
                # Switched to server-reply mid-call; the flag write is
                # already published, the server will push the response.
                response = yield from self._await_reply(parity)
        else:
            response = yield from self._await_reply(parity)
            # The client spun only while posting the request; the reply
            # wait itself is blocked (this is what Fig. 15 measures).
            self.stats.busy.add_busy(
                (self._send_completed_at - self._call_started_at)
                + config.client_wake_cpu_us
                + config.client_parse_cpu_us
            )
        self.stats.calls.increment()
        self.stats.latency_us.record(sim.now - self._call_started_at)
        if self.tracer is not None:
            self._trace(
                "call_done",
                seq=self.seq,
                latency_us=round(sim.now - self._call_started_at, 3),
                mode=self.policy.mode.name,
            )
        # Re-check after the yields: only the call that owns the
        # in-flight parity may clear it (a concurrent recv interleaved
        # at the reply wait would otherwise clear someone else's).
        if self._inflight_parity != parity:
            raise ProtocolError(
                "concurrent client_recv interleaved on one channel"
            )
        self._inflight_parity = None
        return response

    def _request_delivered(self, channel: ClientChannel) -> None:
        channel.notify_request_delivery()
        self.server.enqueue(channel)

    # ------------------------------------------------------------------
    # Remote fetching
    # ------------------------------------------------------------------

    def _fetch_response(self, parity: int) -> Generator:
        """Repeated remote fetching; None means "switched mid-call"."""
        sim = self.sim
        config = self.config
        channel = self.channel
        # In fetch mode the client spins from the moment it posts the
        # request until the result is in hand (Fig. 15's 100% CPU).
        spin_start = self._call_started_at
        failed = 0
        slow_noted = False
        while True:
            yield config.client_post_cpu_us
            if self.tracer is not None:
                self._trace(
                    "fetch_read",
                    seq=self.seq,
                    attempt=failed + 1,
                    bytes=config.fetch_size,
                )
            yield self.endpoint.post_read(
                self._fetch_landing, 0, channel.response_region, 0, config.fetch_size
            )
            yield config.client_parse_cpu_us
            self.stats.remote_reads.increment()
            status, size, _ = unpack_response(
                self._fetch_landing.read_local(0, RESPONSE_HEADER_BYTES)
            )
            if status == parity:
                response = yield from self._collect_payload(size)
                if self.result_sampler is not None:
                    self.result_sampler.observe(size)
                if self.tracer is not None:
                    self._trace(
                        "fetch_success", seq=self.seq, attempts=failed + 1
                    )
                self.stats.fetch_attempts.record(failed + 1)
                if not slow_noted:
                    self.policy.note_fast_call()
                self.stats.busy.add_busy(sim.now - spin_start)
                return response
            failed += 1
            if failed >= config.retry_bound and not slow_noted:
                slow_noted = True
                if self.policy.note_slow_call():
                    self._trace("mode_switch", seq=self.seq, to="SERVER_REPLY")
                    self.stats.fetch_attempts.record(failed)
                    yield from self._write_mode_flag(Mode.SERVER_REPLY)
                    self.stats.busy.add_busy(sim.now - spin_start)
                    return None

    def _collect_payload(self, size: int) -> Generator:
        """Issue the remainder read when the response exceeded F."""
        plan = plan_fetch(size, self.config.fetch_size)
        if not plan.complete_after_first:
            yield self.config.client_post_cpu_us
            if self.tracer is not None:
                self._trace(
                    "remainder_read", seq=self.seq, bytes=plan.remainder_bytes
                )
            yield self.endpoint.post_read(
                self._fetch_landing,
                plan.remainder_offset,
                self.channel.response_region,
                plan.remainder_offset,
                plan.remainder_bytes,
            )
            self.stats.remote_reads.increment()
        return self._fetch_landing.read_local(RESPONSE_HEADER_BYTES, size)

    # ------------------------------------------------------------------
    # Server-reply mode
    # ------------------------------------------------------------------

    def _await_reply(self, parity: int) -> Generator:
        """Block until the server pushes a response with our parity."""
        sim = self.sim
        config = self.config
        channel = self.channel
        self.stats.reply_waits.increment()
        while True:
            yield channel.reply_store.get()
            yield config.client_wake_cpu_us
            status, size, time_tenths = unpack_response(
                self._reply_landing.read_local(0, RESPONSE_HEADER_BYTES)
            )
            if status != parity:
                # A stale late reply from a previous call: ignore it.
                continue
            response = self._reply_landing.read_local(RESPONSE_HEADER_BYTES, size)
            if self.tracer is not None:
                self._trace("reply_received", seq=self.seq, bytes=size)
            if self.result_sampler is not None:
                self.result_sampler.observe(size)
            if self.policy.mode is Mode.SERVER_REPLY:
                if self.policy.note_reply_time(time_tenths / 10.0):
                    self._trace("mode_switch", seq=self.seq, to="REMOTE_FETCH")
                    yield from self._write_mode_flag(Mode.REMOTE_FETCH)
            return response

    # ------------------------------------------------------------------
    # Mode flag
    # ------------------------------------------------------------------

    def _write_mode_flag(self, new_mode: Mode) -> Generator:
        """Publish the client's mode with a 1-byte one-sided write."""
        sim = self.sim
        self._flag_staging.write_local(0, bytes([new_mode.value]))
        yield self.config.client_post_cpu_us
        channel = self.channel
        server = self.server
        self._trace("flag_published", seq=self.seq, mode=new_mode.name)
        yield self.endpoint.post_write(
            self._flag_staging,
            0,
            channel.flag_region,
            0,
            1,
            on_delivery=lambda: server.on_mode_flag(channel, new_mode),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RfpClient({self.name}, mode={self.policy.mode.name})"
