"""Request/response buffer headers (paper Fig. 7).

The request header carries ``status`` (1 bit) and ``size`` (31 bits); the
response header additionally carries ``time`` (16 bits) — the server's
response time for the request, which clients use to decide when to switch
back from server-reply to remote fetching.

The 1-bit ``status`` is implemented as a **parity toggle**: request *n*
(1-based) and its response both carry ``n & 1``.  A remote fetch that
lands on the *previous* response sees the wrong parity and retries; no
extra RDMA operation is ever needed to reset the flag.  The server writes
the response payload first and the header last, so a fetch that races the
header write simply observes the old parity and retries — torn responses
are impossible to consume.

``time`` is encoded in tenths of a microsecond, saturating at the 16-bit
limit (≈ 6.5 ms).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = [
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "RequestHeader",
    "ResponseHeader",
]

#: status+size packed into 4 bytes (1 + 31 bits).
REQUEST_HEADER_BYTES = 4
#: status+size (4 bytes) + time (2 bytes) + padding (2 bytes).
RESPONSE_HEADER_BYTES = 8

_STATUS_MASK = 0x8000_0000
_SIZE_MASK = 0x7FFF_FFFF
_TIME_LIMIT = 0xFFFF


def _pack_status_size(status: int, size: int) -> int:
    if status not in (0, 1):
        raise ProtocolError(f"status is a single bit, got {status}")
    if not 0 <= size <= _SIZE_MASK:
        raise ProtocolError(f"size does not fit in 31 bits: {size}")
    return (status << 31) | size


@dataclass(frozen=True)
class RequestHeader:
    """Header preceding a request payload in the server-side buffer."""

    status: int
    size: int

    def pack(self) -> bytes:
        return struct.pack("<I", _pack_status_size(self.status, self.size))

    @classmethod
    def unpack(cls, raw: bytes) -> "RequestHeader":
        if len(raw) < REQUEST_HEADER_BYTES:
            raise ProtocolError(f"short request header: {len(raw)} bytes")
        word = struct.unpack_from("<I", raw)[0]
        return cls(status=word >> 31, size=word & _SIZE_MASK)


@dataclass(frozen=True)
class ResponseHeader:
    """Header preceding a response payload in the server-side buffer.

    ``time_tenths_us`` is the server-side response time (queueing +
    processing) in 0.1 µs units.
    """

    status: int
    size: int
    time_tenths_us: int = 0

    def pack(self) -> bytes:
        if not 0 <= self.time_tenths_us <= _TIME_LIMIT:
            raise ProtocolError(f"time field overflow: {self.time_tenths_us}")
        return struct.pack(
            "<IHxx", _pack_status_size(self.status, self.size), self.time_tenths_us
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "ResponseHeader":
        if len(raw) < RESPONSE_HEADER_BYTES:
            raise ProtocolError(f"short response header: {len(raw)} bytes")
        word, time_tenths = struct.unpack_from("<IH", raw)
        return cls(status=word >> 31, size=word & _SIZE_MASK, time_tenths_us=time_tenths)

    @classmethod
    def encode_time(cls, response_time_us: float) -> int:
        """Convert a response time to the saturating 16-bit wire value."""
        if response_time_us < 0:
            raise ProtocolError(f"negative response time: {response_time_us}")
        return min(_TIME_LIMIT, int(round(response_time_us * 10.0)))

    @property
    def time_us(self) -> float:
        """Decoded response time in microseconds."""
        return self.time_tenths_us / 10.0
