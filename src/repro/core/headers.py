"""Request/response buffer headers (paper Fig. 7).

The request header carries ``status`` (1 bit) and ``size`` (31 bits); the
response header additionally carries ``time`` (16 bits) — the server's
response time for the request, which clients use to decide when to switch
back from server-reply to remote fetching.

The 1-bit ``status`` is implemented as a **parity toggle**: request *n*
(1-based) and its response both carry ``n & 1``.  A remote fetch that
lands on the *previous* response sees the wrong parity and retries; no
extra RDMA operation is ever needed to reset the flag.  The server writes
the response payload first and the header last, so a fetch that races the
header write simply observes the old parity and retries — torn responses
are impossible to consume.

``time`` is encoded in tenths of a microsecond, saturating at the 16-bit
limit (≈ 6.5 ms).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = [
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "RequestHeader",
    "ResponseHeader",
    "pack_request",
    "unpack_request",
    "pack_response",
    "unpack_response",
]

#: status+size packed into 4 bytes (1 + 31 bits).
REQUEST_HEADER_BYTES = 4
#: status+size (4 bytes) + time (2 bytes) + padding (2 bytes).
RESPONSE_HEADER_BYTES = 8

_STATUS_MASK = 0x8000_0000
_SIZE_MASK = 0x7FFF_FFFF
_TIME_LIMIT = 0xFFFF

_REQUEST_STRUCT = struct.Struct("<I")
_RESPONSE_STRUCT = struct.Struct("<IHxx")
_RESPONSE_PREFIX_STRUCT = struct.Struct("<IH")


def _pack_status_size(status: int, size: int) -> int:
    if status not in (0, 1):
        raise ProtocolError(f"status is a single bit, got {status}")
    if not 0 <= size <= _SIZE_MASK:
        raise ProtocolError(f"size does not fit in 31 bits: {size}")
    return (status << 31) | size


# ----------------------------------------------------------------------
# Allocation-free wire helpers
#
# The dataclasses below are the readable API; these functions are the
# same wire format without a header object per op, for the request/fetch
# hot paths (hundreds of thousands of headers per bench run).
# ----------------------------------------------------------------------


def pack_request(status: int, size: int) -> bytes:
    """Wire bytes of a request header (see :class:`RequestHeader`)."""
    return _REQUEST_STRUCT.pack(_pack_status_size(status, size))


def unpack_request(raw: bytes) -> "tuple[int, int]":
    """``(status, size)`` from request-header bytes."""
    if len(raw) < REQUEST_HEADER_BYTES:
        raise ProtocolError(f"short request header: {len(raw)} bytes")
    word = _REQUEST_STRUCT.unpack_from(raw)[0]
    return word >> 31, word & _SIZE_MASK


def pack_response(status: int, size: int, time_tenths_us: int = 0) -> bytes:
    """Wire bytes of a response header (see :class:`ResponseHeader`)."""
    if not 0 <= time_tenths_us <= _TIME_LIMIT:
        raise ProtocolError(f"time field overflow: {time_tenths_us}")
    return _RESPONSE_STRUCT.pack(_pack_status_size(status, size), time_tenths_us)


def unpack_response(raw: bytes) -> "tuple[int, int, int]":
    """``(status, size, time_tenths_us)`` from response-header bytes."""
    if len(raw) < RESPONSE_HEADER_BYTES:
        raise ProtocolError(f"short response header: {len(raw)} bytes")
    word, time_tenths = _RESPONSE_PREFIX_STRUCT.unpack_from(raw)
    return word >> 31, word & _SIZE_MASK, time_tenths


@dataclass(frozen=True)
class RequestHeader:
    """Header preceding a request payload in the server-side buffer."""

    status: int
    size: int

    def pack(self) -> bytes:
        return pack_request(self.status, self.size)

    @classmethod
    def unpack(cls, raw: bytes) -> "RequestHeader":
        status, size = unpack_request(raw)
        return cls(status=status, size=size)


@dataclass(frozen=True)
class ResponseHeader:
    """Header preceding a response payload in the server-side buffer.

    ``time_tenths_us`` is the server-side response time (queueing +
    processing) in 0.1 µs units.
    """

    status: int
    size: int
    time_tenths_us: int = 0

    def pack(self) -> bytes:
        return pack_response(self.status, self.size, self.time_tenths_us)

    @classmethod
    def unpack(cls, raw: bytes) -> "ResponseHeader":
        status, size, time_tenths = unpack_response(raw)
        return cls(status=status, size=size, time_tenths_us=time_tenths)

    @classmethod
    def encode_time(cls, response_time_us: float) -> int:
        """Convert a response time to the saturating 16-bit wire value."""
        if response_time_us < 0:
            raise ProtocolError(f"negative response time: {response_time_us}")
        return min(_TIME_LIMIT, int(round(response_time_us * 10.0)))

    @property
    def time_us(self) -> float:
        """Decoded response time in microseconds."""
        return self.time_tenths_us / 10.0
