"""The RFP server.

The server owns one request buffer, one response buffer, and one mode
flag per connected client (Fig. 7).  Its worker threads:

1. take the next delivered request from their partition (EREW: a client
   is pinned to one thread, so threads never share state),
2. run the application handler and charge its process time,
3. write the response — payload first, header last — into the client's
   response buffer, stamping the response time into the header,
4. *only if* the client's mode flag says ``SERVER_REPLY``, push the
   response to the client with an out-bound RDMA Write; otherwise the
   server is done — the client will fetch the response itself and the
   server NIC sees nothing but in-bound traffic.

Mode-flag updates arrive as one-sided writes from clients.  A flag that
flips to ``SERVER_REPLY`` *after* the response was buffered (the client
gave up fetching while the result was landing) triggers a late reply, so
the client can never deadlock waiting for a reply the server thinks was
fetched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.config import RfpConfig
from repro.core.headers import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    ResponseHeader,
    pack_response,
    unpack_request,
)
from repro.core.mode import Mode
from repro.errors import ProtocolError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, Tally
from repro.sim.random import seeded_rng, stable_hash
from repro.sim.resources import Store

__all__ = ["RfpServer", "RfpServerStats", "ClientChannel", "RequestContext"]

#: ``handler(payload, ctx) -> (response_bytes, process_time_us)``
Handler = Callable[[bytes, "RequestContext"], Tuple[bytes, float]]

_CLIENT_IDS = itertools.count(1)


@dataclass(frozen=True)
class RequestContext:
    """Passed to the application handler with each request."""

    client_id: int
    thread_id: int


@dataclass
class RfpServerStats:
    """Aggregate server-side counters."""

    requests: Counter = field(default_factory=lambda: Counter("requests"))
    replies_sent: Counter = field(default_factory=lambda: Counter("replies_sent"))
    late_replies: Counter = field(default_factory=lambda: Counter("late_replies"))
    response_time_us: Tally = field(default_factory=lambda: Tally("response_time_us"))


class ClientChannel:
    """Per-client server-side state (buffers, flag, request tracking)."""

    # Request lifecycle states.
    IDLE, QUEUED, DONE = range(3)

    def __init__(
        self,
        server: "RfpServer",
        client_machine: Machine,
        reply_region: MemoryRegion,
        thread_id: int,
    ) -> None:
        sim = server.sim
        config = server.config
        self.client_id = next(_CLIENT_IDS)
        self.thread_id = thread_id
        client_ep, server_ep = server.cluster.connect(client_machine, server.machine)
        self.client_endpoint = client_ep
        self.server_endpoint = server_ep
        self.request_region = server.machine.register_memory(
            config.request_buffer_bytes, name=f"req[{self.client_id}]"
        )
        self.response_region = server.machine.register_memory(
            config.response_buffer_bytes, name=f"resp[{self.client_id}]"
        )
        self.flag_region = server.machine.register_memory(
            8, name=f"flag[{self.client_id}]"
        )
        #: Client-owned region the server writes replies into.
        self.reply_region = reply_region
        #: Client-side store the reply write's delivery feeds.
        self.reply_store = Store(sim)
        self.mode = Mode.REMOTE_FETCH
        self.state = ClientChannel.IDLE
        self.request_delivered_at = 0.0
        self.seq_seen = 0
        self.response_seq: Optional[int] = None
        self.response_parity = 0
        self.response_size = 0
        self.replied_seq: Optional[int] = None

    def notify_request_delivery(self) -> None:
        """on_delivery hook of the client's request write."""
        self.state = ClientChannel.QUEUED
        self.seq_seen += 1
        self.request_delivered_at = self.reply_store.sim.now


class RfpServer:
    """An RFP server bound to one machine of a cluster.

    ``handler`` is the application: it receives the request payload and a
    :class:`RequestContext`, and returns ``(response_bytes,
    process_time_us)``; the server charges the process time to simulated
    time before publishing the response.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Machine,
        handler: Handler,
        threads: int = 6,
        config: Optional[RfpConfig] = None,
        name: str = "rfp-server",
        tracer=None,
    ) -> None:
        if threads < 1:
            raise ProtocolError(f"server needs at least one thread, got {threads}")
        if threads > machine.cores:
            raise ProtocolError(
                f"{threads} server threads exceed the machine's "
                f"{machine.cores} cores"
            )
        self.sim = sim
        self.cluster = cluster
        self.machine = machine
        self.handler = handler
        self.threads = threads
        self.config = config if config is not None else RfpConfig()
        self.name = name
        self.stats = RfpServerStats()
        #: Optional :class:`repro.sim.Tracer` recording protocol phases.
        self.tracer = tracer
        self._halted = False
        self._jitter_rng = seeded_rng(stable_hash(name))
        self._stores: List[Store] = [Store(sim) for _ in range(threads)]
        self._channels: List[ClientChannel] = []
        self._next_thread = 0
        self._thread_procs = []
        for thread_id, store in enumerate(self._stores):
            machine.rnic.register_issuer()
            self._thread_procs.append(
                sim.process(
                    self._thread_body(thread_id, store), name=f"{name}.t{thread_id}"
                )
            )

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def accept(
        self,
        client_machine: Machine,
        reply_region: MemoryRegion,
        thread_id: Optional[int] = None,
    ) -> ClientChannel:
        """Connect a client, pinning it to a worker thread (EREW).

        Without ``thread_id`` clients are spread round-robin; key-routed
        systems like Jakiro pass the partition-owning thread explicitly.
        ``reply_region`` is a client-owned registered region the server
        writes server-reply responses into.
        """
        if thread_id is None:
            thread_id = self._next_thread
            self._next_thread = (self._next_thread + 1) % self.threads
        elif not 0 <= thread_id < self.threads:
            raise ProtocolError(
                f"thread_id {thread_id} out of range for {self.threads} threads"
            )
        channel = ClientChannel(self, client_machine, reply_region, thread_id)
        self._channels.append(channel)
        return channel

    @property
    def channels(self) -> List[ClientChannel]:
        return list(self._channels)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def enqueue(self, channel: ClientChannel) -> None:
        """Hand a delivered request to the owning worker thread."""
        self._stores[channel.thread_id].put(channel)

    def halt(self) -> None:
        """Crash the server's CPU side: worker threads stop serving and no
        further replies (including late replies) are sent.

        The NIC is *not* halted — one-sided reads against the response
        buffers keep returning whatever was last published, exactly like a
        host crash that leaves the fabric up.  Clients stuck on a halted
        server therefore see stale parity until their retry/slow-call
        machinery degrades the connection (§3.2's hybrid rule).  Used by
        the cluster layer's failure injection.
        """
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted

    def restart(self) -> None:
        """Reboot a halted server's CPU side: worker threads serve again.

        Requests that were queued (delivered but unserved) when the host
        crashed lived in volatile memory, so the reboot drops them —
        their clients long since degraded through the hybrid rule and
        abandoned those connections.  Worker threads that exited on the
        halt are respawned; threads still parked on an empty queue simply
        resume serving.  The NIC's issuer registration survives (same
        cores, same contention), so nothing is re-registered.
        """
        if not self._halted:
            raise ProtocolError(f"restart of {self.name!r}: server is not halted")
        for store in self._stores:
            store.clear()
        self._halted = False
        for thread_id, store in enumerate(self._stores):
            if self._thread_procs[thread_id].finished:
                self._thread_procs[thread_id] = self.sim.process(
                    self._thread_body(thread_id, store),
                    name=f"{self.name}.t{thread_id}",
                )

    def _thread_body(self, thread_id: int, store: Store):
        sim = self.sim
        config = self.config
        has_jitter = config.server_sw_jitter_us > 0
        while True:
            channel: ClientChannel = yield store.get()
            if self._halted:
                return
            yield config.server_poll_cpu_us
            status, size = unpack_request(
                channel.request_region.read_local(0, REQUEST_HEADER_BYTES)
            )
            payload = channel.request_region.read_local(REQUEST_HEADER_BYTES, size)
            context = RequestContext(client_id=channel.client_id, thread_id=thread_id)
            response, process_us = self.handler(payload, context)
            if process_us > 0:
                yield process_us
            if has_jitter:
                yield config.server_sw_us + self._stub_jitter_us()
            else:
                yield config.server_sw_us
            if self._halted:
                return
            self._publish_response(channel, status, response)
            if channel.mode is Mode.SERVER_REPLY:
                yield from self._send_reply(channel)

    def _stub_jitter_us(self) -> float:
        """Per-request software-timing noise (seeded from the server name,
        so runs stay reproducible)."""
        jitter = self.config.server_sw_jitter_us
        if jitter <= 0:
            return 0.0
        return float(self._jitter_rng.uniform(0.0, jitter))

    def _publish_response(
        self, channel: ClientChannel, parity: int, response: bytes
    ) -> None:
        """server_send: buffer the response locally (payload, then header)."""
        limit = self.config.response_buffer_bytes - RESPONSE_HEADER_BYTES
        if len(response) > limit:
            raise ProtocolError(
                f"response of {len(response)} B exceeds the {limit} B buffer"
            )
        response_time = self.sim.now - channel.request_delivered_at
        packed = pack_response(
            parity, len(response), ResponseHeader.encode_time(response_time)
        )
        channel.response_region.write_local(RESPONSE_HEADER_BYTES, response)
        channel.response_region.write_local(0, packed)
        channel.state = ClientChannel.DONE
        channel.response_seq = channel.seq_seen
        channel.response_parity = parity
        channel.response_size = len(response)
        self.stats.requests.increment()
        self.stats.response_time_us.record(response_time)
        if self.tracer is not None:
            self.tracer.record(
                "rfp.server",
                "response_published",
                client=channel.client_id,
                seq=channel.seq_seen,
                bytes=len(response),
                response_time_us=round(response_time, 3),
            )

    def _send_reply(self, channel: ClientChannel):
        """Push the buffered response with an out-bound RDMA Write.

        The write is posted fire-and-forget: the payload is sampled by the
        NIC at post time, so the thread moves on to the next request and
        collects the completion lazily (as real sync servers do) — only
        the post cost is charged to the thread, while the out-bound
        pipeline rate-limits the actual sends.
        """
        spec = self.machine.rnic.spec
        total = RESPONSE_HEADER_BYTES + channel.response_size
        yield spec.post_cpu_us + total * self.config.reply_send_per_byte_us
        channel.server_endpoint.post_write(
            channel.response_region,
            0,
            channel.reply_region,
            0,
            total,
            on_delivery=lambda: channel.reply_store.put(total),
        )
        channel.replied_seq = channel.response_seq
        self.stats.replies_sent.increment()
        if self.tracer is not None:
            self.tracer.record(
                "rfp.server",
                "reply_pushed",
                client=channel.client_id,
                seq=channel.response_seq,
                bytes=total,
            )

    # ------------------------------------------------------------------
    # Mode-flag path
    # ------------------------------------------------------------------

    def on_mode_flag(self, channel: ClientChannel, new_mode: Mode) -> None:
        """Delivery hook of the client's one-sided flag write.

        If the client switched to server-reply while a finished response
        sat unfetched in the buffer, send it now (the client stopped
        fetching and is blocked waiting).
        """
        channel.mode = new_mode
        if self.tracer is not None:
            self.tracer.record(
                "rfp.server",
                "mode_flag",
                client=channel.client_id,
                mode=new_mode.name,
            )
        pending = (
            not self._halted
            and new_mode is Mode.SERVER_REPLY
            and channel.state == ClientChannel.DONE
            and channel.response_seq is not None
            and channel.replied_seq != channel.response_seq
        )
        if pending:
            self.stats.late_replies.increment()
            self.sim.process(
                self._send_reply(channel), name=f"{self.name}.late-reply"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RfpServer({self.name}: {self.threads} threads, "
            f"{len(self._channels)} clients)"
        )
