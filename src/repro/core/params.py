"""Parameter selection for R (retry bound) and F (fetch size) — §3.2.

The paper turns both challenges into one selection problem (Eq. 1):

    T = argmax_{R,F} f(R, F, P, S)

and solves it by enumeration after bounding the candidate ranges from
hardware curves:

- ``N`` (upper bound of R) comes from the throughput-vs-process-time
  curve (Fig. 9): past the process time where repeated remote fetching
  gains less than ~10% over server-reply, extra retries only burn client
  CPU.  The retry bound maps to that crossover's process time divided by
  one fetch round trip (their testbed: P ≈ 7 µs ⇒ N = 5).
- ``[L, H]`` (range of F) comes from the IOPS-vs-size curve (Fig. 5):
  below ``L`` IOPS is flat so a bigger fetch is free; above ``H`` the
  link is bandwidth-bound and larger fetches only waste bytes (their
  testbed: L = 256 B, H = 1024 B).

Eq. 2 then scores each candidate pair against sampled result sizes
``S_1..S_M``: a result covered by one fetch contributes the full IOPS
``I_{R,F}``, an uncovered one contributes half (two reads needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.fetch import reads_required
from repro.errors import ProtocolError

__all__ = [
    "ParameterChoice",
    "derive_retry_bound",
    "derive_size_bounds",
    "select_parameters",
    "fetch_size_grid",
]


@dataclass(frozen=True)
class ParameterChoice:
    """Output of the enumeration: the chosen (R, F) and its Eq. 2 score."""

    retry_bound: int
    fetch_size: int
    expected_mops: float
    scores: Dict[Tuple[int, int], float]


def derive_size_bounds(
    sizes: Sequence[int],
    iops: Sequence[float],
    flat_tolerance: float = 0.035,
    bandwidth_tolerance: float = 0.02,
) -> Tuple[int, int]:
    """Find [L, H] from a measured IOPS-vs-size curve (Fig. 5 analysis).

    ``L`` is the largest size whose IOPS is still within
    ``flat_tolerance`` of the small-payload peak (fetching less gains
    nothing).  ``H`` is the smallest size whose *byte* throughput reaches
    within ``bandwidth_tolerance`` of the link's asymptotic byte rate
    (fetching more is pure bandwidth waste).
    """
    if len(sizes) != len(iops) or len(sizes) < 3:
        raise ProtocolError("need matching size/IOPS arrays with >= 3 points")
    if list(sizes) != sorted(sizes):
        raise ProtocolError("sizes must be increasing")
    peak = max(iops)
    lower = sizes[0]
    for size, rate in zip(sizes, iops):
        if rate >= (1.0 - flat_tolerance) * peak:
            lower = size
        else:
            break
    byte_rates = [s * r for s, r in zip(sizes, iops)]
    asymptote = byte_rates[-1]
    upper = sizes[-1]
    for size, byte_rate in zip(sizes, byte_rates):
        if byte_rate >= (1.0 - bandwidth_tolerance) * asymptote:
            upper = size
            break
    if upper < lower:
        raise ProtocolError(
            f"degenerate bounds L={lower} > H={upper}; widen the size sweep"
        )
    return lower, upper


def derive_retry_bound(
    process_times_us: Sequence[float],
    fetch_mops: Sequence[float],
    reply_mops: Sequence[float],
    fetch_round_trip_us: float,
    gain_threshold: float = 0.10,
) -> Tuple[int, float]:
    """Find N (upper bound of R) from a Fig. 9-style curve.

    Returns ``(N, crossover_process_time)``: the first process time where
    repeated remote fetching improves on server-reply by less than
    ``gain_threshold``, and the number of fetch round trips that fit into
    that process time — past N retries, fetching buys < 10% throughput
    while holding the client CPU at 100%.
    """
    if not (len(process_times_us) == len(fetch_mops) == len(reply_mops)):
        raise ProtocolError("curve arrays must have matching lengths")
    if fetch_round_trip_us <= 0:
        raise ProtocolError("fetch round trip must be positive")
    crossover = process_times_us[-1]
    for process_time, fetch, reply in zip(process_times_us, fetch_mops, reply_mops):
        if reply <= 0:
            continue
        if (fetch - reply) / reply <= gain_threshold:
            crossover = process_time
            break
    retry_bound = max(1, round(crossover / fetch_round_trip_us))
    return retry_bound, crossover


def fetch_size_grid(lower: int, upper: int, step: int = 64) -> List[int]:
    """Candidate fetch sizes in [L, H], aligned to ``step`` bytes."""
    if lower > upper:
        raise ProtocolError(f"invalid range [{lower}, {upper}]")
    if step < 1:
        raise ProtocolError(f"step must be >= 1, got {step}")
    grid = list(range(lower, upper + 1, step))
    if grid[-1] != upper:
        grid.append(upper)
    return grid


def select_parameters(
    result_sizes: Sequence[int],
    iops_at: Callable[[int, int], float],
    retry_upper_bound: int,
    size_lower_bound: int,
    size_upper_bound: int,
    size_step: int = 64,
) -> ParameterChoice:
    """Enumerate (R, F) candidates and maximise Eq. 2.

    ``iops_at(R, F)`` is the measured RNIC fetch IOPS under the candidate
    parameters (``I_{R,F}``; in practice dominated by F).  For each sampled
    result size ``S_i`` a covered result scores the full IOPS and an
    uncovered one half of it.  Ties prefer the larger R (fewer premature
    mode switches) and then the smaller F (less bandwidth).
    """
    if not result_sizes:
        raise ProtocolError("no result sizes provided (run the sampler first)")
    if retry_upper_bound < 1:
        raise ProtocolError("retry upper bound must be >= 1")
    scores: Dict[Tuple[int, int], float] = {}
    best: Tuple[float, int, int] = (-1.0, 0, 0)
    for retry in range(1, retry_upper_bound + 1):
        for fetch in fetch_size_grid(size_lower_bound, size_upper_bound, size_step):
            rate = iops_at(retry, fetch)
            total = 0.0
            for size in result_sizes:
                total += rate if reads_required(size, fetch) == 1 else rate / 2.0
            mean = total / len(result_sizes)
            scores[(retry, fetch)] = mean
            candidate = (mean, retry, -fetch)
            if candidate > best:
                best = candidate
    _, retry, negative_fetch = best
    return ParameterChoice(
        retry_bound=retry,
        fetch_size=-negative_fetch,
        expected_mops=scores[(retry, -negative_fetch)],
        scores=scores,
    )
