"""Result-size sampling for parameter selection (paper §3.2).

Equation 2 needs the application's result sizes ``S_1..S_M``.  The paper
collects them "by pre-running it for a certain time or sampling
periodically during its run"; :class:`ResultSampler` supports both: feed
it every observed size and it keeps a bounded uniform reservoir, so
long-running online use stays O(capacity).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.sim.random import seeded_rng

__all__ = ["ResultSampler"]


class ResultSampler:
    """Reservoir sampler over observed RPC result sizes."""

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ProtocolError(f"sampler capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = seeded_rng(seed)
        self._reservoir: List[int] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Total sizes observed (reservoir holds at most ``capacity``)."""
        return self._seen

    def observe(self, size: int) -> None:
        """Record one result size (Vitter's algorithm R)."""
        if size < 0:
            raise ProtocolError(f"negative result size: {size}")
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(size)
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._reservoir[slot] = size

    def observe_many(self, sizes: Iterable[int]) -> None:
        for size in sizes:
            self.observe(size)

    def sizes(self) -> Sequence[int]:
        """The sampled result sizes ``S_1..S_M`` for Eq. 2."""
        if not self._reservoir:
            raise ProtocolError("no result sizes observed yet (pre-run first)")
        return list(self._reservoir)

    def percentile(self, p: float) -> float:
        if not self._reservoir:
            raise ProtocolError("no result sizes observed yet (pre-run first)")
        return float(np.percentile(self._reservoir, p))
