"""Fetch-size planning (paper §3.2, second challenge).

The client does not know a response's size in advance.  Fetching the size
first would double the RDMA Read count, so RFP reads ``F`` bytes — header
plus the leading payload — in one operation.  Only when the response is
larger than ``F`` does a second read collect the remainder.  These pure
functions compute that plan and are shared by the client and by the
parameter-selection model (Eq. 2's ``F >= S_i`` ⇒ one read, else two).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.headers import RESPONSE_HEADER_BYTES
from repro.errors import ProtocolError

__all__ = ["FetchPlan", "plan_fetch", "reads_required", "payload_capacity"]


def payload_capacity(fetch_size: int) -> int:
    """Payload bytes a single ``F``-byte read can deliver."""
    return max(0, fetch_size - RESPONSE_HEADER_BYTES)


@dataclass(frozen=True)
class FetchPlan:
    """Byte ranges to read once the first fetch revealed the true size.

    ``first_covers`` — payload bytes already delivered by the first read;
    ``remainder_offset``/``remainder_bytes`` — the second read, if any.
    """

    total_payload: int
    first_covers: int
    remainder_offset: int
    remainder_bytes: int

    @property
    def complete_after_first(self) -> bool:
        return self.remainder_bytes == 0


def plan_fetch(total_payload: int, fetch_size: int) -> FetchPlan:
    """Plan the reads for a response of ``total_payload`` bytes.

    The first read already moved ``min(total, F - header)`` payload bytes;
    anything beyond needs exactly one more read starting right after the
    bytes already held.
    """
    if total_payload < 0:
        raise ProtocolError(f"negative payload size: {total_payload}")
    capacity = payload_capacity(fetch_size)
    first = min(total_payload, capacity)
    remainder = total_payload - first
    return FetchPlan(
        total_payload=total_payload,
        first_covers=first,
        remainder_offset=RESPONSE_HEADER_BYTES + first,
        remainder_bytes=remainder,
    )


def reads_required(total_payload: int, fetch_size: int) -> int:
    """RDMA Reads needed for a response, assuming the fetch succeeds.

    This is the quantity Eq. 2 models: 1 when ``F`` covers the response,
    2 otherwise.
    """
    return 1 if plan_fetch(total_payload, fetch_size).complete_after_first else 2
