"""Perf-trajectory comparison between two run artifacts.

``python -m repro.exp compare A.json B.json`` diffs the *deterministic*
metrics of two ``repro.exp/v1`` artifacts (``unpinned`` wall times are
ignored structurally via
:func:`~repro.exp.artifact.deterministic_view`), reports per-condition
deltas, and flags regressions.

Whether a delta is a regression depends on the metric's direction,
derived from its name:

- throughput-like (``mops`` / ``*_mops``) — higher is better; a drop
  beyond tolerance is a regression;
- loss-like (``lost*``) — lower is better; any increase is a
  regression;
- everything else is *neutral*: reported when it changes, never flagged.

Deterministic metrics from the same tree at the same scale agree
exactly, so comparing two runs of one suite reports zero regressions —
the determinism acceptance check rides on the same code path users run
for real trajectory comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ExpError
from repro.exp.artifact import SCHEMA_VERSION, deterministic_view

__all__ = [
    "Comparison",
    "MetricDelta",
    "compare_payloads",
    "format_comparison",
]

#: Relative drop a higher-is-better metric may show before it is
#: flagged (absorbs honest last-digit rounding, nothing more).
DEFAULT_REL_TOLERANCE = 0.005


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 neutral."""
    if name == "mops" or name.endswith("_mops"):
        return 1
    if name.startswith("lost"):
        return -1
    return 0


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between baseline (a) and candidate (b)."""

    experiment_id: str
    label: str
    metric: str
    before: object
    after: object
    #: +1/-1/0 per :func:`metric_direction`.
    direction: int
    regression: bool

    def describe(self) -> str:
        arrow = f"{self.before} -> {self.after}"
        tag = " REGRESSION" if self.regression else ""
        return f"{self.experiment_id}/{self.label} {self.metric}: {arrow}{tag}"


@dataclass
class Comparison:
    """Structured outcome of one artifact-pair comparison."""

    suite: str
    baseline_sha: str
    candidate_sha: str
    scales_match: bool
    changed: List[MetricDelta] = field(default_factory=list)
    #: (experiment_id, label) present only on one side.
    only_in_baseline: List[Tuple[str, str]] = field(default_factory=list)
    only_in_candidate: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [delta for delta in self.changed if delta.regression]

    @property
    def identical(self) -> bool:
        return not (
            self.changed or self.only_in_baseline or self.only_in_candidate
        )


def _conditions_by_key(
    payload: Mapping[str, object],
) -> Dict[Tuple[str, str], Mapping[str, object]]:
    table: Dict[Tuple[str, str], Mapping[str, object]] = {}
    for experiment in payload["experiments"]:  # type: ignore[index]
        for condition in experiment["conditions"]:  # type: ignore[index]
            table[(experiment["experiment_id"], condition["label"])] = condition
    return table


def _is_regression(
    direction: int, before: float, after: float, rel_tolerance: float
) -> bool:
    if direction == 0:
        return False
    if direction > 0:
        floor = before * (1.0 - rel_tolerance)
        return after < floor
    ceiling = before * (1.0 + rel_tolerance) if before else before
    return after > ceiling


def compare_payloads(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
) -> Comparison:
    """Diff two validated ``repro.exp/v1`` payloads.

    Raises :class:`~repro.errors.ExpError` when the two artifacts are
    not commensurable (different schema versions or different suites).
    """
    for name, payload in (("baseline", baseline), ("candidate", candidate)):
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ExpError(
                f"{name} artifact has schema {schema!r}; compare needs two "
                f"{SCHEMA_VERSION!r} artifacts"
            )
    if baseline["suite"] != candidate["suite"]:
        raise ExpError(
            f"cannot compare different suites: {baseline['suite']!r} vs "
            f"{candidate['suite']!r}"
        )
    base = deterministic_view(baseline)
    cand = deterministic_view(candidate)
    base_scale = base["provenance"]["scale"]  # type: ignore[index]
    cand_scale = cand["provenance"]["scale"]  # type: ignore[index]
    comparison = Comparison(
        suite=str(base["suite"]),
        baseline_sha=str(base["provenance"]["git_sha"]),  # type: ignore[index]
        candidate_sha=str(cand["provenance"]["git_sha"]),  # type: ignore[index]
        scales_match=base_scale == cand_scale,
    )
    base_table = _conditions_by_key(base)
    cand_table = _conditions_by_key(cand)
    comparison.only_in_baseline = sorted(set(base_table) - set(cand_table))
    comparison.only_in_candidate = sorted(set(cand_table) - set(base_table))
    for key in sorted(set(base_table) & set(cand_table)):
        experiment_id, label = key
        before_metrics = base_table[key]["metrics"]  # type: ignore[index]
        after_metrics = cand_table[key]["metrics"]  # type: ignore[index]
        for metric in sorted(set(before_metrics) | set(after_metrics)):
            before = before_metrics.get(metric)
            after = after_metrics.get(metric)
            if before == after:
                continue
            direction = metric_direction(metric)
            numeric = isinstance(before, (int, float)) and isinstance(
                after, (int, float)
            )
            comparison.changed.append(
                MetricDelta(
                    experiment_id=experiment_id,
                    label=label,
                    metric=metric,
                    before=before,
                    after=after,
                    direction=direction,
                    regression=(
                        _is_regression(
                            direction, float(before), float(after), rel_tolerance
                        )
                        if numeric
                        # A metric appearing/disappearing or changing type
                        # on a directional axis is itself suspicious.
                        else direction != 0
                    ),
                )
            )
    return comparison


def format_comparison(comparison: Comparison, verbose: bool = False) -> str:
    lines = [
        f"suite {comparison.suite!r}: "
        f"{comparison.baseline_sha[:12]} -> {comparison.candidate_sha[:12]}"
    ]
    if not comparison.scales_match:
        lines.append(
            "note: measurement scales differ — deltas reflect scale, "
            "not code"
        )
    if comparison.identical:
        lines.append("deterministic metrics identical; 0 regressions")
        return "\n".join(lines)
    for key in comparison.only_in_baseline:
        lines.append(f"removed: {key[0]}/{key[1]}")
    for key in comparison.only_in_candidate:
        lines.append(f"added:   {key[0]}/{key[1]}")
    shown = (
        comparison.changed
        if verbose
        else [d for d in comparison.changed if d.regression or d.direction]
    )
    for delta in shown:
        lines.append("  " + delta.describe())
    hidden = len(comparison.changed) - len(shown)
    if hidden > 0:
        lines.append(f"  (+{hidden} neutral metric change(s); use --verbose)")
    lines.append(
        f"{len(comparison.changed)} changed metric(s), "
        f"{len(comparison.regressions)} regression(s)"
    )
    return "\n".join(lines)
