"""Declarative experiment matrix, run artifacts, and perf trajectory.

Every number in the paper comes from a (workload x topology x fault plan
x paradigm) grid.  This package makes that grid a first-class object:

- :mod:`repro.exp.spec` — :class:`ExperimentSpec` declares an experiment
  as a cross-product of axes over workload, cluster topology,
  :class:`FaultPoint` schedules, paradigm/mode, and measurement
  :class:`~repro.bench.harness.Scale`.
- :mod:`repro.exp.runner` — :class:`ExperimentRunner` expands the
  matrix, runs each condition on a fresh seeded simulator, and streams
  lifecycle events to pluggable :class:`~repro.exp.observers.RunObserver`
  hooks (progress, invariant-checker attachment, metrics capture).
- :mod:`repro.exp.drivers` — the condition drivers (raw verbs, the
  controlled paradigm grid, closed-loop KV, the full cluster
  fault/recovery machinery) that the migrated benchmarks share instead
  of re-implementing.
- :mod:`repro.exp.artifact` — the versioned, schema-validated
  ``BENCH_<suite>.json`` run-artifact layer (deterministic metrics
  pinned, host wall times flagged unpinned, git SHA + scale provenance).
- :mod:`repro.exp.trajectory` — ``python -m repro.exp compare A B``
  diffs deterministic metrics across runs/PRs and flags regressions.
- :mod:`repro.exp.suites` — named suites mapping experiment specs to one
  artifact each; ``python -m repro.exp run <suite>`` regenerates it.
"""

from __future__ import annotations

from repro.exp.artifact import deterministic_view, validate_artifact
from repro.exp.library import SPECS
from repro.exp.observers import (
    InvariantObserver,
    MetricsObserver,
    ProgressObserver,
    RunObserver,
)
from repro.exp.runner import (
    ConditionContext,
    ConditionOutcome,
    ExperimentRunner,
    RunResult,
)
from repro.exp.spec import (
    Condition,
    ExperimentSpec,
    FaultPoint,
    Phase,
    Sweep,
    Topology,
    Workload,
)
from repro.exp.suites import SUITES, check_exp_registry, run_suite

__all__ = [
    "Condition",
    "ConditionContext",
    "ConditionOutcome",
    "ExperimentRunner",
    "ExperimentSpec",
    "FaultPoint",
    "InvariantObserver",
    "MetricsObserver",
    "Phase",
    "ProgressObserver",
    "RunObserver",
    "RunResult",
    "SPECS",
    "SUITES",
    "Sweep",
    "Topology",
    "Workload",
    "check_exp_registry",
    "deterministic_view",
    "run_suite",
    "validate_artifact",
]
