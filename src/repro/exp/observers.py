"""Pluggable lifecycle observers for :class:`~repro.exp.runner.ExperimentRunner`.

The runner is deliberately free of progress printing, invariant
checking, and metrics plumbing — those are observers, so tests can swap
them and the CLI can stack them.  Three ship here:

- :class:`ProgressObserver` — one line per condition to a stream.
- :class:`InvariantObserver` — attaches the runtime invariant checkers
  to every tracer a driver publishes and asserts them clean when the
  condition finishes.  It also registers the checkers back into the
  :class:`~repro.exp.runner.ConditionContext` so driver-side audits
  (NIC accounting, durability) can interrogate them.
- :class:`MetricsObserver` — captures the stream of per-condition
  metrics for programmatic consumers.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Dict, List, Optional, TextIO, Tuple

from repro.core.config import RfpConfig
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.harness import Scale
    from repro.exp.runner import ConditionContext, ConditionOutcome, RunResult
    from repro.exp.spec import Condition, ExperimentSpec

__all__ = [
    "InvariantObserver",
    "MetricsObserver",
    "ProgressObserver",
    "RunObserver",
]


class RunObserver:
    """Base observer: every lifecycle hook defaults to a no-op."""

    def run_started(
        self,
        spec: "ExperimentSpec",
        scale: "Scale",
        conditions: Tuple["Condition", ...],
    ) -> None:
        """The matrix has been expanded; nothing has run yet."""

    def condition_started(
        self, context: "ConditionContext", index: int, total: int
    ) -> None:
        """A condition is about to run."""

    def simulator_created(
        self, context: "ConditionContext", sim: Simulator
    ) -> None:
        """The condition's fresh simulator exists (nothing scheduled yet)."""

    def tracer_created(
        self,
        context: "ConditionContext",
        name: str,
        tracer: Tracer,
        kind: str,
        rfp_config: Optional[RfpConfig],
    ) -> None:
        """A driver published a tracer (``kind`` is ``cluster``/``shard``)."""

    def condition_finished(
        self,
        context: "ConditionContext",
        outcome: "ConditionOutcome",
        index: int,
        total: int,
    ) -> None:
        """The condition ran; its metrics are final."""

    def run_finished(self, result: "RunResult") -> None:
        """Every condition has run."""


class ProgressObserver(RunObserver):
    """One progress line per condition (CLI narration)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def run_started(self, spec, scale, conditions) -> None:
        print(
            f"[{spec.experiment_id}] {len(conditions)} condition(s)",
            file=self.stream,
        )

    def condition_finished(self, context, outcome, index, total) -> None:
        mops = outcome.metrics.get("mops")
        note = f" mops={mops}" if mops is not None else ""
        print(
            f"  [{index + 1}/{total}] {outcome.condition.label}"
            f"{note} ({outcome.wall_s:.2f}s)",
            file=self.stream,
        )


class InvariantObserver(RunObserver):
    """Attach protocol/cluster invariant checkers to published tracers."""

    def tracer_created(self, context, name, tracer, kind, rfp_config) -> None:
        # Imported here: repro.lint pulls the full analyzer stack.
        from repro.lint.invariants import (
            ClusterInvariantChecker,
            RfpInvariantChecker,
        )

        if kind == "cluster":
            checker = ClusterInvariantChecker().attach(tracer)
        elif kind == "shard":
            checker = RfpInvariantChecker(
                config=rfp_config if rfp_config is not None else RfpConfig()
            ).attach(tracer)
        else:
            return
        context.register_checker(name, checker)

    def condition_finished(self, context, outcome, index, total) -> None:
        for checker in context.checkers.values():
            checker.assert_clean()


class MetricsObserver(RunObserver):
    """Capture the per-condition metrics stream."""

    def __init__(self) -> None:
        self.captured: List[Tuple[str, Dict[str, object]]] = []

    def condition_finished(self, context, outcome, index, total) -> None:
        self.captured.append(
            (outcome.condition.label, dict(outcome.metrics))
        )
