"""Condition drivers: the measurement machinery behind the matrix.

Each driver runs one :class:`~repro.exp.spec.Condition` to completion on
a fresh simulator obtained through the
:class:`~repro.exp.runner.ConditionContext` and returns its
*deterministic* metrics (simulated-time throughput, event counts, audit
ledgers) — never wall-clock numbers.

Five drivers cover the migrated benchmarks:

- ``raw-verbs`` — the §2.2 microbenchmarks: bare synchronous RDMA
  read/write loops (figs. 3-4).
- ``paradigm`` — the Table 1 design-choice grid: RDTSC-controlled echo
  RPC per paradigm, plus the synthetic server-bypass corner with its
  access amplification.
- ``kv`` — one closed-loop KV run (any registered system) under a YCSB
  workload; the general entry point for future migrations.
- ``cluster`` — the full sharded-cluster machinery the three
  ``ext-cluster-*`` benches used to hand-roll: topology build, optional
  tracing with observer-attached invariant checkers, YCSB or
  acknowledged-write-ledger load, phase meters, a declarative
  :class:`~repro.cluster.faults.FaultPlan`, and the failover/rejoin
  audit suites that raise :class:`~repro.errors.BenchError` on any
  breach (so a clean run *is* the certificate).
- ``txn-structures`` — the ``ext-txn-structures`` crossover: a bounded
  transactional multi-PUT ledger (RF=2, atomicity audited key-by-key
  against every replica) running alongside the twice-built FIFO queue
  (:class:`~repro.cluster.structures.OneSidedQueue` vs
  :class:`~repro.cluster.structures.RfpQueue`), with conservation,
  bypass/NIC, and zero-leaked-lease audits after full quiescence.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bench.calibration import measure_inbound_iops, measure_outbound_iops
from repro.bench.harness import run_controlled_process_time, run_kv
from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    QueueRegion,
    RebalanceConfig,
    RfpCluster,
    RfpQueue,
)
from repro.core.config import RfpConfig
from repro.errors import BenchError, ClusterError, ExpError
from repro.exp.runner import ConditionContext, Driver
from repro.exp.spec import phases_of
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.kv.store import StoreCostModel
from repro.paradigms.server_bypass import SyntheticBypassClient
from repro.sim.monitor import ThroughputMeter
from repro.sim.random import seeded_rng
from repro.sim.trace import Tracer
from repro.workloads.value_sizes import FixedValues
from repro.workloads.ycsb import WorkloadSpec, YcsbWorkload
from repro.workloads.zipf import ZipfSampler, pin_hot_ranks

__all__ = ["DRIVERS"]

_SEQ = struct.Struct("<Q")


# ----------------------------------------------------------------------
# raw-verbs: §2.2 synchronous one-sided loops
# ----------------------------------------------------------------------


def run_raw_verbs(ctx: ConditionContext) -> Mapping[str, object]:
    """Bare in-bound (client reads) or out-bound (server writes) IOPS."""
    condition = ctx.condition
    size = condition.workload.value_bytes
    window = condition.scale.window_us
    if condition.paradigm == "outbound":
        mops = measure_outbound_iops(
            condition.topology.server_threads,
            size=size,
            window_us=window,
            sim=ctx.make_simulator(),
        )
    elif condition.paradigm == "inbound":
        mops = measure_inbound_iops(
            condition.topology.client_threads,
            size=size,
            window_us=window,
            sim=ctx.make_simulator(),
        )
    else:
        raise ExpError(
            f"raw-verbs paradigm must be 'inbound' or 'outbound', "
            f"got {condition.paradigm!r}"
        )
    return {"mops": mops}


# ----------------------------------------------------------------------
# paradigm: the Table 1 grid (controlled echo RPC + bypass corner)
# ----------------------------------------------------------------------

#: Table 1 row -> (controlled-run mode, forced process time or None).
_PARADIGM_MODES = {
    "RFP": ("rfp", None),
    "rfp": ("rfp", None),
    "rfp-no-switch": ("rfp-no-switch", None),
    "server-reply": ("serverreply", None),
    "serverreply": ("serverreply", None),
    # Server bypassed for processing yet replying out-bound: at best it
    # behaves like server-reply with zero process time, i.e. it inherits
    # the out-bound ceiling with no compensation.
    "meaningless": ("serverreply", 0.0),
}


def _run_bypass_corner(ctx: ConditionContext) -> Mapping[str, object]:
    """Server-bypass with k one-sided reads per logical request."""
    condition = ctx.condition
    amplification = int(condition.settings.get("amplification", 3))
    sim = ctx.make_simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    region = cluster.server.register_memory(1 << 20)
    window = condition.scale.window_us
    warmup = window * condition.scale.warmup_fraction
    meter = ThroughputMeter(window_start=warmup, window_end=window)

    def loop(sim, client):
        while True:
            yield from client.request()
            meter.record(sim.now)

    machines = cluster.client_machines
    for index in range(condition.topology.client_threads):
        client = SyntheticBypassClient(
            sim, machines[index % len(machines)], cluster, region, amplification
        )
        sim.process(loop(sim, client))
    sim.run(until=window)
    return {
        "mops": meter.mops(elapsed=window - warmup),
        "operations": meter.completions,
    }


def run_paradigm(ctx: ConditionContext) -> Mapping[str, object]:
    condition = ctx.condition
    if condition.paradigm == "server-bypass":
        return _run_bypass_corner(ctx)
    entry = _PARADIGM_MODES.get(condition.paradigm)
    if entry is None:
        raise ExpError(
            f"unknown paradigm {condition.paradigm!r}; options: "
            f"{sorted(_PARADIGM_MODES) + ['server-bypass']}"
        )
    mode, forced_process_us = entry
    process_us = (
        forced_process_us
        if forced_process_us is not None
        else condition.workload.process_us
    )
    result = run_controlled_process_time(
        mode,
        process_us,
        server_threads=condition.topology.server_threads,
        client_threads=condition.topology.client_threads,
        scale=condition.scale,
        response_bytes=condition.workload.response_bytes,
        sim=ctx.make_simulator(),
    )
    return {
        "mops": result.throughput_mops,
        "operations": result.operations_completed,
        "replies_sent": result.replies_sent,
        "requests_served": result.requests_served,
        "clients_in_reply_mode": result.extras.get("clients_in_reply_mode", 0.0),
    }


# ----------------------------------------------------------------------
# kv: one closed-loop KV run
# ----------------------------------------------------------------------


def run_kv_condition(ctx: ConditionContext) -> Mapping[str, object]:
    condition = ctx.condition
    workload = WorkloadSpec(
        records=condition.workload.resolve_records(condition.scale),
        get_fraction=condition.workload.get_fraction,
        distribution=condition.workload.distribution,
        value_sizes=FixedValues(condition.workload.value_bytes),
        seed=condition.workload.seed,
    )
    result = run_kv(
        condition.paradigm,
        workload,
        server_threads=condition.topology.server_threads,
        client_threads=condition.topology.client_threads,
        scale=condition.scale,
        sim=ctx.make_simulator(),
    )
    return {
        "mops": result.throughput_mops,
        "operations": result.operations_completed,
        "mean_latency_us": result.mean_latency(),
        "p99_latency_us": result.percentile_latency(99),
        "client_cpu_utilization": result.client_cpu_utilization,
    }


# ----------------------------------------------------------------------
# cluster: sharded RfpCluster with phases, faults, and audits
# ----------------------------------------------------------------------


@dataclass
class _ClusterRun:
    """Everything the audit suites interrogate after the window closes."""

    ctx: ConditionContext
    service: RfpCluster
    plan: Optional[FaultPlan]
    victim: Optional[str]
    acked: Dict[bytes, int]
    pre_crash_ring: List[str]
    phase_mops: Dict[str, float]
    phase_bounds: Dict[str, Tuple[float, float]]
    replication_factor: int

    def checker(self, name: str):
        checker = self.ctx.checkers.get(name)
        if checker is None:
            raise ExpError(
                f"audit needs the {name!r} invariant checker — run under "
                "an InvariantObserver (repro.exp.runner.default_observers)"
            )
        return checker


def _seq_value(sequence: int, value_bytes: int) -> bytes:
    return _SEQ.pack(sequence) + b"\x00" * (value_bytes - _SEQ.size)


def _stored_seq(value: bytes) -> int:
    return _SEQ.unpack_from(value)[0]


def _ledger_workload(
    records: int, clients: int
) -> Tuple[List[bytes], Dict[int, List[bytes]]]:
    """All keys, plus each client's disjoint set of *write* keys.

    Disjoint write ownership makes the acknowledged-write ledger exact:
    per key, the owner's latest acked sequence number is the durability
    obligation, with no cross-client ordering to reason about.
    """
    keys = [f"key{i:06d}".encode() for i in range(records)]
    per_client = max(1, records // clients)
    owned = {
        c: keys[c * per_client : (c + 1) * per_client] for c in range(clients)
    }
    return keys, owned


def run_cluster(ctx: ConditionContext) -> Mapping[str, object]:
    condition = ctx.condition
    topology = condition.topology
    workload = condition.workload
    scale = condition.scale
    settings = condition.settings
    window = scale.window_us
    phases = phases_of(condition)
    audit = settings.get("audit")
    if audit not in (None, "failover", "rejoin", "rebalance"):
        raise ExpError(f"unknown cluster audit {audit!r}")

    sim = ctx.make_simulator()
    cluster_spec = ClusterSpec(
        machine=CLUSTER_EUROSYS17.machine,
        machines=topology.machines,
        switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
    )
    cluster = build_cluster(sim, cluster_spec)

    slow_calls = settings.get("consecutive_slow_calls")
    rfp_config = (
        RfpConfig(consecutive_slow_calls=int(slow_calls))
        if slow_calls is not None
        else None
    )
    cluster_tracer = None
    shard_tracers = None
    if settings.get("tracing", False):
        cluster_tracer = ctx.publish_tracer(
            "cluster", Tracer(sim, categories=["cluster"]), "cluster"
        )
        shard_tracers = {
            f"shard{i}": ctx.publish_tracer(
                f"shard{i}",
                Tracer(sim, capacity=1),
                "shard",
                rfp_config=RfpConfig(consecutive_slow_calls=int(slow_calls))
                if slow_calls is not None
                else None,
            )
            for i in range(topology.shards)
        }
    config_kwargs: Dict[str, object] = {
        "replication_factor": topology.replication_factor
    }
    if settings.get("op_timeout_us") is not None:
        config_kwargs["op_timeout_us"] = float(settings["op_timeout_us"])
    service = RfpCluster(
        sim,
        cluster,
        shards=topology.shards,
        server_threads=topology.server_threads,
        rfp_config=rfp_config,
        cost_model=StoreCostModel(jitter_probability=0.0)
        if settings.get("zero_jitter", False)
        else None,
        cluster_config=ClusterConfig(**config_kwargs),  # type: ignore[arg-type]
        tracer=cluster_tracer,
        shard_tracers=shard_tracers,
    )

    records = workload.resolve_records(scale)
    acked: Dict[bytes, int] = {}
    meters = [
        ThroughputMeter(
            window_start=window * phase.start_frac,
            window_end=window * phase.end_frac,
            name=phase.name,
        )
        for phase in phases
    ]

    if workload.kind == "ycsb":
        generator = YcsbWorkload(
            WorkloadSpec(
                records=records,
                get_fraction=workload.get_fraction,
                distribution=workload.distribution,
                value_sizes=FixedValues(workload.value_bytes),
                seed=workload.seed,
            )
        )
        service.preload(generator.dataset())

        def make_loop(client, client_id: int):
            operations = generator.operations(f"c{client_id}")

            def loop(sim, client, operations):
                for op in operations:
                    if op.is_get:
                        yield from client.get(op.key)
                    else:
                        yield from client.put(op.key, op.value)
                    now = sim.now
                    for meter in meters:
                        meter.record(now)

            return loop(sim, client, operations)

    elif workload.kind == "ledger":
        keys, owned_writes = _ledger_workload(records, topology.client_threads)
        value_bytes = workload.value_bytes
        put_every = workload.put_every
        service.preload([(key, _seq_value(0, value_bytes)) for key in keys])

        # The skew scenario (rebalance bench): GETs draw Zipf *ranks*,
        # and the rank->key table is rotated so the hottest ranks all
        # live on one shard.  Writes keep their disjoint uniform
        # ownership, so the durability ledger is unchanged.
        hot_shard = settings.get("hot_shard")
        if hot_shard is not None:
            get_keys = pin_hot_ranks(
                keys,
                service.ring.lookup,
                str(hot_shard),
                int(settings.get("hot_ranks", 16)),
            )
            sampler: Optional[ZipfSampler] = ZipfSampler(
                len(keys), float(settings.get("zipf_exponent", 0.99))
            )
        else:
            get_keys = keys
            sampler = None

        def make_loop(client, client_id: int):
            def loop(sim, client, client_id):
                rng = seeded_rng(client_id)
                my_keys = owned_writes[client_id]
                sequence = 0
                while True:
                    turn = sequence % put_every
                    if turn == put_every - 1:
                        key = my_keys[(sequence // put_every) % len(my_keys)]
                        sequence += 1
                        yield from client.put(key, _seq_value(sequence, value_bytes))
                        acked[key] = max(acked.get(key, 0), sequence)
                    else:
                        sequence += 1
                        if sampler is not None:
                            key = get_keys[int(sampler.sample(rng, 1)[0])]
                        else:
                            key = keys[int(rng.integers(len(keys)))]
                        yield from client.get(key)
                    now = sim.now
                    for meter in meters:
                        meter.record(now)

            return loop(sim, client, client_id)

    else:
        raise ExpError(
            f"cluster driver workload kind must be 'ycsb' or 'ledger', "
            f"got {workload.kind!r}"
        )

    pre_crash_ring = list(service.ring.nodes)
    slot_start = (
        topology.client_slot_start
        if topology.client_slot_start is not None
        else topology.shards
    )
    span = topology.machines - slot_start
    for index in range(topology.client_threads):
        machine = cluster.machines[slot_start + index % span]
        client = service.connect(machine, name=f"c{index}")
        sim.process(make_loop(client, index))

    plan: Optional[FaultPlan] = None
    victim: Optional[str] = None
    if condition.faults:
        plan = FaultPlan([point.resolve(window) for point in condition.faults])
        plan.arm(sim, service)
        victim = condition.faults[0].shard

    if settings.get("rebalance"):
        # Start the load-aware controller after the pre phase has
        # established the skewed baseline, and stop it before the post
        # phase so the measured steady state is migration-free.
        rebalancer_box: List[object] = []

        def _start_rebalancer() -> None:
            threshold = settings.get("rebalance_threshold")
            config = (
                RebalanceConfig(imbalance_threshold=float(threshold))
                if threshold is not None
                else None
            )
            rebalancer_box.append(service.start_rebalancer(config))

        sim.schedule(
            window * float(settings.get("rebalance_start_frac", 0.25)),
            _start_rebalancer,
        )
        stop_frac = settings.get("rebalance_stop_frac")
        if stop_frac is not None:

            def _stop_rebalancer() -> None:
                for controller in rebalancer_box:
                    controller.stop()

            sim.schedule(window * float(stop_frac), _stop_rebalancer)
    sim.run(until=window)

    phase_mops: Dict[str, float] = {}
    phase_bounds: Dict[str, Tuple[float, float]] = {}
    metrics: Dict[str, object] = {}
    for phase, meter in zip(phases, meters):
        start = window * phase.start_frac
        end = window * phase.end_frac
        mops = meter.mops(elapsed=end - start)
        phase_mops[phase.name] = mops
        phase_bounds[phase.name] = (start, end)
        metrics[f"{phase.name}_mops"] = mops
    metrics["dispatched"] = sim.dispatched

    if audit is not None:
        state = _ClusterRun(
            ctx=ctx,
            service=service,
            plan=plan,
            victim=victim,
            acked=acked,
            pre_crash_ring=pre_crash_ring,
            phase_mops=phase_mops,
            phase_bounds=phase_bounds,
            replication_factor=topology.replication_factor,
        )
        if audit == "failover":
            metrics.update(_audit_failover(state))
        elif audit == "rejoin":
            metrics.update(_audit_rejoin(state))
        else:
            metrics.update(_audit_rebalance(state))
    return metrics


def _lost_on_surviving_replica(state: _ClusterRun) -> int:
    """Acked writes unreadable from *every* surviving replica."""
    lost = 0
    for key, sequence in state.acked.items():
        stored = max(
            _stored_seq(
                state.service.peek(name, key) or _seq_value(0, 8)
            )
            for name in state.service.ring.lookup_replicas(
                key, state.replication_factor
            )
        )
        if stored < sequence:
            lost += 1
    return lost


def _audit_failover(state: _ClusterRun) -> Dict[str, object]:
    """The ``ext-cluster-failover`` claims: zero lost acked writes,
    exactly one failover, protocol + NIC-silence invariants everywhere."""
    service = state.service
    lost = _lost_on_surviving_replica(state)
    state.checker("cluster").assert_clean()
    failed_over = {event.shard for event in service.failover.events}
    if failed_over != {state.victim}:
        raise BenchError(
            f"expected exactly one failover of {state.victim}: {failed_over}"
        )
    for name in service.shards:
        checker = state.checker(name)
        handle = service.shards[name]
        # Every shard — dead included — must have stayed in-bound-only:
        # healthy shards because no client ever degraded them, the dead
        # one because a halted server cannot push replies.  Exact
        # in-bound matching is off because the open-loop clients leave
        # posted-but-unserved ops in the NIC pipeline at the window cut.
        checker.check_nic_accounting(
            handle.jakiro.server, expect_inbound_only=True, strict_inbound=False
        )
        checker.assert_clean()
    if lost:
        raise BenchError(f"{lost} acknowledged writes lost across failover")
    return {"lost_acked_writes": lost, "acked_keys": len(state.acked)}


def _audit_rejoin(state: _ClusterRun) -> Dict[str, object]:
    """The ``ext-cluster-rejoin`` claims: completed watermarked handoff
    restoring the pre-crash ring before the post window, per-replica
    durability, donors in-bound-only, rejoiner out-bound = its ranged
    reads, and post-rejoin throughput within 5% of pre-crash."""
    service = state.service
    plan = state.plan
    if plan is None or len(plan.recoveries) != 1:
        raise BenchError(
            f"expected exactly one recovery: "
            f"{plan.recoveries if plan else 'no fault plan'}"
        )
    recovery = plan.recoveries[0]
    if recovery.active or recovery.aborted:
        raise BenchError(f"recovery of {state.victim} did not complete: {recovery!r}")
    handoff_at = recovery.event.finished_at_us
    post_start = state.phase_bounds["post"][0]
    if handoff_at is None or handoff_at >= post_start:
        raise BenchError(
            f"handoff at {handoff_at} missed the post window ({post_start})"
        )
    if service.ring.nodes != state.pre_crash_ring:
        raise BenchError(
            f"rejoin did not restore the pre-crash ring: "
            f"{service.ring.nodes} != {state.pre_crash_ring}"
        )
    # Zero lost acked writes, *per replica*: every key's latest acked
    # sequence must be readable from every final-ring replica, the
    # rejoined shard included (no stale reads below the watermark).
    lost = 0
    for key, sequence in state.acked.items():
        for name in service.ring.lookup_replicas(key, state.replication_factor):
            stored = _stored_seq(service.peek(name, key) or _seq_value(0, 8))
            if stored < sequence:
                lost += 1
    state.checker("cluster").assert_clean()
    for name in service.shards:
        checker = state.checker(name)
        handle = service.shards[name]
        if name == state.victim:
            # The rejoiner's only out-bound verbs are its ranged-read
            # requests — one per transfer batch.
            outbound = handle.machine.rnic.outbound_ops
            if outbound != recovery.event.batches:
                raise BenchError(
                    f"rejoiner posted {outbound} out-bound ops; expected "
                    f"{recovery.event.batches} ranged reads"
                )
        else:
            # Donors served the transfer stream *in-bound*, alongside
            # live traffic: the paper's server NIC profile survives
            # recovery.
            checker.check_nic_accounting(
                handle.jakiro.server, expect_inbound_only=True, strict_inbound=False
            )
        checker.assert_clean()
    if lost:
        raise BenchError(f"{lost} acknowledged writes lost across the cycle")
    pre_mops = state.phase_mops["pre"]
    post_mops = state.phase_mops["post"]
    if post_mops < 0.95 * pre_mops:
        raise BenchError(
            f"post-rejoin throughput {post_mops:.3f} MOPS fell below "
            f"95% of pre-crash {pre_mops:.3f} MOPS"
        )
    return {
        "lost_acked_writes": lost,
        "acked_keys": len(state.acked),
        "handoff_at_us": handoff_at,
        "transferred_keys": recovery.event.transferred_keys,
        "catchup_keys": recovery.event.catchup_keys,
        "batches": recovery.event.batches,
    }


def _audit_rebalance(state: _ClusterRun) -> Dict[str, object]:
    """The ``ext-cluster-rebalance`` claims: every launched vnode
    migration cut over cleanly before the window closed, zero lost
    acked writes under live migration, donors in-bound-only throughout
    (each shard's only out-bound verbs are the ranged reads of the
    migrations *it received*), and the baseline condition moved
    nothing — so the throughput delta is attributable to the moves."""
    service = state.service
    enabled = bool(state.ctx.condition.settings.get("rebalance", False))
    state.checker("cluster").assert_clean()
    if service.active_migrations:
        raise BenchError(
            f"migrations still active at the window cut: "
            f"{[m.migration_key for m in service.active_migrations]}"
        )
    migrations = list(service.migrations)
    for migration in migrations:
        if migration.active or migration.aborted:
            raise BenchError(
                f"vnode migration {migration.migration_key} did not "
                f"complete cleanly: {migration.event!r}"
            )
    if enabled and not migrations:
        raise BenchError("rebalancing enabled but no vnode migration ran")
    if not enabled and migrations:
        raise BenchError(
            f"baseline run unexpectedly migrated vnodes: {len(migrations)}"
        )
    lost = _lost_on_surviving_replica(state)
    pulled: Dict[str, int] = {}
    for migration in migrations:
        pulled[migration.shard] = (
            pulled.get(migration.shard, 0) + migration.event.batches
        )
    for name in service.shards:
        checker = state.checker(name)
        handle = service.shards[name]
        # Recipients pull; everyone else — donors under live load
        # included — must never post an out-bound verb.
        outbound = handle.machine.rnic.outbound_ops
        expected = pulled.get(name, 0)
        if outbound != expected:
            raise BenchError(
                f"shard {name} posted {outbound} out-bound ops; expected "
                f"{expected} ranged reads (donors stay in-bound-only)"
            )
        if expected == 0:
            checker.check_nic_accounting(
                handle.jakiro.server, expect_inbound_only=True, strict_inbound=False
            )
        checker.assert_clean()
    if lost:
        raise BenchError(f"{lost} acknowledged writes lost across the moves")
    return {
        "lost_acked_writes": lost,
        "acked_keys": len(state.acked),
        "migrations": len(migrations),
        "moved_vnodes": sum(len(m.tokens) for m in migrations),
        "migrated_keys": sum(m.event.transferred_keys for m in migrations),
        "catchup_keys": sum(m.event.catchup_keys for m in migrations),
    }


# ----------------------------------------------------------------------
# txn-structures: multi-key transactions + the twice-built FIFO queue
# ----------------------------------------------------------------------


def run_txn_structures(ctx: ConditionContext) -> Mapping[str, object]:
    """One ``ext-txn-structures`` condition: bounded work, exact audits.

    Unlike the open-loop cluster driver, every client here runs a
    *bounded* script and the run must quiesce before the window closes.
    That buys exact end-state audits with no window-cut races: every
    acked multi-PUT sequence is the stored value on every replica
    (zero partially-applied transactions, zero lost acked writes),
    every enqueued item is dequeued exactly once (conservation), the
    queue host posts zero out-bound verbs (both builds), and zero lock
    leases survive the run.
    """
    condition = ctx.condition
    topology = condition.topology
    scale = condition.scale
    settings = condition.settings
    window = scale.window_us

    structure = str(settings.get("structure", "one-sided"))
    if structure not in ("one-sided", "rfp"):
        raise ExpError(
            f"txn-structures structure must be 'one-sided' or 'rfp', "
            f"got {structure!r}"
        )
    queue_clients = int(settings.get("queue_clients", 4))
    if queue_clients < 2:
        raise ExpError("txn-structures needs >= 2 queue clients (1 per role)")
    producers = queue_clients // 2
    consumers = queue_clients - producers
    # Total queue items: enough to expose CAS-contention amplification,
    # few enough that the slowest condition still drains well inside the
    # window (quiescence is asserted below).
    total_items = int(settings.get("queue_items", 192)) * (4 if scale.full else 1)

    sim = ctx.make_simulator()
    cluster_spec = ClusterSpec(
        machine=CLUSTER_EUROSYS17.machine,
        machines=topology.machines,
        switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
    )
    cluster = build_cluster(sim, cluster_spec)
    cluster_tracer = ctx.publish_tracer(
        "cluster", Tracer(sim, categories=["cluster"]), "cluster"
    )
    # No faults in this experiment: an astronomically high slow-call
    # threshold keeps the hybrid rule from degrading merely-busy shards,
    # so the in-bound-only NIC audits stay exact.
    quiet = RfpConfig(consecutive_slow_calls=1_000_000)
    service = RfpCluster(
        sim,
        cluster,
        shards=topology.shards,
        rfp_config=quiet,
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(
            replication_factor=topology.replication_factor
        ),
        tracer=cluster_tracer,
    )

    # --- transactional ledger: disjoint groups + one contended group ---
    value_bytes = condition.workload.value_bytes
    txn_clients = topology.client_threads
    group_count = int(settings.get("txn_groups", 8))
    keys_per_group = int(settings.get("group_keys", 3))
    txn_rounds = int(settings.get("txn_rounds", 32))
    group_keys = [
        [b"txng%02d-%02d" % (group, item) for item in range(keys_per_group)]
        for group in range(group_count)
    ]
    for keys in group_keys:
        service.preload([(key, _seq_value(0, value_bytes)) for key in keys])
    shared_group = group_count - 1
    acked: Dict[int, set] = {group: {0} for group in range(group_count)}
    expected_final: Dict[int, int] = {group: 0 for group in range(group_count)}
    finished: List[str] = []
    done_box: Dict[str, float] = {"txn": 0.0, "queue": 0.0}

    def txn_loop(client, client_id: int):
        # Disjoint ownership by residue, plus clients 0 and 1 both
        # writing the shared group — genuine cross-client lock
        # contention on the headline path.
        my_groups = [
            group
            for group in range(group_count)
            if group % txn_clients == client_id
        ]
        if client_id in (0, 1) and shared_group not in my_groups:
            my_groups.append(shared_group)
        base = (client_id + 1) * 1_000_000
        for round_no in range(txn_rounds):
            group = my_groups[round_no % len(my_groups)]
            sequence = base + round_no + 1
            try:
                yield from client.multi_put(
                    [
                        (key, _seq_value(sequence, value_bytes))
                        for key in group_keys[group]
                    ]
                )
            except ClusterError:
                continue  # lock-contention abort: provably no effect
            acked[group].add(sequence)
            if group != shared_group:
                expected_final[group] = sequence
        finished.append(f"txn{client_id}")
        done_box["txn"] = max(done_box["txn"], sim.now)

    slot_start = (
        topology.client_slot_start
        if topology.client_slot_start is not None
        else topology.shards + 1
    )
    for client_id in range(txn_clients):
        machine = cluster.machines[slot_start + client_id % txn_clients]
        client = service.connect(machine, name=f"t{client_id}")
        sim.process(txn_loop(client, client_id))

    # --- the twice-built FIFO queue ---------------------------------
    host_machine = cluster.machines[topology.shards]
    item_bytes = int(settings.get("queue_item_bytes", 16))
    if structure == "one-sided":
        region = QueueRegion(
            sim,
            cluster,
            machine=host_machine,
            capacity=int(settings.get("queue_capacity", 1 << 17)),
            max_item_bytes=item_bytes,
        )
        connect_queue = region.connect
        queue_residue = lambda: region.snapshot()[1] - region.snapshot()[0]
    else:
        rfp_queue = RfpQueue(sim, cluster, machine=host_machine, config=quiet)
        connect_queue = rfp_queue.connect
        queue_residue = lambda: len(rfp_queue.items)

    queue_slot = slot_start + txn_clients
    queue_span = topology.machines - queue_slot
    queue_handles = [
        connect_queue(
            cluster.machines[queue_slot + index % queue_span], name=f"q{index}"
        )
        for index in range(queue_clients)
    ]
    per_producer = [
        total_items // producers + (1 if p < total_items % producers else 0)
        for p in range(producers)
    ]
    enqueued: List[bytes] = []
    dequeued: List[bytes] = []
    drained = {"count": 0}
    backoff_us = float(settings.get("empty_backoff_us", 2.0))

    def produce(queue, producer_id: int, count: int):
        for item_no in range(count):
            item = b"%02d:%08d" % (producer_id, item_no)
            yield from queue.enqueue(item)
            enqueued.append(item)
        finished.append(f"prod{producer_id}")
        done_box["queue"] = max(done_box["queue"], sim.now)

    def consume(queue, consumer_id: int):
        while drained["count"] < total_items:
            value = yield from queue.dequeue()
            if value is None:
                yield sim.timeout(backoff_us)
            else:
                drained["count"] += 1
                dequeued.append(value)
        finished.append(f"cons{consumer_id}")
        done_box["queue"] = max(done_box["queue"], sim.now)

    for producer_id in range(producers):
        sim.process(
            produce(
                queue_handles[producer_id],
                producer_id,
                per_producer[producer_id],
            )
        )
    for consumer_id in range(consumers):
        sim.process(consume(queue_handles[producers + consumer_id], consumer_id))

    sim.run(until=window)

    # --- quiescence, then exact audits ------------------------------
    expected_done = txn_clients + producers + consumers
    if len(finished) != expected_done:
        raise BenchError(
            f"run did not quiesce inside the {window}us window: "
            f"{len(finished)}/{expected_done} client scripts finished "
            f"({sorted(finished)})"
        )
    checker = ctx.checkers.get("cluster")
    if checker is None:
        raise ExpError(
            "txn-structures audit needs the 'cluster' invariant checker — "
            "run under an InvariantObserver (repro.exp.runner.default_observers)"
        )
    checker.assert_clean()
    # Quiesced run: every transaction closed, so any surviving lease is
    # a leak (the conftest gate's rule, enforced in the bench too).
    checker.assert_no_leaked_leases()

    torn_groups = 0
    lost_acked = 0
    for group, keys in enumerate(group_keys):
        stored = {
            service.peek(shard, key)
            for key in keys
            for shard in service.replicas_for(key)
        }
        if len(stored) != 1:
            torn_groups += 1
            continue
        (value,) = stored
        sequence = _stored_seq(value)
        if sequence not in acked[group]:
            lost_acked += 1
        elif group != shared_group and sequence != expected_final[group]:
            lost_acked += 1
    if torn_groups:
        raise BenchError(
            f"{torn_groups} key groups are torn across keys/replicas — "
            "a partially-applied multi-PUT escaped"
        )
    if lost_acked:
        raise BenchError(
            f"{lost_acked} key groups do not hold their last acked "
            "transaction's value"
        )

    residue = queue_residue()
    if sorted(dequeued) != sorted(enqueued) or residue != 0:
        raise BenchError(
            f"queue conservation broken: {len(enqueued)} enqueued, "
            f"{len(dequeued)} dequeued, {residue} left in the ring"
        )
    # The bypass claim (one-sided) and the §3.2 in-bound-reply claim
    # (RFP) agree on the observable: the host NIC posts nothing.
    host_outbound = host_machine.rnic.outbound_ops
    if host_outbound != 0:
        raise BenchError(
            f"queue host posted {host_outbound} out-bound verbs; both "
            "builds must keep the host NIC in-bound-only"
        )

    queue_ops = sum(handle.stats.ops for handle in queue_handles)
    remote_ops = sum(
        handle.stats.remote_ops.value for handle in queue_handles
    )
    committed = service.txns.committed
    queue_done = done_box["queue"]
    txn_done = done_box["txn"]
    return {
        "queue_mops": 2 * total_items / max(queue_done, 1e-9),
        "queue_done_us": queue_done,
        "queue_items": total_items,
        "queue_ops": queue_ops,
        "queue_remote_ops": remote_ops,
        "remote_ops_per_op": remote_ops / max(queue_ops, 1),
        "cas_retries": sum(
            handle.stats.cas_retries.value for handle in queue_handles
        ),
        "ready_polls": sum(
            handle.stats.ready_polls.value for handle in queue_handles
        ),
        "empty_polls": sum(
            handle.stats.empties.value for handle in queue_handles
        ),
        "txn_mops": committed / max(txn_done, 1e-9),
        "txn_committed": committed,
        "txn_aborted": service.txns.aborted,
        "torn_groups": torn_groups,
        "lost_acked_writes": lost_acked,
        "acked_groups": group_count,
        "dispatched": sim.dispatched,
    }


DRIVERS: Dict[str, Driver] = {
    "raw-verbs": run_raw_verbs,
    "paradigm": run_paradigm,
    "kv": run_kv_condition,
    "cluster": run_cluster,
    "txn-structures": run_txn_structures,
}
