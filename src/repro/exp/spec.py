"""Declarative experiment specs: conditions as a cross-product grid.

An :class:`ExperimentSpec` names a driver plus a ``base`` settings
mapping and ``axes`` — each axis a sequence of values (or a
:class:`Sweep` that picks its granularity from the measurement
:class:`~repro.bench.harness.Scale`).  :meth:`ExperimentSpec.expand`
takes the cross-product of the axes over the base and materializes one
frozen :class:`Condition` per point, routing every setting into its
typed dimension: :class:`Workload`, :class:`Topology`, the
:class:`FaultPoint` schedule, the paradigm string, and the scale.
Anything the router does not recognize lands in ``Condition.settings``
for the driver (phase layout, audit selection, ...).

Fault times and measurement phases are declared as *fractions* of the
measurement window, so the same spec runs unchanged at fast and full
scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.bench.harness import Scale
from repro.cluster.faults import Fault
from repro.errors import ExpError

__all__ = [
    "Condition",
    "ExperimentSpec",
    "FaultPoint",
    "Phase",
    "Sweep",
    "Topology",
    "Workload",
]


@dataclass(frozen=True)
class Sweep:
    """An axis whose granularity depends on the measurement scale."""

    fast: Tuple[object, ...]
    full: Tuple[object, ...]

    def resolve(self, scale: Scale) -> Tuple[object, ...]:
        return self.full if scale.full else self.fast


@dataclass(frozen=True)
class FaultPoint:
    """A scripted fault at a *fraction* of the measurement window."""

    at_frac: float
    action: str
    shard: str

    def resolve(self, window_us: float) -> Fault:
        return Fault(window_us * self.at_frac, self.action, self.shard)


@dataclass(frozen=True)
class Phase:
    """One measurement phase: ``[start_frac, end_frac)`` of the window."""

    name: str
    start_frac: float
    end_frac: float


@dataclass(frozen=True)
class Workload:
    """The offered-load dimension of a condition.

    ``kind`` selects the driver-side load generator: ``"ycsb"`` (finite
    GET/PUT streams from :class:`~repro.workloads.ycsb.YcsbWorkload`),
    ``"ledger"`` (the cluster benches' infinite loop with disjoint write
    ownership and an acknowledged-write ledger for durability audits),
    ``"echo"`` (the RDTSC-controlled process-time RPC), or
    ``"raw-verbs"`` (bare synchronous RDMA read/write loops).
    """

    kind: str = "ycsb"
    #: ``None`` means "use ``scale.records``".
    records: Optional[int] = None
    #: Upper bound applied after resolution (audited ledgers stay small
    #: enough to check exhaustively at any scale).
    records_cap: Optional[int] = None
    get_fraction: float = 0.95
    value_bytes: int = 32
    distribution: str = "uniform"
    seed: int = 42
    #: echo only: exact server-side process time per request.
    process_us: float = 0.0
    #: echo only: reply payload size.
    response_bytes: int = 32
    #: ledger only: one PUT every ``put_every`` operations.
    put_every: int = 4

    def resolve_records(self, scale: Scale) -> int:
        records = self.records if self.records is not None else scale.records
        if self.records_cap is not None:
            records = min(records, self.records_cap)
        return records


@dataclass(frozen=True)
class Topology:
    """The cluster-shape dimension of a condition."""

    machines: int = 8
    shards: int = 1
    replication_factor: int = 1
    server_threads: int = 6
    client_threads: int = 35
    #: First machine index clients occupy (cluster driver).  ``None``
    #: means "right after the shards"; a fixed value keeps client
    #: placement identical across a shard-count sweep.
    client_slot_start: Optional[int] = None


_WORKLOAD_FIELDS = {f.name for f in fields(Workload)}
_TOPOLOGY_FIELDS = {f.name for f in fields(Topology)}
_RESERVED = {"paradigm", "faults"}


@dataclass(frozen=True)
class Condition:
    """One fully-materialized point of the matrix."""

    experiment_id: str
    label: str
    paradigm: str
    workload: Workload
    topology: Topology
    faults: Tuple[FaultPoint, ...]
    scale: Scale
    #: The axis coordinates that produced this condition.
    axis: Mapping[str, object] = field(default_factory=dict)
    #: Driver-specific residue (phases, audits, timeouts, ...).
    settings: Mapping[str, object] = field(default_factory=dict)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly record of the condition for artifacts."""
        return {
            "paradigm": self.paradigm,
            "workload": {
                "kind": self.workload.kind,
                "records": self.workload.resolve_records(self.scale),
                "get_fraction": self.workload.get_fraction,
                "value_bytes": self.workload.value_bytes,
                "distribution": self.workload.distribution,
                "seed": self.workload.seed,
            },
            "topology": {
                "machines": self.topology.machines,
                "shards": self.topology.shards,
                "replication_factor": self.topology.replication_factor,
                "server_threads": self.topology.server_threads,
                "client_threads": self.topology.client_threads,
            },
            "faults": [
                {"at_frac": f.at_frac, "action": f.action, "shard": f.shard}
                for f in self.faults
            ],
            "axis": dict(self.axis),
        }


def _route(
    experiment_id: str,
    label: str,
    merged: Mapping[str, object],
    axis: Mapping[str, object],
    scale: Scale,
) -> Condition:
    """Split a flat settings mapping into the condition's dimensions."""
    workload_kwargs: Dict[str, object] = {}
    topology_kwargs: Dict[str, object] = {}
    settings: Dict[str, object] = {}
    paradigm = "default"
    faults: Tuple[FaultPoint, ...] = ()
    for key, value in merged.items():
        if key == "paradigm":
            paradigm = str(value)
        elif key == "faults":
            faults = tuple(value)  # type: ignore[arg-type]
        elif key in _WORKLOAD_FIELDS:
            workload_kwargs[key] = value
        elif key in _TOPOLOGY_FIELDS:
            topology_kwargs[key] = value
        else:
            settings[key] = value
    for point in faults:
        if not isinstance(point, FaultPoint):
            raise ExpError(
                f"{experiment_id}: faults must be FaultPoint instances, "
                f"got {point!r}"
            )
        if not 0.0 < point.at_frac < 1.0:
            raise ExpError(
                f"{experiment_id}: fault fraction {point.at_frac} outside "
                "(0, 1) — faults are declared relative to the window"
            )
    return Condition(
        experiment_id=experiment_id,
        label=label,
        paradigm=paradigm,
        workload=Workload(**workload_kwargs),  # type: ignore[arg-type]
        topology=Topology(**topology_kwargs),  # type: ignore[arg-type]
        faults=faults,
        scale=scale,
        axis=dict(axis),
        settings=settings,
    )


def _axis_label(axis: Mapping[str, object]) -> str:
    if not axis:
        return "base"
    return ",".join(f"{key}={value}" for key, value in axis.items())


AxisValues = Union[Sweep, Sequence[object]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One declared experiment: a driver plus its condition matrix."""

    experiment_id: str
    title: str
    driver: str
    base: Mapping[str, object] = field(default_factory=dict)
    #: Axis name -> values; the cross-product (in declaration order)
    #: over ``base`` yields the condition grid.
    axes: Mapping[str, AxisValues] = field(default_factory=dict)
    #: Off-grid conditions appended after the cross-product (e.g. the
    #: single in-bound-peak measurement fig. 3 pairs with its sweep).
    extras: Tuple[Mapping[str, object], ...] = ()
    #: Axis names that are driver-read knobs rather than workload or
    #: topology fields; they route into ``Condition.settings`` like any
    #: unrecognized base key, but declaring them here lets the spec
    #: sweep them (e.g. ``rebalance`` on/off) without tripping the
    #: unknown-axis guard below.
    setting_axes: Tuple[str, ...] = ()
    paper_expectation: str = ""

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExpError("experiment_id must be non-empty")
        if not self.driver:
            raise ExpError(f"{self.experiment_id}: driver must be non-empty")
        for name in self.axes:
            if name in self.setting_axes:
                continue
            if name in _RESERVED or name in _WORKLOAD_FIELDS | _TOPOLOGY_FIELDS:
                continue
            # Unrecognized axis names would silently sweep a setting no
            # driver reads; fail at declaration time instead.
            raise ExpError(
                f"{self.experiment_id}: axis {name!r} is not a workload, "
                "topology, paradigm, or faults dimension"
            )

    def expand(self, scale: Scale) -> Tuple[Condition, ...]:
        """Materialize the condition grid for one measurement scale."""
        names = list(self.axes)
        value_lists = []
        for name in names:
            values = self.axes[name]
            resolved = (
                values.resolve(scale)
                if isinstance(values, Sweep)
                else tuple(values)
            )
            if not resolved:
                raise ExpError(f"{self.experiment_id}: axis {name!r} is empty")
            value_lists.append(resolved)
        conditions = []
        seen = set()
        for point in itertools.product(*value_lists) if names else [()]:
            axis = dict(zip(names, point))
            merged = dict(self.base)
            merged.update(axis)
            label = _axis_label(axis)
            conditions.append(
                _route(self.experiment_id, label, merged, axis, scale)
            )
        for extra in self.extras:
            merged = dict(self.base)
            merged.update(extra)
            axis = {
                key: value
                for key, value in extra.items()
                if key in _RESERVED | _WORKLOAD_FIELDS | _TOPOLOGY_FIELDS
            }
            conditions.append(
                _route(self.experiment_id, _axis_label(axis), merged, axis, scale)
            )
        for condition in conditions:
            if condition.label in seen:
                raise ExpError(
                    f"{self.experiment_id}: duplicate condition label "
                    f"{condition.label!r}"
                )
            seen.add(condition.label)
        if not conditions:
            raise ExpError(f"{self.experiment_id}: spec expands to no conditions")
        return tuple(conditions)


def phases_of(condition: Condition) -> Tuple[Phase, ...]:
    """The condition's measurement phases (default: one post-warmup one)."""
    declared = condition.settings.get("phases")
    if declared:
        phases = tuple(declared)  # type: ignore[arg-type]
    else:
        phases = (Phase("run", condition.scale.warmup_fraction, 1.0),)
    last = 0.0
    for phase in phases:
        if not (0.0 <= phase.start_frac < phase.end_frac <= 1.0):
            raise ExpError(
                f"{condition.experiment_id}: phase {phase.name!r} bounds "
                f"({phase.start_frac}, {phase.end_frac}) invalid"
            )
        if phase.start_frac < last:
            raise ExpError(
                f"{condition.experiment_id}: phases must not overlap; "
                f"{phase.name!r} starts before the previous phase ends"
            )
        last = phase.end_frac
    return phases
