"""``python -m repro.exp`` — run suites, list the registry, compare runs.

Exit codes follow the convention trajectory tooling scripts against:
``0`` success (and, for ``compare``, zero regressions), ``1`` a clean
comparison that found regressions, ``2`` any usage or artifact error
(unknown suite, malformed artifact, mismatched schemas) — reported as
one clear line on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.harness import Scale
from repro.errors import ReproError
from repro.exp.artifact import load_payload
from repro.exp.library import SPECS
from repro.exp.observers import ProgressObserver
from repro.exp.runner import default_observers
from repro.exp.suites import SUITES, run_suite
from repro.exp.trajectory import compare_payloads, format_comparison

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="declarative experiment suites and perf trajectory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite and write BENCH_<suite>.json")
    run.add_argument("suite", help=f"one of: {', '.join(sorted(SUITES))}")
    run.add_argument(
        "--full", action="store_true", help="report scale instead of fast"
    )
    run.add_argument(
        "--out", default=None, help="directory for the artifact (default: repo root)"
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-condition progress"
    )

    sub.add_parser("list", help="list suites and their experiments")

    compare = sub.add_parser(
        "compare", help="diff deterministic metrics of two artifacts"
    )
    compare.add_argument("baseline", help="baseline BENCH_*.json")
    compare.add_argument("candidate", help="candidate BENCH_*.json")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative drop tolerated on higher-is-better metrics",
    )
    compare.add_argument(
        "--verbose", action="store_true", help="show neutral metric changes too"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scale = Scale.full_scale() if args.full else Scale.fast()
    observers = list(default_observers())
    if not args.quiet:
        observers.append(ProgressObserver())
    _, _, path = run_suite(
        args.suite, scale=scale, observers=observers, out_dir=args.out
    )
    print(f"wrote {path}")
    return 0


def _cmd_list() -> int:
    for suite in sorted(SUITES):
        print(f"{suite}: {', '.join(SUITES[suite])}")
    orphans = sorted(
        set(SPECS) - {sid for members in SUITES.values() for sid in members}
    )
    if orphans:
        print(f"(unassigned specs: {', '.join(orphans)})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_payload(args.baseline)
    candidate = load_payload(args.candidate)
    kwargs = {}
    if args.tolerance is not None:
        kwargs["rel_tolerance"] = args.tolerance
    comparison = compare_payloads(baseline, candidate, **kwargs)
    print(format_comparison(comparison, verbose=args.verbose))
    return 1 if comparison.regressions else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list()
        return _cmd_compare(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
