"""Entry point for ``python -m repro.exp``."""

import sys

from repro.exp.cli import main

sys.exit(main())
