"""The experiment runner: matrix expansion + observed condition runs.

:class:`ExperimentRunner` is infrastructure-free orchestration: it
expands an :class:`~repro.exp.spec.ExperimentSpec` into conditions, hands
each to its registered driver with a fresh :class:`ConditionContext`,
and streams lifecycle events to the subscribed observers.  Drivers
create their simulator and tracers *through* the context so observers
see them (progress, invariant-checker attachment, metrics capture)
without the driver knowing any observer exists.

Wall-clock seconds per condition are captured around the driver call and
carried as host-dependent data — they are flagged ``unpinned`` in run
artifacts and never participate in determinism checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.harness import Scale
from repro.core.config import RfpConfig
from repro.errors import ExpError
from repro.exp.observers import RunObserver
from repro.exp.spec import Condition, ExperimentSpec
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

__all__ = [
    "ConditionContext",
    "ConditionOutcome",
    "Driver",
    "ExperimentRunner",
    "RunResult",
]

#: A driver runs one condition and returns its deterministic metrics.
Driver = Callable[["ConditionContext"], Mapping[str, object]]


class ConditionContext:
    """What a driver sees while running one condition.

    ``make_simulator`` / ``publish_tracer`` exist so lifecycle observers
    are told about the simulator and every tracer; ``checkers`` is
    populated by an :class:`~repro.exp.observers.InvariantObserver` (if
    subscribed) and read back by driver-side audits.
    """

    def __init__(
        self,
        condition: Condition,
        notify: Callable[[str], Callable[..., None]],
    ) -> None:
        self.condition = condition
        self.simulator: Optional[Simulator] = None
        self.tracers: Dict[str, Tracer] = {}
        self.checkers: Dict[str, object] = {}
        self._notify = notify

    def make_simulator(self) -> Simulator:
        """Fresh simulator for this condition; observers are told."""
        if self.simulator is not None:
            raise ExpError(
                f"{self.condition.experiment_id}: condition "
                f"{self.condition.label!r} already has a simulator — each "
                "condition runs on exactly one fresh simulator"
            )
        self.simulator = Simulator()
        self._notify("simulator_created")(self, self.simulator)
        return self.simulator

    def publish_tracer(
        self,
        name: str,
        tracer: Tracer,
        kind: str,
        rfp_config: Optional[RfpConfig] = None,
    ) -> Tracer:
        """Announce a tracer so observers can attach checkers to it."""
        if name in self.tracers:
            raise ExpError(f"tracer {name!r} published twice")
        self.tracers[name] = tracer
        self._notify("tracer_created")(self, name, tracer, kind, rfp_config)
        return tracer

    def register_checker(self, name: str, checker: object) -> None:
        """Record an attached invariant checker (observer-side API)."""
        self.checkers[name] = checker


@dataclass
class ConditionOutcome:
    """One condition's run: deterministic metrics + host wall time."""

    condition: Condition
    metrics: Dict[str, object]
    #: Host-dependent; recorded for trajectory, never asserted.
    wall_s: float


@dataclass
class RunResult:
    """All outcomes of one expanded spec."""

    spec: ExperimentSpec
    scale: Scale
    outcomes: List[ConditionOutcome] = field(default_factory=list)

    def outcome(self, label: str) -> ConditionOutcome:
        for outcome in self.outcomes:
            if outcome.condition.label == label:
                return outcome
        raise ExpError(
            f"{self.spec.experiment_id}: no condition labelled {label!r} "
            f"(have {[o.condition.label for o in self.outcomes]})"
        )

    def by_axis(self, **coords: object) -> List[ConditionOutcome]:
        """Outcomes whose axis coordinates match every given key."""
        return [
            outcome
            for outcome in self.outcomes
            if all(
                outcome.condition.axis.get(key) == value
                for key, value in coords.items()
            )
        ]


class ExperimentRunner:
    """Expand a spec and run every condition under the observers."""

    def __init__(
        self,
        observers: Sequence[RunObserver] = (),
        drivers: Optional[Mapping[str, Driver]] = None,
    ) -> None:
        self.observers: Tuple[RunObserver, ...] = tuple(observers)
        if drivers is None:
            from repro.exp.drivers import DRIVERS

            drivers = DRIVERS
        self._drivers = dict(drivers)

    def _notify(self, event: str) -> Callable[..., None]:
        def emit(*args: object) -> None:
            for observer in self.observers:
                getattr(observer, event)(*args)

        return emit

    def run(self, spec: ExperimentSpec, scale: Scale = Scale.fast()) -> RunResult:
        driver = self._drivers.get(spec.driver)
        if driver is None:
            raise ExpError(
                f"{spec.experiment_id}: unknown driver {spec.driver!r}; "
                f"registered: {sorted(self._drivers)}"
            )
        conditions = spec.expand(scale)
        self._notify("run_started")(spec, scale, conditions)
        result = RunResult(spec=spec, scale=scale)
        total = len(conditions)
        for index, condition in enumerate(conditions):
            context = ConditionContext(condition, self._notify)
            self._notify("condition_started")(context, index, total)
            # Host wall time around the driver call — recorded as
            # unpinned trajectory data, never fed back into the model.
            started = time.perf_counter()  # lint: disable=no-wall-clock
            metrics = driver(context)
            wall_s = time.perf_counter() - started  # lint: disable=no-wall-clock
            outcome = ConditionOutcome(
                condition=condition, metrics=dict(metrics), wall_s=wall_s
            )
            self._notify("condition_finished")(context, outcome, index, total)
            result.outcomes.append(outcome)
        self._notify("run_finished")(result)
        return result


def default_observers() -> Tuple[RunObserver, ...]:
    """The observer stack the migrated benchmarks run under: invariant
    checkers attached to every published tracer and asserted clean."""
    from repro.exp.observers import InvariantObserver

    return (InvariantObserver(),)
