"""The declared experiment specs behind the migrated benchmarks.

Each entry here replaces a bespoke ``run_*`` scaffold: the spec declares
the condition matrix (workload x topology x faults x paradigm, swept
per scale) and names the shared driver that measures one condition.
The thin formatting wrappers in :mod:`repro.bench.figures` and
:mod:`repro.bench.cluster_runs` expand these through the
:class:`~repro.exp.runner.ExperimentRunner` and shape the outcomes into
their original :class:`~repro.bench.figures.ExperimentResult` rows, so
every existing shape assertion runs unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.exp.spec import ExperimentSpec, FaultPoint, Phase, Sweep

__all__ = ["SPECS"]

#: 18-port InfiniScale-IV switch — the largest cluster the testbed wires.
_MACHINES_18 = 18

#: Shared base for the crash experiments: 3 shards RF=2 under the
#: acknowledged-write ledger, client-limited load (24 threads keep
#: healthy shards below the NIC ceiling so the dip measures failover
#: cost, not saturation noise), consecutive_slow_calls=1 so a call stuck
#: on the dead shard degrades to server-reply after one slow call
#: (§3.2's knob, tuned for fast failover), zero store jitter so healthy
#: shards never trigger the same rule organically, and an audited
#: ledger capped at 240 keys so the durability check stays exhaustive.
_CRASH_BASE: Dict[str, object] = {
    "kind": "ledger",
    "value_bytes": 64,
    "records_cap": 240,
    "machines": _MACHINES_18,
    "shards": 3,
    "replication_factor": 2,
    "client_threads": 24,
    "tracing": True,
    "zero_jitter": True,
    "consecutive_slow_calls": 1,
}

SPECS: Dict[str, ExperimentSpec] = {
    "fig3": ExperimentSpec(
        experiment_id="fig3",
        title="In-bound vs out-bound IOPS (32 B)",
        driver="raw-verbs",
        base={"paradigm": "outbound"},
        axes={
            "server_threads": Sweep(
                (1, 2, 4, 8, 16), (1, 2, 4, 6, 8, 10, 12, 14, 16)
            )
        },
        # The in-bound peak the sweep is contrasted against: one
        # measurement at the §2.2 saturating client count.
        extras=({"paradigm": "inbound", "client_threads": 28},),
        paper_expectation=(
            "out-bound saturates ~2.11 MOPS with 4 threads; in-bound peak "
            "~11.26 MOPS (~5x asymmetry)"
        ),
    ),
    "fig4": ExperimentSpec(
        experiment_id="fig4",
        title="Server in-bound IOPS vs client threads",
        driver="raw-verbs",
        base={"paradigm": "inbound"},
        axes={
            "client_threads": Sweep(
                (7, 21, 35, 49, 70),
                (7, 14, 21, 28, 35, 42, 49, 56, 63, 70),
            )
        },
        paper_expectation=(
            "rises to ~11.26 MOPS around 28-35 threads, then sags mildly "
            "(client-side mutex/QP/CQ contention)"
        ),
    ),
    "tab1": ExperimentSpec(
        experiment_id="tab1",
        title="Design-choice grid of Table 1, measured",
        driver="paradigm",
        base={
            "server_threads": 16,
            "client_threads": 35,
            # The RDTSC-controlled echo handler burns exactly this long.
            "process_us": 0.3,
            # Server-bypass corner: ~3 one-sided reads per logical
            # request (the amplification Pilaf pays).
            "amplification": 3,
        },
        axes={
            "paradigm": ("server-reply", "server-bypass", "RFP", "meaningless")
        },
        paper_expectation=(
            "RFP dominates: server-reply capped by out-bound (~2.1); bypass "
            "loses to amplification; the bypassed+out-bound corner gains "
            "nothing over server-reply"
        ),
    ),
    "ext-cluster-scaling": ExperimentSpec(
        experiment_id="ext-cluster-scaling",
        title="Cluster: aggregate throughput vs shard count",
        driver="cluster",
        base={
            "machines": _MACHINES_18,
            "replication_factor": 1,
            "op_timeout_us": 500.0,
            # Fixed client population on the machines no shard
            # configuration uses, so every row offers the same load.
            "client_slot_start": 6,
            "client_threads": 60,
        },
        axes={"shards": Sweep((1, 3, 6), (1, 2, 3, 4, 6))},
        paper_expectation=(
            "§4.5: the ~5.5 MOPS in-bound ceiling is per-NIC; sharding "
            "across server machines multiplies aggregate throughput until "
            "the fixed client population becomes the limit"
        ),
    ),
    "ext-cluster-failover": ExperimentSpec(
        experiment_id="ext-cluster-failover",
        title="Cluster: throughput through a single-shard crash (RF=2)",
        driver="cluster",
        base=dict(
            _CRASH_BASE,
            audit="failover",
            faults=(FaultPoint(0.5, "kill", "shard1"),),
            phases=(
                Phase("pre", 0.25, 0.5),
                Phase("dip", 0.5, 0.6),
                Phase("post", 0.6, 1.0),
            ),
        ),
        paper_expectation=(
            "the hybrid rule (§3.2) degrades calls stuck on the dead shard "
            "to a cheap blocked wait while routing falls over to replicas: "
            "the dip stays shallow, steady state recovers, no acked write "
            "is lost, and healthy shards stay in-bound-only"
        ),
    ),
    "ext-cluster-rejoin": ExperimentSpec(
        experiment_id="ext-cluster-rejoin",
        title="Cluster: crash, recovery transfer, and ring rejoin (RF=2)",
        driver="cluster",
        base=dict(
            _CRASH_BASE,
            audit="rejoin",
            faults=(
                FaultPoint(0.4, "kill", "shard1"),
                FaultPoint(0.6, "repair", "shard1"),
            ),
            phases=(
                Phase("pre", 0.25, 0.4),
                Phase("dip", 0.4, 0.5),
                Phase("outage", 0.5, 0.6),
                Phase("rejoin", 0.6, 0.8),
                Phase("post", 0.8, 1.0),
            ),
        ),
        paper_expectation=(
            "recovery traffic rides the same in-bound NIC pipeline the "
            "paper's fetch path uses, so donors stay in-bound-only and "
            "the transfer coexists with live load; the watermarked "
            "handoff restores the pre-crash ring with zero lost acked "
            "writes and post-rejoin throughput within 5% of pre-crash"
        ),
    ),
    "ext-cluster-rebalance": ExperimentSpec(
        experiment_id="ext-cluster-rebalance",
        title="Cluster: live vnode rebalancing under a Zipf hot-set",
        driver="cluster",
        base={
            "kind": "ledger",
            "value_bytes": 64,
            "records_cap": 240,
            "machines": _MACHINES_18,
            "shards": 3,
            "replication_factor": 1,
            # Enough offered load to saturate the hot shard's in-bound
            # NIC while the cold shards sit far below theirs — the
            # imbalance the controller exists to fix.
            "client_threads": 60,
            "client_slot_start": 6,
            "tracing": True,
            "zero_jitter": True,
            "op_timeout_us": 500.0,
            # No shard dies here; an astronomically high slow-call
            # threshold keeps the hybrid rule from degrading calls on
            # the (merely overloaded) hot shard to server-reply, which
            # would break the donors-stay-in-bound-only audit.
            "consecutive_slow_calls": 1_000_000,
            "put_every": 8,
            "audit": "rebalance",
            # The skew scenario: Zipf(1.2) GETs with the hottest ranks
            # pinned onto shard1 (workloads.zipf.pin_hot_ranks), so one
            # NIC carries most of the read traffic until vnodes move.
            "hot_shard": "shard1",
            "zipf_exponent": 1.2,
            # Below the default 1.4 so the controller keeps refining
            # past the first coarse move instead of declaring victory
            # at a still-lopsided ring.
            "rebalance_threshold": 1.2,
            "hot_ranks": 60,
            "rebalance_start_frac": 0.3,
            "rebalance_stop_frac": 0.6,
            "phases": (
                Phase("pre", 0.1, 0.3),
                Phase("spread", 0.3, 0.6),
                Phase("post", 0.6, 1.0),
            ),
        },
        axes={"rebalance": (False, True)},
        setting_axes=("rebalance",),
        paper_expectation=(
            "the per-NIC in-bound ceiling (§2.2) caps a skew-pinned "
            "shard; live vnode migration spreads the hot ranges so "
            "aggregate throughput recovers toward shards x ceiling — "
            ">=1.5x the no-rebalance baseline post-spread — with zero "
            "lost acked writes and donors in-bound-only throughout"
        ),
    ),
    "ext-txn-structures": ExperimentSpec(
        experiment_id="ext-txn-structures",
        title="Txns + a FIFO queue built twice: one-sided verbs vs RFP RPC",
        driver="txn-structures",
        base={
            "machines": _MACHINES_18,
            "shards": 3,
            "replication_factor": 2,
            "value_bytes": 64,
            # Six transactional writers on machines 4-9 (the queue host
            # is machine 3); queue clients take the remaining slots.
            "client_slot_start": 4,
            "client_threads": 6,
            "txn_groups": 8,
            "group_keys": 3,
            "txn_rounds": 32,
            "queue_items": 192,
            "queue_item_bytes": 16,
            "empty_backoff_us": 2.0,
        },
        axes={
            "structure": ("one-sided", "rfp"),
            "queue_clients": Sweep((2, 8, 16), (2, 4, 8, 16, 24)),
        },
        setting_axes=("structure", "queue_clients"),
        paper_expectation=(
            "Table 1's verdict applied to a data structure: the "
            "one-sided build pays >=3 round-trips per op and loses CAS "
            "races under contention, so its per-op verb count climbs "
            "while the RPC build stays flat at 1 — past the paper's "
            "~2-3 round-trip crossover the RFP queue wins outright; "
            "meanwhile RF=2 multi-key transactions on the same fabric "
            "commit with zero torn groups and zero lost acked writes"
        ),
    ),
}
