"""Suites: named groups of specs with a checked-in artifact each.

``python -m repro.exp run <suite>`` runs every spec in the suite on the
shared :class:`~repro.exp.runner.ExperimentRunner` and writes the
suite's ``BENCH_<suite>.json`` at the repo root.  The tier-1 gate keeps
the registry honest in both directions via :func:`check_exp_registry`:
every spec must be runnable (known driver, non-empty expansion, id
registered with the ``repro.bench`` experiment registry) and every
suite member must be a declared spec — and every declared spec must
belong to a suite, so nothing silently drops out of the artifacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import Scale
from repro.errors import ExpError
from repro.exp.artifact import build_payload, write_payload
from repro.exp.library import SPECS
from repro.exp.runner import ExperimentRunner, RunResult, default_observers

__all__ = ["SUITES", "check_exp_registry", "run_suite", "suite_artifact_path"]

#: Suite name -> ordered spec ids.  The artifact is ``BENCH_<suite>.json``.
SUITES: Dict[str, Tuple[str, ...]] = {
    "core": ("fig3", "fig4", "tab1"),
    "cluster": (
        "ext-cluster-scaling",
        "ext-cluster-failover",
        "ext-cluster-rejoin",
        "ext-cluster-rebalance",
        "ext-txn-structures",
    ),
}

#: src/repro/exp/suites.py -> repo root.
_REPO_ROOT = Path(__file__).resolve().parents[3]


def suite_artifact_path(suite: str, out_dir: Optional[str] = None) -> str:
    base = Path(out_dir) if out_dir is not None else _REPO_ROOT
    return str(base / f"BENCH_{suite}.json")


def run_suite(
    suite: str,
    scale: Scale = Scale.fast(),
    observers: Optional[Sequence] = None,
    out_dir: Optional[str] = None,
    write: bool = True,
) -> Tuple[Dict[str, object], List[RunResult], Optional[str]]:
    """Run one suite; returns ``(payload, results, path_written)``."""
    spec_ids = SUITES.get(suite)
    if spec_ids is None:
        raise ExpError(
            f"unknown suite {suite!r}; available: {sorted(SUITES)}"
        )
    runner = ExperimentRunner(
        observers=default_observers() if observers is None else observers
    )
    results = [runner.run(SPECS[spec_id], scale) for spec_id in spec_ids]
    payload = build_payload(suite, results, scale)
    path: Optional[str] = None
    if write:
        path = write_payload(payload, suite_artifact_path(suite, out_dir))
    return payload, results, path


def check_exp_registry() -> List[str]:
    """Cross-check specs, drivers, suites, and the bench registry.

    Returns human-readable problems (empty when consistent):

    - a spec keyed under a different id than it declares;
    - a spec naming an unregistered driver, or failing to expand;
    - a spec id missing from the ``repro.bench`` experiment registry
      (the CLI entry point users already know);
    - a suite referencing an undeclared spec, or a declared spec that
      no suite covers (it would silently drop out of the artifacts).
    """
    from repro.bench.experiments import EXPERIMENTS
    from repro.exp.drivers import DRIVERS

    problems: List[str] = []
    for spec_id, spec in sorted(SPECS.items()):
        if spec.experiment_id != spec_id:
            problems.append(
                f"spec registered as {spec_id!r} declares experiment_id "
                f"{spec.experiment_id!r}"
            )
        if spec.driver not in DRIVERS:
            problems.append(
                f"spec {spec_id!r} names unknown driver {spec.driver!r} "
                f"(registered: {sorted(DRIVERS)})"
            )
        try:
            conditions = spec.expand(Scale.fast())
        except ExpError as error:
            problems.append(f"spec {spec_id!r} does not expand: {error}")
        else:
            if not conditions:
                problems.append(f"spec {spec_id!r} expands to no conditions")
        if spec_id not in EXPERIMENTS:
            problems.append(
                f"spec {spec_id!r} is not registered in "
                "repro.bench.experiments.EXPERIMENTS"
            )
    covered = {spec_id for members in SUITES.values() for spec_id in members}
    for suite, members in sorted(SUITES.items()):
        for spec_id in members:
            if spec_id not in SPECS:
                problems.append(
                    f"suite {suite!r} references undeclared spec {spec_id!r}"
                )
    for spec_id in sorted(set(SPECS) - covered):
        problems.append(
            f"spec {spec_id!r} belongs to no suite — it would never be "
            "written to an artifact"
        )
    return problems
