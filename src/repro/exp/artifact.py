"""Versioned run artifacts: schema, writer, validator.

One suite run serializes to a ``BENCH_<suite>.json`` payload holding,
per experiment, every condition's declarative description and its
metrics.  The payload separates two kinds of data explicitly:

- **deterministic** — everything outside ``unpinned`` keys: condition
  descriptions, simulated-time metrics, provenance.  Two runs of the
  same suite at the same scale on the same tree must agree on the
  :func:`deterministic_view` byte for byte.
- **host-dependent** — wall-clock seconds, carried under ``unpinned``
  keys so trajectory tooling can show them while determinism checks and
  :mod:`repro.exp.trajectory` comparisons ignore them structurally
  (nothing needs a field-by-field skip list).

Validation is declarative (:data:`ARTIFACT_SCHEMA`) and intentionally
strict about shape but not values: the tier-1 gate validates every
``BENCH_*.json`` at the repo root through :func:`validate_bench_payload`
so a hand-edited or truncated artifact fails loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExpError
from repro.provenance import git_provenance, scale_provenance

__all__ = [
    "SCHEMA_VERSION",
    "build_payload",
    "deterministic_view",
    "load_payload",
    "validate_artifact",
    "validate_bench_payload",
    "write_payload",
]

SCHEMA_VERSION = "repro.exp/v1"

#: Scalar JSON types metric values may take.
_METRIC_TYPES = (int, float, str, bool)


def _round_floats(value):
    """Stable float rounding so artifacts diff cleanly across runs."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {key: _round_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(item) for item in value]
    return value


def build_payload(
    suite: str,
    results: Sequence,
    scale,
) -> Dict[str, object]:
    """Assemble the artifact payload for one suite run.

    ``results`` is a sequence of :class:`~repro.exp.runner.RunResult`;
    ``scale`` the :class:`~repro.bench.harness.Scale` they all ran at.
    """
    experiments: List[Dict[str, object]] = []
    for result in results:
        conditions = []
        for outcome in result.outcomes:
            conditions.append(
                {
                    "label": outcome.condition.label,
                    "condition": _round_floats(outcome.condition.describe()),
                    "metrics": _round_floats(dict(outcome.metrics)),
                    "unpinned": {"wall_s": round(outcome.wall_s, 4)},
                }
            )
        experiments.append(
            {
                "experiment_id": result.spec.experiment_id,
                "title": result.spec.title,
                "driver": result.spec.driver,
                "paper_expectation": result.spec.paper_expectation,
                "conditions": conditions,
            }
        )
    provenance: Dict[str, object] = dict(git_provenance())
    provenance["scale"] = scale_provenance(scale)
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "note": (
            "metrics and condition descriptions are deterministic in "
            "simulated time; every 'unpinned' subtree is host-dependent "
            "(wall clock) and excluded from determinism checks and "
            "compare"
        ),
        "provenance": provenance,
        "experiments": experiments,
    }


def deterministic_view(payload: Mapping[str, object]) -> Dict[str, object]:
    """A deep copy with every ``unpinned`` subtree removed.

    This is the byte-identity surface: serialize two views with
    ``json.dumps(..., sort_keys=True)`` and compare equal.
    """

    def strip(value):
        if isinstance(value, dict):
            return {
                key: strip(item)
                for key, item in value.items()
                if key != "unpinned"
            }
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return strip(dict(payload))


def write_payload(payload: Mapping[str, object], path: str) -> str:
    """Validate then write the artifact; returns the path written."""
    validate_artifact(payload)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2, sort_keys=False)
        sink.write("\n")
    return path


def load_payload(path: str) -> Dict[str, object]:
    """Read and structurally validate one ``BENCH_*.json`` file."""
    try:
        with open(path, "r", encoding="utf-8") as source:
            payload = json.load(source)
    except OSError as error:
        raise ExpError(f"cannot read artifact {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ExpError(f"artifact {path} is not valid JSON: {error}") from error
    validate_bench_payload(payload, where=path)
    return payload


# ----------------------------------------------------------------------
# Declarative validation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Field:
    """One required mapping entry and its expected type(s)."""

    name: str
    types: Tuple[type, ...]
    #: Non-empty required for containers when True.
    non_empty: bool = False


def _check_fields(
    mapping: object, fields: Sequence[Field], where: str
) -> Mapping[str, object]:
    if not isinstance(mapping, Mapping):
        raise ExpError(f"{where}: expected a JSON object, got {type(mapping).__name__}")
    for spec in fields:
        if spec.name not in mapping:
            raise ExpError(f"{where}: missing required field {spec.name!r}")
        value = mapping[spec.name]
        if not isinstance(value, spec.types) or (
            isinstance(value, bool) and bool not in spec.types
        ):
            expected = "/".join(t.__name__ for t in spec.types)
            raise ExpError(
                f"{where}: field {spec.name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
        if spec.non_empty and not value:
            raise ExpError(f"{where}: field {spec.name!r} must be non-empty")
    return mapping


#: Top-level shape of a ``repro.exp/v1`` artifact.
ARTIFACT_SCHEMA: Dict[str, Sequence[Field]] = {
    "root": (
        Field("schema", (str,)),
        Field("suite", (str,), non_empty=True),
        Field("provenance", (dict,)),
        Field("experiments", (list,), non_empty=True),
    ),
    "provenance": (
        Field("git_sha", (str,), non_empty=True),
        Field("git_dirty", (bool,)),
        Field("scale", (dict,)),
    ),
    "scale": (
        Field("window_us", (int, float)),
        Field("warmup_fraction", (int, float)),
        Field("records", (int,)),
        Field("full", (bool,)),
    ),
    "experiment": (
        Field("experiment_id", (str,), non_empty=True),
        Field("title", (str,)),
        Field("driver", (str,), non_empty=True),
        Field("paper_expectation", (str,)),
        Field("conditions", (list,), non_empty=True),
    ),
    "condition": (
        Field("label", (str,), non_empty=True),
        Field("condition", (dict,)),
        Field("metrics", (dict,), non_empty=True),
        Field("unpinned", (dict,)),
    ),
}


def validate_artifact(
    payload: Mapping[str, object], where: str = "artifact"
) -> None:
    """Structurally validate a ``repro.exp/v1`` payload.

    Raises :class:`~repro.errors.ExpError` naming the offending path on
    the first violation; returns ``None`` on success.
    """
    root = _check_fields(payload, ARTIFACT_SCHEMA["root"], where)
    if root["schema"] != SCHEMA_VERSION:
        raise ExpError(
            f"{where}: schema {root['schema']!r} is not {SCHEMA_VERSION!r}"
        )
    provenance = _check_fields(
        root["provenance"], ARTIFACT_SCHEMA["provenance"], f"{where}.provenance"
    )
    _check_fields(
        provenance["scale"], ARTIFACT_SCHEMA["scale"], f"{where}.provenance.scale"
    )
    seen_ids = set()
    for index, experiment in enumerate(root["experiments"]):  # type: ignore[index]
        exp_where = f"{where}.experiments[{index}]"
        entry = _check_fields(experiment, ARTIFACT_SCHEMA["experiment"], exp_where)
        if entry["experiment_id"] in seen_ids:
            raise ExpError(
                f"{exp_where}: duplicate experiment_id {entry['experiment_id']!r}"
            )
        seen_ids.add(entry["experiment_id"])
        seen_labels = set()
        for cindex, condition in enumerate(entry["conditions"]):  # type: ignore[index]
            cond_where = f"{exp_where}.conditions[{cindex}]"
            cond = _check_fields(
                condition, ARTIFACT_SCHEMA["condition"], cond_where
            )
            if cond["label"] in seen_labels:
                raise ExpError(
                    f"{cond_where}: duplicate condition label {cond['label']!r}"
                )
            seen_labels.add(cond["label"])
            for key, value in cond["metrics"].items():  # type: ignore[union-attr]
                if not isinstance(value, _METRIC_TYPES):
                    raise ExpError(
                        f"{cond_where}.metrics[{key!r}]: metric values must "
                        f"be scalars, got {type(value).__name__}"
                    )


#: Shape of the ``repro.bench.speed/v2`` artifact (the engine-speed
#: suite keeps its own writer; the gate validates both families).
SPEED_SCHEMA: Dict[str, Sequence[Field]] = {
    "root": (
        Field("schema", (str,)),
        Field("provenance", (dict,)),
        Field("repetitions", (int,)),
        Field("scenarios", (list,), non_empty=True),
        Field("frozen_baseline", (dict,)),
    ),
    "scenario": (
        Field("name", (str,), non_empty=True),
        Field("dispatched_fast", (int,)),
        Field("dispatched_reference", (int,)),
        Field("modeled_mops", (int, float)),
        Field("wall_s_fast", (int, float)),
        Field("wall_s_reference", (int, float)),
    ),
}


def validate_speed_artifact(
    payload: Mapping[str, object], where: str = "artifact"
) -> None:
    """Structurally validate a ``repro.bench.speed/v2`` payload."""
    from repro.bench.speed import SCHEMA_VERSION as SPEED_VERSION

    root = _check_fields(payload, SPEED_SCHEMA["root"], where)
    if root["schema"] != SPEED_VERSION:
        raise ExpError(
            f"{where}: schema {root['schema']!r} is not {SPEED_VERSION!r}"
        )
    provenance = _check_fields(
        root["provenance"], ARTIFACT_SCHEMA["provenance"], f"{where}.provenance"
    )
    _check_fields(
        provenance["scale"], ARTIFACT_SCHEMA["scale"], f"{where}.provenance.scale"
    )
    for index, scenario in enumerate(root["scenarios"]):  # type: ignore[index]
        _check_fields(
            scenario, SPEED_SCHEMA["scenario"], f"{where}.scenarios[{index}]"
        )


def validate_bench_payload(
    payload: Mapping[str, object], where: str = "artifact"
) -> None:
    """Validate any repo-root ``BENCH_*.json`` by its schema family."""
    if not isinstance(payload, Mapping) or "schema" not in payload:
        raise ExpError(f"{where}: artifact has no 'schema' field")
    schema = payload["schema"]
    if not isinstance(schema, str):
        raise ExpError(f"{where}: 'schema' must be a string")
    if schema.startswith("repro.exp/"):
        validate_artifact(payload, where)
    elif schema.startswith("repro.bench.speed/"):
        validate_speed_artifact(payload, where)
    else:
        raise ExpError(f"{where}: unknown artifact schema family {schema!r}")


def repo_root_artifacts(root: Optional[str] = None) -> List[str]:
    """Every ``BENCH_*.json`` path at the repo root (sorted)."""
    base = (
        Path(root)
        if root is not None
        else Path(__file__).resolve().parents[3]
    )
    return sorted(str(path) for path in base.glob("BENCH_*.json"))
