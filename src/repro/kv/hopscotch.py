"""Hopscotch-style neighborhood hash table (FaRM's lookup structure, §5).

FaRM keeps every key within a fixed-size *neighborhood* of its home
bucket, so a client can fetch the whole neighborhood — ``N`` consecutive
slots of ``key_size + value_size`` bytes each — with a **single** large
RDMA Read and scan it locally.  The paper's critique (§5) is that this
trades operation count for bytes: with ``N`` usually above 6, most of the
fetched data is wasted and latency/bandwidth suffer, which is exactly the
trade-off the FaRM baseline reproduces.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

from repro.errors import KVError
from repro.kv.crc import crc64

__all__ = ["HopscotchTable"]

V = TypeVar("V")


class HopscotchTable(Generic[V]):
    """Open-addressed table with bounded-distance (hopscotch) placement.

    Every key lives within ``neighborhood`` slots of its home bucket.
    Insertion displaces closer items outward (the classic hopscotch
    shuffle) to make room near the home bucket when needed.
    """

    def __init__(
        self, capacity: int, neighborhood: int = 8, on_slot_update=None
    ) -> None:
        if neighborhood < 1:
            raise KVError(f"neighborhood must be >= 1, got {neighborhood}")
        if capacity < neighborhood:
            raise KVError("capacity must be at least one neighborhood")
        self.capacity = capacity
        self.neighborhood = neighborhood
        self._slots: List[Optional[Tuple[bytes, V]]] = [None] * capacity
        self._count = 0
        self._on_slot_update = on_slot_update

    def home(self, key: bytes) -> int:
        return crc64(b"\x07" + key) % self.capacity

    def neighborhood_slots(self, key: bytes) -> List[int]:
        """The slot indices a remote reader must fetch for ``key``."""
        start = self.home(key)
        return [(start + offset) % self.capacity for offset in range(self.neighborhood)]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[V]:
        for index in self.neighborhood_slots(key):
            slot = self._slots[index]
            if slot is not None and slot[0] == key:
                return slot[1]
        return None

    def insert(self, key: bytes, value: V) -> None:
        """Insert or update; hopscotch-displaces to keep the invariant."""
        for index in self.neighborhood_slots(key):
            slot = self._slots[index]
            if slot is not None and slot[0] == key:
                self._set(index, (key, value))
                return
        free = self._find_free(self.home(key))
        if free is None:
            raise KVError(f"hopscotch table full (count {self._count})")
        free = self._pull_free_closer(self.home(key), free)
        if free is None:
            raise KVError("hopscotch displacement failed; table too dense")
        self._set(free, (key, value))
        self._count += 1

    def delete(self, key: bytes) -> bool:
        for index in self.neighborhood_slots(key):
            slot = self._slots[index]
            if slot is not None and slot[0] == key:
                self._set(index, None)
                self._count -= 1
                return True
        return False

    def _set(self, index: int, entry: Optional[Tuple[bytes, V]]) -> None:
        self._slots[index] = entry
        if self._on_slot_update is not None:
            if entry is None:
                self._on_slot_update(index, None, None)
            else:
                self._on_slot_update(index, entry[0], entry[1])

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    def load_factor(self) -> float:
        return self._count / self.capacity

    def slot(self, index: int) -> Optional[Tuple[bytes, V]]:
        return self._slots[index]

    # ------------------------------------------------------------------
    # Placement internals
    # ------------------------------------------------------------------

    def _distance(self, home: int, index: int) -> int:
        return (index - home) % self.capacity

    def _find_free(self, home: int) -> Optional[int]:
        for offset in range(self.capacity):
            index = (home + offset) % self.capacity
            if self._slots[index] is None:
                return index
        return None

    def _pull_free_closer(self, home: int, free: int) -> Optional[int]:
        """Displace items so a free slot lands inside ``home``'s window."""
        while self._distance(home, free) >= self.neighborhood:
            moved = False
            # Try to move into `free` an item whose own home still covers
            # `free`, starting from the candidate furthest back.
            for offset in range(self.neighborhood - 1, 0, -1):
                candidate = (free - offset) % self.capacity
                slot = self._slots[candidate]
                if slot is None:
                    continue
                candidate_home = self.home(slot[0])
                if self._distance(candidate_home, free) < self.neighborhood:
                    self._set(free, slot)
                    self._set(candidate, None)
                    free = candidate
                    moved = True
                    break
            if not moved:
                return None
        return free
