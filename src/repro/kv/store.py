"""Jakiro's in-memory key-value structure (§4.1).

The structure is an array of buckets, each holding eight slots so that a
bucket of 8-byte slot descriptors fills one cache line.  A full bucket
evicts its strictly least-recently-used slot (GETs refresh recency, like
Memcached).  The whole structure is partitioned across server threads in
EREW (Exclusive Read Exclusive Write): each thread owns a disjoint range
of the key space and only ever touches its own partition, so there is no
locking anywhere on the serving path.

:class:`StoreCostModel` converts each executed operation into the CPU
time the server thread is charged, including a configurable heavy-tail
jitter that reproduces the paper's "0.2% of requests have unexpectedly
long process time" (§3.2, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import KVError, KeyTooLargeError, ValueTooLargeError
from repro.kv.crc import crc64
from repro.sim.monitor import Counter

__all__ = ["JakiroStore", "StoreCostModel", "partition_of", "key_hash"]

SLOTS_PER_BUCKET = 8


#: Memoized key digests.  Pure-function cache: benches route every op's
#: key through :func:`key_hash` (client-side partition pick + server-side
#: bucket pick) over a bounded working set, so the table-driven CRC loop
#: was ~2 redundant Python byte-loops per op.
_KEY_HASHES: Dict[bytes, int] = {}


def key_hash(key: bytes) -> int:
    """A stable 64-bit key hash (CRC64; deterministic across runs)."""
    cached = _KEY_HASHES.get(key)
    if cached is None:
        cached = _KEY_HASHES[key] = crc64(key)
    return cached


def partition_of(key: bytes, partitions: int) -> int:
    """EREW owner partition of ``key`` — shared by clients and server."""
    if partitions < 1:
        raise KVError(f"partitions must be >= 1, got {partitions}")
    return key_hash(key) % partitions


@dataclass
class _Slot:
    key: bytes
    value: bytes
    last_used: int


@dataclass
class StoreCostModel:
    """CPU time charged per executed store operation.

    ``base_us`` covers the hash + bucket walk, ``per_byte_us`` the value
    memcpy (default ≈ 16 GB/s), and with probability ``jitter_probability``
    an exponential tail of mean ``jitter_mean_us`` is added — occasional
    TLB misses / allocation stalls that give Table 3 its retry tail.
    """

    base_us: float = 0.10
    per_byte_us: float = 1.0 / 16384.0
    jitter_probability: float = 0.002
    jitter_mean_us: float = 4.0

    def cost(self, moved_bytes: int, rng: Optional[np.random.Generator]) -> float:
        cost = self.base_us + moved_bytes * self.per_byte_us
        if rng is not None and self.jitter_probability > 0:
            if rng.random() < self.jitter_probability:
                cost += float(rng.exponential(self.jitter_mean_us))
        return cost


@dataclass
class StoreCounters:
    gets: Counter = field(default_factory=lambda: Counter("gets"))
    hits: Counter = field(default_factory=lambda: Counter("hits"))
    misses: Counter = field(default_factory=lambda: Counter("misses"))
    puts: Counter = field(default_factory=lambda: Counter("puts"))
    updates: Counter = field(default_factory=lambda: Counter("updates"))
    evictions: Counter = field(default_factory=lambda: Counter("evictions"))


class JakiroStore:
    """The partitioned bucket/slot structure with strict per-bucket LRU."""

    def __init__(
        self,
        partitions: int,
        buckets_per_partition: int = 16384,
        max_key_bytes: int = 255,
        max_value_bytes: int = 16384,
        cost_model: Optional[StoreCostModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if partitions < 1:
            raise KVError(f"partitions must be >= 1, got {partitions}")
        if buckets_per_partition < 1:
            raise KVError("need at least one bucket per partition")
        self.partitions = partitions
        self.buckets_per_partition = buckets_per_partition
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes
        self.cost_model = cost_model if cost_model is not None else StoreCostModel()
        self._rng = rng
        self._clock = 0
        self._buckets: List[List[List[_Slot]]] = [
            [[] for _ in range(buckets_per_partition)] for _ in range(partitions)
        ]
        self.counters = StoreCounters()

    # ------------------------------------------------------------------
    # Operations: each returns (result, charged_cpu_us)
    # ------------------------------------------------------------------

    def get(self, partition: int, key: bytes) -> Tuple[Optional[bytes], float]:
        """Look up ``key`` in its EREW partition; LRU-refresh on hit."""
        bucket = self._bucket(partition, key)
        self.counters.gets.increment()
        self._clock += 1
        for slot in bucket:
            if slot.key == key:
                slot.last_used = self._clock
                self.counters.hits.increment()
                cost = self.cost_model.cost(len(slot.value), self._rng)
                return slot.value, cost
        self.counters.misses.increment()
        return None, self.cost_model.cost(0, self._rng)

    def put(self, partition: int, key: bytes, value: bytes) -> Tuple[bool, float]:
        """Insert or update; returns (evicted_something, cpu_us)."""
        if len(key) > self.max_key_bytes:
            raise KeyTooLargeError(f"key of {len(key)} B > {self.max_key_bytes} B")
        if len(value) > self.max_value_bytes:
            raise ValueTooLargeError(
                f"value of {len(value)} B > {self.max_value_bytes} B"
            )
        bucket = self._bucket(partition, key)
        self.counters.puts.increment()
        self._clock += 1
        cost = self.cost_model.cost(len(value), self._rng)
        for slot in bucket:
            if slot.key == key:
                slot.value = value
                slot.last_used = self._clock
                self.counters.updates.increment()
                return False, cost
        if len(bucket) >= SLOTS_PER_BUCKET:
            victim = min(range(len(bucket)), key=lambda i: bucket[i].last_used)
            bucket.pop(victim)
            self.counters.evictions.increment()
            evicted = True
        else:
            evicted = False
        bucket.append(_Slot(key=key, value=value, last_used=self._clock))
        return evicted, cost

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Total key-value pairs resident across all partitions."""
        return sum(
            len(bucket)
            for partition in self._buckets
            for bucket in partition
        )

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Every resident ``(key, value)`` pair, in deterministic
        (partition, bucket, slot) order — the enumeration the cluster's
        recovery coordinator streams from donor shards.  Charges no cost
        and does not touch LRU recency."""
        for partition in self._buckets:
            for bucket in partition:
                for slot in bucket:
                    yield slot.key, slot.value

    def clear(self) -> None:
        """Drop every resident pair (a cold restart loses host memory);
        counters survive, mirroring persistent monitoring."""
        for partition in self._buckets:
            for index in range(len(partition)):
                partition[index] = []

    def partition_sizes(self) -> Dict[int, int]:
        return {
            index: sum(len(bucket) for bucket in partition)
            for index, partition in enumerate(self._buckets)
        }

    def _bucket(self, partition: int, key: bytes) -> List[_Slot]:
        if not 0 <= partition < self.partitions:
            raise KVError(f"partition {partition} out of range")
        expected = partition_of(key, self.partitions)
        if partition != expected:
            raise KVError(
                f"EREW violation: key belongs to partition {expected}, "
                f"thread touched {partition}"
            )
        index = (key_hash(key) // self.partitions) % self.buckets_per_partition
        return self._buckets[partition][index]
