"""CRC64 (ECMA-182, reflected) — Pilaf's race-detection checksum.

Pilaf validates every remotely-read hash-table entry and data record with
CRC64 so a GET that races an in-progress PUT observes a checksum mismatch
and retries (§1, §2.3).  The implementation is the standard table-driven
reflected CRC-64/XZ variant (polynomial 0x42F0E1EBA9EA3693 reflected to
0xC96C5795D7870F42, init/xorout 0xFFFFFFFFFFFFFFFF).
"""

from __future__ import annotations

from typing import List

__all__ = ["crc64"]

_POLY_REFLECTED = 0xC96C5795D7870F42
_MASK = 0xFFFFFFFFFFFFFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc64(data: bytes) -> int:
    """CRC-64/XZ of ``data`` as an unsigned 64-bit integer."""
    crc = _MASK
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ _MASK
