"""3-way Cuckoo hash table (Pilaf's index structure, §2.3).

Every key has three candidate slots (three independent hash functions
over a flat slot array).  Insertion places the key in the first free
candidate or kicks a resident key to one of *its* alternates, looping up
to a bound.  Lookup probes the candidates in order — which is exactly
what Pilaf's client does remotely, one RDMA Read per probe; at the
paper-quoted 75% fill the average GET costs ~2.2 index probes plus one
data read ≈ 3.2 RDMA operations.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

from repro.errors import KVError
from repro.kv.crc import crc64
from repro.sim.random import seeded_rng

__all__ = ["CuckooHashTable", "cuckoo_candidates"]

V = TypeVar("V")

_MASK64 = 0xFFFFFFFFFFFFFFFF
# Distinct odd constants per way; the finalizer below is nonlinear, so the
# three per-way hashes are effectively independent.  (Naively salting the
# CRC input does NOT work: CRC is linear, so prefix-salted hashes of the
# same key differ by a constant XOR and all three candidates collide
# together, trapping the cuckoo walk at ~50% fill.)
_WAY_SEEDS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a nonlinear 64-bit bijection."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def cuckoo_candidates(key: bytes, capacity: int) -> List[int]:
    """The three candidate slots of ``key`` in a table of ``capacity``.

    A pure function of (key, capacity): the Pilaf *client* computes the
    very same probe sequence locally that the server used for placement,
    which is what makes one-sided index probing possible.
    """
    base = crc64(key)
    seen: List[int] = []
    for seed in _WAY_SEEDS:
        index = _mix64(base ^ seed) % capacity
        # Degenerate collisions between ways: shift linearly so each key
        # always has three distinct candidates.
        while index in seen:
            index = (index + 1) % capacity
        seen.append(index)
    return seen


class CuckooHashTable(Generic[V]):
    """An in-memory 3-way cuckoo table mapping ``bytes`` keys to values.

    ``on_slot_update(slot_index, key, value_or_None)`` is invoked for
    every slot mutation, letting Pilaf mirror the logical table into its
    RNIC-registered index region byte for byte.
    """

    WAYS = 3

    def __init__(
        self,
        capacity: int,
        max_kicks: int = 128,
        seed: int = 0,
        on_slot_update=None,
    ) -> None:
        if capacity < self.WAYS:
            raise KVError(f"capacity must be >= {self.WAYS}, got {capacity}")
        self.capacity = capacity
        self.max_kicks = max_kicks
        self._slots: List[Optional[Tuple[bytes, V]]] = [None] * capacity
        self._count = 0
        self._rng = seeded_rng(seed)
        self._on_slot_update = on_slot_update
        self.kick_total = 0

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def candidates(self, key: bytes) -> List[int]:
        """The three candidate slot indices for ``key``, probe order."""
        return cuckoo_candidates(key, self.capacity)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def lookup(self, key: bytes) -> Tuple[Optional[V], int]:
        """Return ``(value, probes)`` — probes counts candidate slots
        inspected, the quantity that becomes RDMA Reads in Pilaf."""
        probes = 0
        for index in self.candidates(key):
            probes += 1
            slot = self._slots[index]
            if slot is not None and slot[0] == key:
                return slot[1], probes
        return None, probes

    def slot_of(self, key: bytes) -> Optional[int]:
        for index in self.candidates(key):
            slot = self._slots[index]
            if slot is not None and slot[0] == key:
                return index
        return None

    def insert(self, key: bytes, value: V) -> None:
        """Insert or update; raises :class:`KVError` when kicks exhaust."""
        existing = self.slot_of(key)
        if existing is not None:
            self._set(existing, key, value)
            return
        carried_key, carried_value = key, value
        for _ in range(self.max_kicks + 1):
            indices = self.candidates(carried_key)
            for index in indices:
                if self._slots[index] is None:
                    self._set(index, carried_key, carried_value)
                    self._count += 1
                    return
            # All candidates full: evict a random resident to its own
            # alternate location.
            victim_index = int(indices[self._rng.integers(0, len(indices))])
            victim_key, victim_value = self._slots[victim_index]
            self._set(victim_index, carried_key, carried_value)
            carried_key, carried_value = victim_key, victim_value
            self.kick_total += 1
        raise KVError(
            f"cuckoo insertion failed after {self.max_kicks} kicks "
            f"(fill {self.load_factor():.2f})"
        )

    def delete(self, key: bytes) -> bool:
        index = self.slot_of(key)
        if index is None:
            return False
        self._clear(index)
        self._count -= 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.slot_of(key) is not None

    def load_factor(self) -> float:
        return self._count / self.capacity

    def slot(self, index: int) -> Optional[Tuple[bytes, V]]:
        return self._slots[index]

    def expected_probes(self, keys) -> float:
        """Mean candidate probes a lookup of each key would cost now."""
        total = 0
        for key in keys:
            _, probes = self.lookup(key)
            total += probes
        return total / max(1, len(keys))

    def _set(self, index: int, key: bytes, value: V) -> None:
        self._slots[index] = (key, value)
        if self._on_slot_update is not None:
            self._on_slot_update(index, key, value)

    def _clear(self, index: int) -> None:
        self._slots[index] = None
        if self._on_slot_update is not None:
            self._on_slot_update(index, None, None)
