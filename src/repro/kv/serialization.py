"""GET/PUT wire format shared by Jakiro and the server-reply baselines.

Requests ride the RPC layer (:mod:`repro.core.rpc`), so this module only
defines the *argument* encodings:

- GET arguments:  ``u16 key_len | key``
- PUT arguments:  ``u16 key_len | key | value``
- GET result:     the raw value bytes (status byte handled by RPC)
- PUT result:     empty
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import ProtocolError

__all__ = [
    "GET_FUNCTION",
    "PUT_FUNCTION",
    "STATUS_OK",
    "STATUS_NOT_FOUND",
    "pack_get_request",
    "unpack_get_request",
    "pack_put_request",
    "unpack_put_request",
]

GET_FUNCTION = 1
PUT_FUNCTION = 2

# Application-level statuses carried in the RPC status byte.
STATUS_OK = 0
STATUS_NOT_FOUND = 16

_KEY_LEN = struct.Struct("<H")


def pack_get_request(key: bytes) -> bytes:
    _check_key(key)
    return _KEY_LEN.pack(len(key)) + key


def unpack_get_request(arguments: bytes) -> bytes:
    key, rest = _split_key(arguments)
    if rest:
        raise ProtocolError(f"{len(rest)} trailing bytes after GET key")
    return key


def pack_put_request(key: bytes, value: bytes) -> bytes:
    _check_key(key)
    return _KEY_LEN.pack(len(key)) + key + value


def unpack_put_request(arguments: bytes) -> Tuple[bytes, bytes]:
    return _split_key(arguments)


def _check_key(key: bytes) -> None:
    if not key:
        raise ProtocolError("empty key")
    if len(key) > 0xFFFF:
        raise ProtocolError(f"key of {len(key)} B exceeds the u16 length field")


def _split_key(arguments: bytes) -> Tuple[bytes, bytes]:
    if len(arguments) < _KEY_LEN.size:
        raise ProtocolError(f"runt KV request of {len(arguments)} bytes")
    (key_len,) = _KEY_LEN.unpack_from(arguments)
    end = _KEY_LEN.size + key_len
    if len(arguments) < end:
        raise ProtocolError(
            f"declared key of {key_len} B, only {len(arguments) - _KEY_LEN.size} present"
        )
    return arguments[_KEY_LEN.size : end], arguments[end:]
