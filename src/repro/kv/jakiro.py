"""Jakiro — the paper's RFP-based in-memory key-value store (§4.1).

Two halves:

- :class:`Jakiro` — the server: an :class:`~repro.core.server.RfpServer`
  whose handler is an RPC dispatcher with GET/PUT registered against the
  EREW-partitioned :class:`~repro.kv.store.JakiroStore`.  Server threads
  spend no cycles on networking in remote-fetch mode; they only poll,
  process, and buffer responses locally.
- :class:`JakiroClient` — one client thread.  It holds one RFP transport
  per server thread and routes each key to the transport pinned to the
  partition-owning thread (MICA-style EREW routing), so no server-side
  locking is ever needed.  The client thread registers once with its
  NIC's contention model regardless of how many transports it holds.

The RPC flow is exactly Fig. 8(a): ``prepare request → client_send →
client_recv``; all the remote-fetch machinery stays beneath the RPC
stubs.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.core.client import RfpClient
from repro.core.config import RfpConfig
from repro.core.rpc import RPC_OK, RpcClient, RpcServer
from repro.core.server import RequestContext, RfpServer
from repro.errors import KVError
from repro.hw.cluster import Cluster
from repro.hw.machine import Machine
from repro.kv.serialization import (
    GET_FUNCTION,
    PUT_FUNCTION,
    STATUS_NOT_FOUND,
    STATUS_OK,
    pack_get_request,
    pack_put_request,
    unpack_get_request,
    unpack_put_request,
)
from repro.kv.store import JakiroStore, StoreCostModel, partition_of
from repro.sim.core import Simulator
from repro.sim.random import seeded_rng

__all__ = ["Jakiro", "JakiroClient"]


class Jakiro:
    """The Jakiro server: RFP transport + RPC stubs + partitioned store."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: Optional[Machine] = None,
        threads: int = 6,
        config: Optional[RfpConfig] = None,
        buckets_per_partition: int = 16384,
        max_value_bytes: int = 16384,
        cost_model: Optional[StoreCostModel] = None,
        seed: int = 0,
        name: str = "jakiro",
        server_class: type = RfpServer,
        client_class: type = RfpClient,
        tracer=None,
    ) -> None:
        """``server_class``/``client_class`` default to the RFP transport;
        the ServerReply baseline injects its pinned-mode subclasses here —
        mirroring how the paper's ServerReply "is extended from Jakiro"
        (§4.2).  ``tracer`` (a :class:`repro.sim.Tracer`) is forwarded to
        the server and every connected client, so a protocol invariant
        checker can observe a whole KV run."""
        self.sim = sim
        self.cluster = cluster
        self.machine = machine if machine is not None else cluster.server
        self.config = config if config is not None else RfpConfig()
        self.store = JakiroStore(
            partitions=threads,
            buckets_per_partition=buckets_per_partition,
            max_value_bytes=max_value_bytes,
            cost_model=cost_model,
            rng=seeded_rng(seed),
        )
        rpc = RpcServer()
        rpc.register(GET_FUNCTION, self._handle_get)
        rpc.register(PUT_FUNCTION, self._handle_put)
        self.rpc = rpc
        self.client_class = client_class
        self.tracer = tracer
        self.server = server_class(
            sim, cluster, self.machine, rpc.handle, threads, self.config, name,
            tracer=tracer,
        )

    @property
    def threads(self) -> int:
        return self.server.threads

    def connect(
        self,
        machine: Machine,
        config: Optional[RfpConfig] = None,
        name: str = "",
        register_issuer: bool = True,
        tracer=None,
    ) -> "JakiroClient":
        """Attach one client thread running on ``machine``."""
        return JakiroClient(
            self.sim,
            machine,
            self,
            config=config,
            name=name,
            register_issuer=register_issuer,
            tracer=tracer,
        )

    def preload(self, pairs) -> None:
        """Load key-value pairs directly (off-line dataset population).

        The paper preloads 128M YCSB pairs before measuring; preloading
        bypasses simulated time, exactly like loading before the clock
        starts.
        """
        for key, value in pairs:
            self.store.put(partition_of(key, self.store.partitions), key, value)

    def restart(self) -> None:
        """Reboot after a :meth:`RfpServer.halt` crash: worker threads
        serve again and the store comes back *empty* — host memory is
        volatile, so every resident pair died with the machine.  The
        cluster's recovery coordinator streams the shard's ranges back
        from replicas before it rejoins the ring."""
        self.server.restart()
        self.store.clear()

    # ------------------------------------------------------------------
    # RPC handlers (run on the owning server thread)
    # ------------------------------------------------------------------

    def _handle_get(
        self, arguments: bytes, context: RequestContext
    ) -> Tuple[int, bytes, float]:
        key = unpack_get_request(arguments)
        value, cost = self.store.get(context.thread_id, key)
        if value is None:
            return STATUS_NOT_FOUND, b"", cost
        return STATUS_OK, value, cost

    def _handle_put(
        self, arguments: bytes, context: RequestContext
    ) -> Tuple[int, bytes, float]:
        key, value = unpack_put_request(arguments)
        _evicted, cost = self.store.put(context.thread_id, key, value)
        return STATUS_OK, b"", cost


class JakiroClient:
    """One client thread; EREW-routes keys across per-thread transports."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        jakiro: Jakiro,
        config: Optional[RfpConfig] = None,
        name: str = "",
        register_issuer: bool = True,
        tracer=None,
    ) -> None:
        """``register_issuer=False`` lets one client *thread* that holds
        clients to several shards count once in the NIC contention model.
        ``tracer`` defaults to the server-side tracer, so one tracer sees
        both halves of the protocol."""
        self.sim = sim
        self.machine = machine
        self.jakiro = jakiro
        self.name = name or f"jakiro-client@{machine.name}"
        if tracer is None:
            tracer = jakiro.tracer
        if register_issuer:
            machine.rnic.register_issuer()
        self._transports: List[RpcClient] = []
        for thread_id in range(jakiro.threads):
            rfp = jakiro.client_class(
                sim,
                machine,
                jakiro.server,
                config=config,
                name=f"{self.name}.p{thread_id}",
                thread_id=thread_id,
                register_issuer=False,
                tracer=tracer,
            )
            self._transports.append(RpcClient(rfp))

    # ------------------------------------------------------------------
    # The KV API (Fig. 8a)
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Process body: GET; returns the value or ``None`` if absent."""
        transport = self._route(key)
        status, value = yield from transport.call(GET_FUNCTION, pack_get_request(key))
        if status == STATUS_NOT_FOUND:
            return None
        if status != STATUS_OK:
            raise KVError(f"GET failed with status {status}")
        return value

    def put(self, key: bytes, value: bytes) -> Generator:
        """Process body: PUT; returns None."""
        transport = self._route(key)
        status, _ = yield from transport.call(
            PUT_FUNCTION, pack_put_request(key, value)
        )
        if status not in (STATUS_OK, RPC_OK):
            raise KVError(f"PUT failed with status {status}")
        return None

    def _route(self, key: bytes) -> RpcClient:
        return self._transports[partition_of(key, self.jakiro.threads)]

    # ------------------------------------------------------------------
    # Aggregated statistics across the per-partition transports
    # ------------------------------------------------------------------

    @property
    def transports(self) -> List[RfpClient]:
        return [rpc.transport for rpc in self._transports]

    def total_calls(self) -> int:
        return sum(t.stats.calls.value for t in self.transports)

    def latency_samples(self) -> List[float]:
        samples: List[float] = []
        for transport in self.transports:
            samples.extend(transport.stats.latency_us.samples)
        return samples

    def fetch_attempt_samples(self) -> List[float]:
        samples: List[float] = []
        for transport in self.transports:
            samples.extend(transport.stats.fetch_attempts.samples)
        return samples

    def busy_time(self) -> float:
        return sum(t.stats.busy.busy_time for t in self.transports)

    def cpu_utilization(self, elapsed: float) -> float:
        """This client thread's CPU utilization over ``elapsed`` µs."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time() / elapsed)

    def remote_reads(self) -> int:
        return sum(t.stats.remote_reads.value for t in self.transports)
