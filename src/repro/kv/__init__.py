"""Key-value data structures and the Jakiro store.

- :mod:`~repro.kv.crc` — CRC64 (ECMA-182), the checksum Pilaf uses to
  detect GETs racing PUTs (§1, §2.3),
- :mod:`~repro.kv.store` — Jakiro's in-memory structure: buckets of eight
  8-byte slots (one cache line), strict per-bucket LRU eviction, EREW
  partitioning across server threads (§4.1),
- :mod:`~repro.kv.cuckoo` — the 3-way Cuckoo hash table Pilaf probes with
  one-sided reads,
- :mod:`~repro.kv.hopscotch` — the Hopscotch-style neighborhood table
  FaRM reads in one oversized RDMA Read (§5),
- :mod:`~repro.kv.serialization` — the GET/PUT wire format shared by
  Jakiro and the server-reply baselines,
- :mod:`~repro.kv.jakiro` — the Jakiro system itself: RFP transport +
  RPC stubs + the partitioned store.
"""

from repro.kv.crc import crc64
from repro.kv.cuckoo import CuckooHashTable
from repro.kv.hopscotch import HopscotchTable
from repro.kv.jakiro import Jakiro, JakiroClient
from repro.kv.serialization import (
    GET_FUNCTION,
    PUT_FUNCTION,
    STATUS_NOT_FOUND,
    STATUS_OK,
    pack_get_request,
    pack_put_request,
    unpack_get_request,
    unpack_put_request,
)
from repro.kv.store import JakiroStore, StoreCostModel, partition_of

__all__ = [
    "CuckooHashTable",
    "GET_FUNCTION",
    "HopscotchTable",
    "Jakiro",
    "JakiroClient",
    "JakiroStore",
    "PUT_FUNCTION",
    "STATUS_NOT_FOUND",
    "STATUS_OK",
    "StoreCostModel",
    "crc64",
    "pack_get_request",
    "pack_put_request",
    "partition_of",
    "unpack_get_request",
    "unpack_put_request",
]
