"""Terminal charts for experiment results.

Headless environments (this simulator's natural habitat) still deserve a
visual: :func:`render_bars` draws an experiment's numeric columns as
horizontal grouped bar charts, scaled to the largest value, using
eighth-block characters for sub-cell resolution.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.figures import ExperimentResult

__all__ = ["render_bars"]

_FULL = "█"
_PARTIALS = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    return _FULL * full + _PARTIALS[remainder]


def render_bars(
    result: ExperimentResult,
    width: int = 40,
    columns: Optional[List[str]] = None,
) -> str:
    """Render the numeric columns of ``result`` as grouped bars.

    ``columns`` restricts which value columns are drawn (default: every
    column after the first that holds numbers in all rows).
    """
    label_column = result.columns[0]
    if columns is None:
        columns = [
            column
            for index, column in enumerate(result.columns[1:], start=1)
            if all(isinstance(row[index], (int, float)) for row in result.rows)
        ]
    if not columns:
        return f"(no numeric columns to chart in {result.experiment_id})"
    indexes = [result.columns.index(column) for column in columns]
    maximum = max(
        float(row[index]) for row in result.rows for index in indexes
    )
    name_width = max(len(column) for column in columns)
    value_width = max(
        len(f"{float(row[index]):.2f}") for row in result.rows for index in indexes
    )
    lines = [f"{result.experiment_id}: {result.title}"]
    for row in result.rows:
        lines.append(f"{label_column}={row[0]}")
        for column, index in zip(columns, indexes):
            value = float(row[index])
            lines.append(
                f"  {column:<{name_width}}  "
                f"{value:>{value_width}.2f} {_bar(value, maximum, width)}"
            )
    return "\n".join(lines)
