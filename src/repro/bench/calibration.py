"""The §2.2 microbenchmarks (Figs. 3-5) and hardware curves.

These are the experiments the paper runs before designing RFP: raw
synchronous one-sided operation loops that expose the in-bound vs
out-bound asymmetry, its thread scaling, and the size crossover.  The
same curves feed the §3.2 parameter selection (``N`` from the Fig. 9
curve, ``[L, H]`` from the Fig. 5 curve).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.sim.core import Simulator
from repro.sim.monitor import ThroughputMeter

__all__ = [
    "measure_inbound_iops",
    "measure_outbound_iops",
    "inbound_iops_curve",
    "outbound_iops_curve",
    "model_inbound_iops",
    "measured_fetch_round_trip_us",
]


def _sync_read_loop(sim, endpoint, local, remote, size, meter, post_cpu):
    while True:
        yield post_cpu
        yield endpoint.post_read(local, 0, remote, 0, size)
        meter.record(sim.now)


def _sync_write_loop(sim, endpoint, local, remote, size, meter, post_cpu):
    while True:
        yield post_cpu
        yield endpoint.post_write(local, 0, remote, 0, size)
        meter.record(sim.now)


def measure_inbound_iops(
    client_threads: int,
    size: int = 32,
    window_us: float = 3000.0,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
    *,
    reference: bool = False,
    return_dispatched: bool = False,
    sim: Optional[Simulator] = None,
):
    """Aggregate MOPS the server NIC serves when ``client_threads``
    (spread over 7 machines) issue synchronous RDMA Reads at it.

    ``reference=True`` replays the same run on the retained pre-PR
    engine and ``return_dispatched=True`` also returns the dispatched
    event count — both exist for the ``repro.bench speed`` suite.
    ``sim`` lets an orchestrator supply the fresh simulator instead
    (``reference`` is then ignored).
    """
    if sim is None:
        sim = Simulator(reference=reference)
    cluster = build_cluster(sim, cluster_spec)
    server_region = cluster.server.register_memory(1 << 20)
    warmup = window_us * 0.25
    meter = ThroughputMeter(window_start=warmup, window_end=window_us)
    post_cpu = cluster_spec.machine.nic.post_cpu_us
    machines = cluster.client_machines
    for index in range(client_threads):
        machine = machines[index % len(machines)]
        endpoint, _ = cluster.connect(machine, cluster.server)
        machine.rnic.register_issuer()
        local = machine.register_memory(max(64, size))
        sim.process(
            _sync_read_loop(sim, endpoint, local, server_region, size, meter, post_cpu)
        )
    sim.run(until=window_us)
    mops = meter.mops(elapsed=window_us - warmup)
    if return_dispatched:
        return mops, sim.dispatched
    return mops


def measure_outbound_iops(
    server_threads: int,
    size: int = 32,
    window_us: float = 3000.0,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
    sim: Optional[Simulator] = None,
) -> float:
    """Aggregate MOPS the server issues with ``server_threads`` posting
    synchronous RDMA Writes to the 7 client machines."""
    if sim is None:
        sim = Simulator()
    cluster = build_cluster(sim, cluster_spec)
    warmup = window_us * 0.25
    meter = ThroughputMeter(window_start=warmup, window_end=window_us)
    post_cpu = cluster_spec.machine.nic.post_cpu_us
    for index in range(server_threads):
        client = cluster.client_machines[index % len(cluster.client_machines)]
        _, server_endpoint = cluster.connect(client, cluster.server)
        cluster.server.rnic.register_issuer()
        local = cluster.server.register_memory(max(64, size))
        remote = client.register_memory(max(64, size))
        sim.process(
            _sync_write_loop(sim, server_endpoint, local, remote, size, meter, post_cpu)
        )
    sim.run(until=window_us)
    return meter.mops(elapsed=window_us - warmup)


def inbound_iops_curve(
    sizes: Sequence[int],
    client_threads: int = 35,
    window_us: float = 2000.0,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
) -> List[Tuple[int, float]]:
    """Measured (size, in-bound MOPS) points — the Fig. 5 in-bound line."""
    return [
        (size, measure_inbound_iops(client_threads, size, window_us, cluster_spec))
        for size in sizes
    ]


def outbound_iops_curve(
    sizes: Sequence[int],
    server_threads: int = 4,
    window_us: float = 2000.0,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
) -> List[Tuple[int, float]]:
    """Measured (size, out-bound MOPS) points — the Fig. 5 out-bound line."""
    return [
        (size, measure_outbound_iops(server_threads, size, window_us, cluster_spec))
        for size in sizes
    ]


def model_inbound_iops(
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
) -> Callable[[int, int], float]:
    """Closed-form ``I(R, F)`` for Eq. 2 from the NIC model (equivalent
    to running the size sweep once and interpolating)."""
    from repro.hw.rnic import pipeline_service_time

    nic = cluster_spec.machine.nic

    def iops_at(retry: int, fetch: int) -> float:
        return 1.0 / pipeline_service_time(
            nic.inbound_base_us,
            fetch,
            nic.effective_bandwidth_bytes_per_us,
            nic.softmax_order,
        )

    return iops_at


def measured_fetch_round_trip_us(
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17, size: int = 256
) -> float:
    """One unloaded remote-fetch round trip (post + read RTT): the time
    quantum a retry burns, used to map the Fig. 9 crossover to N."""
    sim = Simulator()
    cluster = build_cluster(sim, cluster_spec)
    remote = cluster.server.register_memory(max(64, size))
    machine = cluster.client_machines[0]
    endpoint, _ = cluster.connect(machine, cluster.server)
    local = machine.register_memory(max(64, size))
    nic = cluster_spec.machine.nic
    done = {}

    def body(sim):
        yield sim.timeout(nic.post_cpu_us)
        yield endpoint.post_read(local, 0, remote, 0, size)
        done["at"] = sim.now

    sim.process(body(sim))
    sim.run()
    return done["at"]
