"""Ablations and extensions beyond the paper's figures.

- ``ablation-symmetric`` — rerun the headline comparison on a
  hypothetical NIC with **no in/out-bound asymmetry**.  RFP's design
  premise is the asymmetry; on symmetric hardware remote fetching should
  buy (almost) nothing over server-reply.  This is the causal test of
  the paper's Observation 1.
- ``ext-multiserver`` — §4.5 closes with "a better aggregated throughput
  if the number of clients is higher than the number of servers":
  shard Jakiro across several server machines and watch aggregate
  throughput scale with server count.
- ``ext-ud-rpc`` — §5's related-work argument, measured: a HERD-style
  UC/UD RPC out-rates RC server-reply (cheap datagram issue) but still
  trails RFP, and message loss costs it real throughput through
  timeout/retransmit machinery RFP never needs.
"""

from __future__ import annotations

from typing import List

from repro.baselines.herd import HerdServer
from repro.bench.figures import ExperimentResult, _fmt, _spec
from repro.bench.harness import Scale, run_kv
from repro.cluster import ClusterConfig, RfpCluster
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec, MachineSpec, NicSpec
from repro.sim.core import Simulator
from repro.sim.monitor import ThroughputMeter
from repro.workloads.ycsb import WorkloadSpec, YcsbWorkload

__all__ = [
    "run_ablation_symmetric",
    "run_ext_multiserver",
    "run_ext_ud_rpc",
    "run_ext_lock_bypass",
    "SYMMETRIC_CLUSTER",
]

#: A hypothetical NIC whose issue path is as fast as its serve path:
#: both pipelines at the CX-3 *out-bound* rate (so neither side gets the
#: asymmetry windfall and porting-cost arguments are all that remain).
SYMMETRIC_NIC = NicSpec(
    name="symmetric-hypothetical",
    bandwidth_gbps=40.0,
    inbound_peak_mops=2.11,
    outbound_peak_mops=2.11,
    read_extra_us=0.0,
)

SYMMETRIC_CLUSTER = ClusterSpec(
    machine=MachineSpec(nic=SYMMETRIC_NIC, cores=16, memory_gb=96), machines=8
)


def run_ablation_symmetric(scale: Scale) -> ExperimentResult:
    """Jakiro vs ServerReply on asymmetric vs symmetric NICs."""
    spec = _spec(scale)
    rows = []
    for label, cluster_spec in (
        ("ConnectX-3 (5.3x asym)", CLUSTER_EUROSYS17),
        ("symmetric (1.0x)", SYMMETRIC_CLUSTER),
    ):
        jakiro = run_kv(
            "jakiro", spec, server_threads=6, scale=scale, cluster_spec=cluster_spec
        )
        reply = run_kv(
            "serverreply",
            spec,
            server_threads=6,
            scale=scale,
            cluster_spec=cluster_spec,
        )
        gain = jakiro.throughput_mops / max(reply.throughput_mops, 1e-9)
        rows.append(
            [
                label,
                _fmt(jakiro.throughput_mops),
                _fmt(reply.throughput_mops),
                _fmt(gain),
            ]
        )
    return ExperimentResult(
        "ablation-symmetric",
        "Ablation: remove the in/out-bound asymmetry",
        ["nic", "jakiro_mops", "serverreply_mops", "rfp_gain"],
        rows,
        paper_expectation=(
            "RFP's advantage is built on Observation 1; on a symmetric NIC "
            "remote fetching should gain ~nothing over server-reply"
        ),
        observations=(
            f"gain {rows[0][3]}x on CX-3 collapses to {rows[1][3]}x on the "
            "symmetric NIC"
        ),
    )


def run_ext_multiserver(scale: Scale) -> ExperimentResult:
    """Aggregate Jakiro throughput with 1-3 server machines (§4.5).

    Uses an 18-machine cluster (the testbed's InfiniScale-IV switch has
    18 ports) so the client side can actually offer enough load to
    saturate several servers.  Sharding and key routing ride the
    :mod:`repro.cluster` layer (consistent-hash ring, RF=1); the wide
    operation timeout keeps the failure detector quiet so this measures
    pure scaling, not failover.
    """
    cluster_spec = ClusterSpec(
        machine=CLUSTER_EUROSYS17.machine,
        machines=18,
        switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
    )
    rows = []
    for servers in (1, 2, 3):
        sim = Simulator()
        cluster = build_cluster(sim, cluster_spec)
        service = RfpCluster(
            sim,
            cluster,
            shards=servers,
            cluster_config=ClusterConfig(replication_factor=1, op_timeout_us=500.0),
        )
        client_machines = cluster.machines[servers:]
        workload = YcsbWorkload(WorkloadSpec(records=scale.records))
        service.preload(workload.dataset())

        window = scale.window_us
        warmup = window * 0.25
        meter = ThroughputMeter(window_start=warmup, window_end=window)
        client_threads = 5 * len(client_machines)

        def loop(sim, client, operations):
            for op in operations:
                if op.is_get:
                    yield from client.get(op.key)
                else:
                    yield from client.put(op.key, op.value)
                meter.record(sim.now)

        for index in range(client_threads):
            machine = client_machines[index % len(client_machines)]
            # One logical client thread; its ClusterClient counts once
            # toward its NIC's issuing contention however many shards it
            # talks to.
            client = service.connect(machine, name=f"c{index}")
            sim.process(loop(sim, client, workload.operations(f"c{index}")))
        sim.run(until=window)
        rows.append([servers, client_threads, _fmt(meter.mops(elapsed=window - warmup))])
    return ExperimentResult(
        "ext-multiserver",
        "Extension: Jakiro sharded across server machines",
        ["server_machines", "client_threads", "aggregate_mops"],
        rows,
        paper_expectation=(
            "§4.5: the asymmetry pays off whenever clients outnumber "
            "servers; aggregate throughput should scale with server count"
        ),
        observations=(
            f"{rows[0][2]} -> {rows[-1][2]} MOPS from 1 to {rows[-1][0]} servers"
        ),
    )


def run_ext_lock_bypass(scale: Scale) -> ExperimentResult:
    """DrTM-style CAS-locked bypass vs Jakiro, uniform vs Zipf (§5).

    A lock-based bypass store pays 3+ one-sided verbs per operation even
    uncontended; under skew the hot keys' CAS retries pile further
    amplification on top — while Jakiro's EREW server shrugs at skew.
    """
    from repro.baselines.drtm import DrtmServer
    from repro.workloads.ycsb import YcsbWorkload

    rows = []
    for distribution in ("uniform", "zipfian"):
        spec = WorkloadSpec(
            records=min(scale.records, 4096),
            get_fraction=0.95,
            distribution=distribution,
        )
        jakiro = run_kv("jakiro", spec, server_threads=6, scale=scale)

        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        server = DrtmServer(sim, cluster, capacity=spec.records * 2)
        workload = YcsbWorkload(spec)
        server.preload(workload.dataset())
        window = scale.window_us
        warmup = window * 0.25
        meter = ThroughputMeter(window_start=warmup, window_end=window)
        clients = []

        def loop(sim, client, operations):
            for op in operations:
                if op.is_get:
                    yield from client.get(op.key)
                else:
                    yield from client.put(op.key, op.value[: server.max_value_bytes])
                meter.record(sim.now)

        for index in range(35):
            client = server.connect(cluster.client_machines[index % 7])
            clients.append(client)
            sim.process(loop(sim, client, workload.operations(f"c{index}")))
        sim.run(until=window)
        drtm_mops = meter.mops(elapsed=window - warmup)
        retries = sum(c.stats.cas_retries.value for c in clients)
        completed = max(1, meter.completions)
        rows.append(
            [
                distribution,
                _fmt(jakiro.throughput_mops),
                _fmt(drtm_mops),
                _fmt(retries / completed),
            ]
        )
    return ExperimentResult(
        "ext-lock-bypass",
        "Extension: CAS-locked bypass (DrTM-style) vs Jakiro",
        ["distribution", "jakiro_mops", "drtm_mops", "cas_retries_per_op"],
        rows,
        paper_expectation=(
            "§5: explicit-lock coordination multiplies one-sided ops; "
            "skew adds CAS contention on hot keys, while EREW Jakiro is "
            "skew-insensitive"
        ),
        observations=(
            f"uniform: {rows[0][1]} vs {rows[0][2]} MOPS; zipf: "
            f"{rows[1][1]} vs {rows[1][2]} MOPS "
            f"({rows[1][3]} CAS retries/op)"
        ),
    )


def run_ext_ud_rpc(scale: Scale) -> ExperimentResult:
    """HERD-style UC/UD RPC vs RFP vs server-reply, with and without loss."""
    from repro.bench.harness import run_controlled_process_time

    rows: List[List] = []
    rfp = run_controlled_process_time("rfp", 0.2, scale=scale)
    reply = run_controlled_process_time("serverreply", 0.2, scale=scale)
    rows.append(["rfp (RC)", 0.0, _fmt(rfp.throughput_mops), 0])
    rows.append(["server-reply (RC)", 0.0, _fmt(reply.throughput_mops), 0])
    for loss in (0.0, 0.01, 0.05):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        server = HerdServer(
            sim,
            cluster,
            handler=lambda p, c: (p, 0.2),
            threads=6,
            loss_probability=loss,
        )
        window = scale.window_us
        warmup = window * 0.25
        meter = ThroughputMeter(window_start=warmup, window_end=window)
        clients = []

        def loop(sim, client):
            while True:
                yield from client.call(bytes(16))
                meter.record(sim.now)

        for index in range(35):
            client = server.connect(cluster.client_machines[index % 7])
            clients.append(client)
            sim.process(loop(sim, client))
        sim.run(until=window)
        retransmits = sum(c.stats.retransmits.value for c in clients)
        rows.append(
            [
                "herd (UC/UD)",
                loss,
                _fmt(meter.mops(elapsed=window - warmup)),
                retransmits,
            ]
        )
    return ExperimentResult(
        "ext-ud-rpc",
        "Extension: HERD-style UC/UD RPC vs the RC paradigms",
        ["system", "loss_probability", "mops", "retransmits"],
        rows,
        paper_expectation=(
            "§5: UD replies out-rate RC server-reply (cheap datagram "
            "issue) but the server still spends out-bound work, so RFP "
            "leads; loss forces timeout/retransmit machinery and costs "
            "throughput"
        ),
        observations=(
            f"rfp {rows[0][2]} > herd {rows[2][2]} > server-reply "
            f"{rows[1][2]} MOPS at zero loss"
        ),
    )
