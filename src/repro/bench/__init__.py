"""Benchmark harness: regenerates every table and figure of §4.

- :mod:`~repro.bench.harness` — closed-loop measurement machinery,
- :mod:`~repro.bench.systems` — uniform adapters over the four KV
  systems (Jakiro, ServerReply, RDMA-Memcached, Pilaf, FaRM),
- :mod:`~repro.bench.calibration` — the §2.2 microbenchmarks (Figs. 3-5)
  and the hardware curves parameter selection consumes,
- :mod:`~repro.bench.figures` — one runner per paper figure/table,
- :mod:`~repro.bench.experiments` — the registry mapping experiment ids
  (``fig3`` .. ``fig20``, ``tab1``, ``tab3``, ``params``) to runners,
- :mod:`~repro.bench.report` — ASCII rendering,
- :mod:`~repro.bench.cli` — ``python -m repro.bench [ids] [--full]``.
"""

from repro.bench.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.bench.harness import KvRunResult, Scale, run_controlled_process_time, run_kv

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "KvRunResult",
    "Scale",
    "run_controlled_process_time",
    "run_experiment",
    "run_kv",
]
