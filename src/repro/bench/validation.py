"""Quick self-validation: is this install reproducing the paper?

``python -m repro.bench --validate`` runs a ~30-second subset of checks
that pin the calibration to the paper's constants; a fresh clone that
passes these will reproduce every figure's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import predict_rfp_throughput, predict_server_reply_throughput
from repro.bench.calibration import (
    inbound_iops_curve,
    measure_inbound_iops,
    measure_outbound_iops,
)
from repro.bench.harness import Scale, run_controlled_process_time, run_kv
from repro.core import derive_size_bounds
from repro.hw import CONNECTX3
from repro.workloads import WorkloadSpec

__all__ = ["ValidationCheck", "run_validation", "format_validation"]


@dataclass
class ValidationCheck:
    """One validation: what was checked, what we expect, what we got."""

    name: str
    expected: str
    measured: str
    passed: bool


def run_validation() -> List[ValidationCheck]:
    """Run all quick checks; returns one record per check."""
    checks: List[ValidationCheck] = []

    def record(name: str, expected: str, measured: str, passed: bool) -> None:
        checks.append(ValidationCheck(name, expected, measured, passed))

    inbound = measure_inbound_iops(28, window_us=1500.0)
    record(
        "in-bound peak (Fig. 3)",
        "11.26 MOPS ±8%",
        f"{inbound:.2f} MOPS",
        abs(inbound - 11.26) / 11.26 < 0.08,
    )
    outbound = measure_outbound_iops(4, window_us=1500.0)
    record(
        "out-bound peak (Fig. 3)",
        "2.11 MOPS ±8%",
        f"{outbound:.2f} MOPS",
        abs(outbound - 2.11) / 2.11 < 0.08,
    )
    record(
        "asymmetry ratio",
        "4.5x-6x",
        f"{inbound / outbound:.1f}x",
        4.5 < inbound / outbound < 6.0,
    )

    sizes = [32, 64, 128, 192, 256, 384, 512, 640, 768, 1024, 2048, 4096]
    curve = inbound_iops_curve(sizes, window_us=1200.0)
    lower, upper = derive_size_bounds([s for s, _ in curve], [m for _, m in curve])
    record("[L, H] (Fig. 5 / §3.2)", "[256, 1024]", f"[{lower}, {upper}]",
           (lower, upper) == (256, 1024))

    scale = Scale(window_us=1500.0, records=2048)
    rfp = run_controlled_process_time("rfp", 0.2, scale=scale)
    record(
        "RFP peak (Fig. 12)",
        "~5.5 MOPS ±10%",
        f"{rfp.throughput_mops:.2f} MOPS",
        abs(rfp.throughput_mops - 5.5) / 5.5 < 0.10,
    )
    reply = run_controlled_process_time("serverreply", 0.2, scale=scale)
    record(
        "ServerReply ceiling",
        "1.8-2.2 MOPS",
        f"{reply.throughput_mops:.2f} MOPS",
        1.8 <= reply.throughput_mops <= 2.2,
    )

    jakiro = run_kv(
        "jakiro", WorkloadSpec(records=2048), server_threads=6,
        client_threads=35, scale=scale,
    )
    record(
        "Jakiro end-to-end (Figs. 10/12)",
        "~5.5 MOPS ±12%",
        f"{jakiro.throughput_mops:.2f} MOPS",
        abs(jakiro.throughput_mops - 5.5) / 5.5 < 0.12,
    )

    predicted = predict_rfp_throughput(CONNECTX3, 16, 35, 0.2).mops
    record(
        "model vs simulator (RFP)",
        "within 10%",
        f"{predicted:.2f} vs {rfp.throughput_mops:.2f} MOPS",
        abs(predicted - rfp.throughput_mops) / rfp.throughput_mops < 0.10,
    )
    predicted_reply = predict_server_reply_throughput(CONNECTX3, 16, 35, 0.2).mops
    record(
        "model vs simulator (reply)",
        "within 10%",
        f"{predicted_reply:.2f} vs {reply.throughput_mops:.2f} MOPS",
        abs(predicted_reply - reply.throughput_mops) / reply.throughput_mops < 0.10,
    )
    return checks


def format_validation(checks: List[ValidationCheck]) -> str:
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(
            f"[{status}] {check.name:32s} expected {check.expected:16s} "
            f"measured {check.measured}"
        )
    failed = sum(1 for check in checks if not check.passed)
    lines.append("")
    lines.append(
        f"{len(checks) - failed}/{len(checks)} checks passed"
        + ("" if failed == 0 else f" — {failed} FAILED")
    )
    return "\n".join(lines)
