"""Closed-loop measurement harness.

Every evaluation number in the paper is a closed-loop measurement: N
client threads issue synchronous operations back to back, throughput is
completions per second in a steady-state window, latency the per-op
round trip.  :func:`run_kv` reproduces that for the KV systems;
:func:`run_controlled_process_time` reproduces the RDTSC-controlled
process-time experiments (Figs. 9, 14, 15).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.systems import build_system
from repro.core.client import RfpClient
from repro.core.config import RfpConfig
from repro.core.mode import Mode
from repro.core.server import RfpServer
from repro.errors import BenchError
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.paradigms.server_reply import ServerReplyClient, ServerReplyServer
from repro.sim.core import Simulator
from repro.sim.monitor import ThroughputMeter
from repro.workloads.ycsb import WorkloadSpec, YcsbWorkload

__all__ = ["Scale", "KvRunResult", "run_kv", "run_controlled_process_time"]


@dataclass(frozen=True)
class Scale:
    """Measurement scale: FAST for tests/benches, FULL for reports.

    ``window_us`` is the simulated measurement window; the first
    ``warmup_fraction`` of it is discarded.  ``records`` scales the
    preloaded dataset (the paper uses 128M pairs; the simulator keeps the
    *behaviour* — hash pressure, LRU churn — at a laptop-friendly count).
    """

    window_us: float = 2500.0
    warmup_fraction: float = 0.25
    records: int = 8192
    full: bool = False

    @classmethod
    def fast(cls) -> "Scale":
        return cls()

    @classmethod
    def full_scale(cls) -> "Scale":
        return cls(window_us=8000.0, records=32768, full=True)

    def sweep(self, fast_points, full_points):
        """Pick the sweep granularity appropriate for this scale."""
        return list(full_points) if self.full else list(fast_points)


@dataclass
class KvRunResult:
    """Outcome of one closed-loop KV run."""

    system: str
    throughput_mops: float
    latency_us: np.ndarray
    client_cpu_utilization: float
    fetch_attempts: List[int] = field(default_factory=list)
    replies_sent: int = 0
    requests_served: int = 0
    operations_completed: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def mean_latency(self) -> float:
        return float(np.mean(self.latency_us)) if len(self.latency_us) else 0.0

    def percentile_latency(self, p: float) -> float:
        return float(np.percentile(self.latency_us, p)) if len(self.latency_us) else 0.0


def run_kv(
    system: str,
    workload: WorkloadSpec,
    *,
    server_threads: int = 6,
    client_threads: int = 35,
    scale: Scale = Scale.fast(),
    config: Optional[RfpConfig] = None,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
    value_limit: int = 16384,
    sim: Optional[Simulator] = None,
) -> KvRunResult:
    """Closed-loop run of one KV system under one workload.

    ``sim`` lets an orchestrator (:mod:`repro.exp`) supply the fresh
    simulator so its observers see it; by default one is created here.
    """
    if client_threads < 1:
        raise BenchError("need at least one client thread")
    if sim is None:
        sim = Simulator()
    cluster = build_cluster(sim, cluster_spec)
    handle = build_system(
        system,
        sim,
        cluster,
        server_threads,
        config=config,
        value_limit=value_limit,
        records=workload.records,
    )
    generator = YcsbWorkload(workload)
    handle.preload(generator.dataset())

    window = scale.window_us
    warmup = window * scale.warmup_fraction
    meter = ThroughputMeter(window_start=warmup, window_end=window)
    latencies: List[float] = []
    clients = []

    def client_loop(sim, client, operations):
        for operation in operations:
            began = sim.now
            if operation.is_get:
                yield from client.get(operation.key)
            else:
                yield from client.put(operation.key, operation.value)
            now = sim.now
            meter.record(now)
            if now >= warmup:
                latencies.append(now - began)

    machines = cluster.client_machines
    for index in range(client_threads):
        client = handle.connect(machines[index % len(machines)])
        clients.append(client)
        operations = generator.operations(f"client-{index}")
        sim.process(client_loop(sim, client, operations), name=f"driver-{index}")
    sim.run(until=window)

    measured = window - warmup
    busy = sum(_client_busy(client) for client in clients)
    cpu = min(1.0, busy / (client_threads * window)) if window > 0 else 0.0
    attempts = list(
        itertools.chain.from_iterable(
            _client_fetch_attempts(client) for client in clients
        )
    )
    server = handle.rfp_server()
    return KvRunResult(
        system=system,
        throughput_mops=meter.mops(elapsed=measured),
        latency_us=np.asarray(latencies, dtype=float),
        client_cpu_utilization=cpu,
        fetch_attempts=attempts,
        replies_sent=getattr(getattr(server, "stats", None), "replies_sent", None).value
        if hasattr(server, "stats")
        else 0,
        requests_served=getattr(getattr(server, "stats", None), "requests", None).value
        if hasattr(server, "stats")
        else 0,
        operations_completed=meter.completions,
    )


def _client_busy(client) -> float:
    """Total busy CPU time of one client thread, whatever its type."""
    if hasattr(client, "busy_time"):  # JakiroClient-style aggregation
        return client.busy_time()
    transport = getattr(client, "transport", None)
    if transport is not None and hasattr(transport, "stats"):
        return transport.stats.busy.busy_time
    stats = getattr(client, "stats", None)
    if stats is not None and hasattr(stats, "busy"):
        return stats.busy.busy_time
    return 0.0


def _client_fetch_attempts(client) -> List[int]:
    if hasattr(client, "fetch_attempt_samples"):
        return [int(a) for a in client.fetch_attempt_samples()]
    transport = getattr(client, "transport", None)
    if transport is not None and hasattr(transport, "stats"):
        return [int(a) for a in transport.stats.fetch_attempts.samples]
    return []


def run_controlled_process_time(
    mode: str,
    process_time_us: float,
    *,
    server_threads: int = 16,
    client_threads: int = 35,
    scale: Scale = Scale.fast(),
    response_bytes: int = 32,
    config: Optional[RfpConfig] = None,
    cluster_spec: ClusterSpec = CLUSTER_EUROSYS17,
    sim: Optional[Simulator] = None,
) -> KvRunResult:
    """The RDTSC-loop experiments: echo RPC with an exact process time.

    ``mode`` is ``"rfp"`` (hybrid on), ``"rfp-no-switch"`` (pure repeated
    remote fetching, the Fig. 9/14 ablation), or ``"serverreply"``.
    ``sim`` lets an orchestrator supply the fresh simulator.
    """
    if sim is None:
        sim = Simulator()
    cluster = build_cluster(sim, cluster_spec)
    response = bytes(response_bytes)

    def handler(payload, ctx):
        return response, process_time_us

    base = config if config is not None else RfpConfig()
    if mode == "rfp":
        server = RfpServer(sim, cluster, cluster.server, handler, server_threads, base)
        client_class = RfpClient
    elif mode == "rfp-no-switch":
        from dataclasses import replace

        base = replace(base, hybrid_enabled=False)
        server = RfpServer(sim, cluster, cluster.server, handler, server_threads, base)
        client_class = RfpClient
    elif mode == "serverreply":
        server = ServerReplyServer(
            sim, cluster, cluster.server, handler, server_threads, base
        )
        client_class = ServerReplyClient
    else:
        raise BenchError(f"unknown mode {mode!r}")

    window = scale.window_us
    warmup = window * scale.warmup_fraction
    meter = ThroughputMeter(window_start=warmup, window_end=window)
    latencies: List[float] = []
    clients = []

    def loop(sim, client):
        payload = bytes(16)
        while True:
            began = sim.now
            yield from client.call(payload)
            now = sim.now
            meter.record(now)
            if now >= warmup:
                latencies.append(now - began)

    for index in range(client_threads):
        machine = cluster.client_machines[index % len(cluster.client_machines)]
        client = client_class(sim, machine, server, base)
        clients.append(client)
        sim.process(loop(sim, client), name=f"driver-{index}")
    sim.run(until=window)

    measured = window - warmup
    busy = sum(c.stats.busy.busy_time for c in clients)
    attempts = [
        int(a) for c in clients for a in c.stats.fetch_attempts.samples
    ]
    in_reply_mode = sum(1 for c in clients if c.policy.mode is Mode.SERVER_REPLY)
    return KvRunResult(
        system=mode,
        throughput_mops=meter.mops(elapsed=measured),
        latency_us=np.asarray(latencies, dtype=float),
        client_cpu_utilization=min(1.0, busy / (client_threads * window)),
        fetch_attempts=attempts,
        replies_sent=server.stats.replies_sent.value,
        requests_served=server.stats.requests.value,
        operations_completed=meter.completions,
        extras={"clients_in_reply_mode": float(in_reply_mode)},
    )
