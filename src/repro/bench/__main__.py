"""``python -m repro.bench`` — run the evaluation reproduction."""

import sys

from repro.bench.cli import main

sys.exit(main())
