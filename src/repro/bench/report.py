"""ASCII and CSV rendering of experiment results."""

from __future__ import annotations

import csv
import os
from typing import List

from repro.bench.figures import ExperimentResult

__all__ = ["format_table", "format_result", "write_csv"]


def format_table(columns: List[str], rows: List[List]) -> str:
    """A plain monospace table with padded columns."""
    table = [columns] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(columns))]

    def render(row: List[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    separator = "  ".join("-" * width for width in widths)
    lines = [render(table[0]), separator]
    lines.extend(render(row) for row in table[1:])
    return "\n".join(lines)


def write_csv(result: ExperimentResult, directory: str) -> str:
    """Write one experiment's rows to ``<directory>/<id>.csv``.

    Returns the file path.  Latency-CDF experiments additionally dump
    their raw per-system latency series to ``<id>_series.csv`` so plots
    can be regenerated with full resolution.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.csv")
    with open(path, "w", newline="", encoding="utf-8") as sink:
        writer = csv.writer(sink)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    if result.series:
        series_path = os.path.join(directory, f"{result.experiment_id}_series.csv")
        names = sorted(result.series)
        longest = max(len(result.series[name]) for name in names)
        with open(series_path, "w", newline="", encoding="utf-8") as sink:
            writer = csv.writer(sink)
            writer.writerow(names)
            for index in range(longest):
                writer.writerow(
                    [
                        result.series[name][index]
                        if index < len(result.series[name])
                        else ""
                        for name in names
                    ]
                )
    return path


def format_result(result: ExperimentResult) -> str:
    """Render one experiment: header, paper expectation, measured table."""
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        f"paper: {result.paper_expectation}",
    ]
    if result.observations:
        lines.append(f"measured: {result.observations}")
    lines.append("")
    lines.append(format_table(result.columns, result.rows))
    return "\n".join(lines)
