"""Uniform adapters over the key-value systems under test.

Every system exposes the same contract to the harness:

- ``build(sim, cluster, threads, config, value_limit)`` → a system handle,
- ``handle.preload(pairs)``,
- ``handle.connect(machine)`` → a client with ``get(key)``/``put(key,
  value)`` process-body generators,
- ``handle.server`` → the underlying server object (for stats), when one
  exists.

``SYSTEMS`` maps the names used throughout the benches: ``jakiro``,
``serverreply``, ``memcached``, ``pilaf``, ``farm``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.baselines import (
    FarmServer,
    PilafServer,
    RdmaMemcachedServer,
    build_serverreply_kv,
)
from repro.core.config import RfpConfig
from repro.errors import BenchError
from repro.hw.cluster import Cluster
from repro.kv.jakiro import Jakiro
from repro.sim.core import Simulator

__all__ = ["SYSTEMS", "SystemHandle", "build_system"]


@dataclass
class SystemHandle:
    """A built system: preload data, connect clients, read server stats."""

    name: str
    server: object
    preload: Callable
    connect: Callable

    def rfp_server(self):
        """The underlying RfpServer-compatible object (stats access)."""
        inner = self.server
        return inner.server if isinstance(inner, Jakiro) else inner


def _build_jakiro(sim, cluster, threads, config, value_limit, hybrid=True):
    if config is None:
        config = RfpConfig()
    if not hybrid:
        config = replace(config, hybrid_enabled=False)
    jakiro = Jakiro(
        sim, cluster, threads=threads, config=config, max_value_bytes=value_limit
    )
    return SystemHandle("jakiro", jakiro, jakiro.preload, jakiro.connect)


def _build_jakiro_no_switch(sim, cluster, threads, config, value_limit):
    return _build_jakiro(sim, cluster, threads, config, value_limit, hybrid=False)


def _build_serverreply(sim, cluster, threads, config, value_limit):
    kv = build_serverreply_kv(
        sim, cluster, threads=threads, config=config, max_value_bytes=value_limit
    )
    return SystemHandle("serverreply", kv, kv.preload, kv.connect)


def _build_memcached(sim, cluster, threads, config, value_limit):
    server = RdmaMemcachedServer(sim, cluster, threads=threads, config=config)
    return SystemHandle("memcached", server, server.preload, server.connect)


def _build_pilaf(sim, cluster, threads, config, value_limit, records=None):
    # Pilaf runs its cuckoo table at 75% fill (§2.3): size it to the
    # dataset so the probe amplification matches the paper's regime.
    capacity = 32768 if records is None else max(CAPACITY_FLOOR, int(records / 0.75))
    server = PilafServer(
        sim,
        cluster,
        threads=threads,
        config=config,
        capacity=capacity,
        max_value_bytes=max(value_limit, 256),
    )
    return SystemHandle("pilaf", server, server.preload, server.connect)


def _build_farm(sim, cluster, threads, config, value_limit, records=None):
    capacity = 32768 if records is None else max(CAPACITY_FLOOR, int(records / 0.70))
    server = FarmServer(
        sim,
        cluster,
        threads=threads,
        config=config,
        capacity=capacity,
        max_value_bytes=max(value_limit, 64),
    )
    return SystemHandle("farm", server, server.preload, server.connect)


CAPACITY_FLOOR = 1024


SYSTEMS = {
    "jakiro": _build_jakiro,
    "jakiro-no-switch": _build_jakiro_no_switch,
    "serverreply": _build_serverreply,
    "memcached": _build_memcached,
    "pilaf": _build_pilaf,
    "farm": _build_farm,
}


def build_system(
    name: str,
    sim: Simulator,
    cluster: Cluster,
    threads: int,
    config: Optional[RfpConfig] = None,
    value_limit: int = 16384,
    records: Optional[int] = None,
) -> SystemHandle:
    """Build one system under test by name.

    ``records`` hints the dataset size so structures with fixed geometry
    (Pilaf's 75%-filled cuckoo table, FaRM's hopscotch table) match the
    paper's fill regime.
    """
    builder = SYSTEMS.get(name)
    if builder is None:
        raise BenchError(f"unknown system {name!r}; options: {sorted(SYSTEMS)}")
    if name in ("pilaf", "farm"):
        return builder(sim, cluster, threads, config, value_limit, records=records)
    return builder(sim, cluster, threads, config, value_limit)
