"""Registry of reproducible experiments (every §4 figure and table)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.bench import cluster_runs, extensions, figures
from repro.bench.figures import ExperimentResult
from repro.bench.harness import Scale
from repro.errors import BenchError

__all__ = ["EXPERIMENTS", "Experiment", "ExperimentResult", "run_experiment"]


def _run_breakdown(scale):
    # Imported lazily: breakdown pulls the tracer machinery.
    from repro.bench.breakdown import run_breakdown

    return run_breakdown(scale)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: id, description, and its runner."""

    experiment_id: str
    title: str
    runner: Callable[[Scale], ExperimentResult]


def _register() -> Dict[str, Experiment]:
    entries = [
        ("fig3", "In/out-bound asymmetry vs server threads", figures.run_fig3),
        ("fig4", "In-bound IOPS vs client threads", figures.run_fig4),
        ("fig5", "IOPS vs payload size", figures.run_fig5),
        ("fig6", "Bypass access amplification", figures.run_fig6),
        ("fig9", "Remote fetching vs server-reply vs process time", figures.run_fig9),
        ("fig10", "Jakiro throughput vs client threads", figures.run_fig10),
        ("fig11", "Jakiro vs Pilaf (20 Gbps, 50% GET)", figures.run_fig11),
        ("fig12", "Three systems vs server threads", figures.run_fig12),
        ("fig13", "Latency CDF, uniform", figures.run_fig13),
        ("fig14", "Hybrid switch vs process time", figures.run_fig14),
        ("fig15", "Client CPU utilization vs process time", figures.run_fig15),
        ("fig16", "Throughput vs GET percentage, uniform", figures.run_fig16),
        ("fig17", "Throughput vs value size", figures.run_fig17),
        ("fig18", "Jakiro vs fetch size F", figures.run_fig18),
        ("fig19", "Throughput vs GET percentage, skewed", figures.run_fig19),
        ("fig20", "Latency CDF, skewed", figures.run_fig20),
        ("tab1", "Table 1 paradigm grid, measured", figures.run_tab1),
        ("tab3", "Table 3 retry distribution", figures.run_tab3),
        ("params", "Parameter selection (N, L, H, R, F)", figures.run_params),
        (
            "ablation-symmetric",
            "Ablation: RFP without the NIC asymmetry",
            extensions.run_ablation_symmetric,
        ),
        (
            "ext-multiserver",
            "Extension: Jakiro sharded across servers (§4.5)",
            extensions.run_ext_multiserver,
        ),
        (
            "ext-cluster-scaling",
            "Cluster: aggregate throughput vs shard count (1-6)",
            cluster_runs.run_ext_cluster_scaling,
        ),
        (
            "ext-cluster-failover",
            "Cluster: throughput through a single-shard crash (RF=2)",
            cluster_runs.run_ext_cluster_failover,
        ),
        (
            "ext-cluster-rejoin",
            "Cluster: crash, recovery transfer, and ring rejoin (RF=2)",
            cluster_runs.run_ext_cluster_rejoin,
        ),
        (
            "ext-cluster-rebalance",
            "Cluster: live vnode rebalancing under a Zipf hot-set",
            cluster_runs.run_ext_cluster_rebalance,
        ),
        (
            "ext-txn-structures",
            "Cluster: txns + a FIFO queue built twice (verbs vs RPC)",
            cluster_runs.run_ext_txn_structures,
        ),
        (
            "ext-ud-rpc",
            "Extension: HERD-style UC/UD RPC vs RC paradigms (§5)",
            extensions.run_ext_ud_rpc,
        ),
        (
            "ext-lock-bypass",
            "Extension: DrTM-style CAS-locked bypass vs Jakiro (§5)",
            extensions.run_ext_lock_bypass,
        ),
        (
            "breakdown",
            "Per-phase latency decomposition of an RFP call",
            _run_breakdown,
        ),
    ]
    return {
        experiment_id: Experiment(experiment_id, title, runner)
        for experiment_id, title, runner in entries
    }


EXPERIMENTS: Dict[str, Experiment] = _register()


def run_experiment(experiment_id: str, scale: Scale = Scale.fast()) -> ExperimentResult:
    """Run one registered experiment by id."""
    experiment = EXPERIMENTS.get(experiment_id)
    if experiment is None:
        raise BenchError(
            f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}"
        )
    return experiment.runner(scale)
