"""User-defined experiments from a JSON spec.

``python -m repro.bench --spec my.json`` runs a custom closed-loop KV
experiment without writing code.  Example spec::

    {
      "title": "jakiro vs serverreply across threads",
      "systems": ["jakiro", "serverreply"],
      "workload": {
        "records": 8192,
        "get_fraction": 0.95,
        "distribution": "uniform",
        "value_size": 32
      },
      "server_threads": [2, 4, 6],
      "client_threads": 35,
      "window_us": 2500
    }

Exactly one of ``server_threads`` / ``client_threads`` / ``value_size``
/ ``get_fraction`` may be a list — that becomes the sweep axis; the
cross product of systems × sweep points is measured.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.bench.figures import ExperimentResult, _fmt
from repro.bench.harness import Scale, run_kv
from repro.bench.systems import SYSTEMS
from repro.errors import BenchError
from repro.workloads.value_sizes import FixedValues
from repro.workloads.ycsb import WorkloadSpec

__all__ = ["load_spec", "run_custom"]

_SWEEPABLE = ("server_threads", "client_threads", "value_size", "get_fraction")
_DEFAULTS = {
    "server_threads": 6,
    "client_threads": 35,
    "value_size": 32,
    "get_fraction": 0.95,
}


def load_spec(path: str) -> Dict:
    """Read and validate a custom-experiment spec."""
    with open(path, "r", encoding="utf-8") as source:
        spec = json.load(source)
    if not isinstance(spec, dict):
        raise BenchError("spec must be a JSON object")
    systems = spec.get("systems", ["jakiro"])
    if isinstance(systems, str):
        systems = [systems]
    unknown = [name for name in systems if name not in SYSTEMS]
    if unknown:
        raise BenchError(f"unknown systems {unknown}; options: {sorted(SYSTEMS)}")
    spec["systems"] = systems
    sweeps = [key for key in _SWEEPABLE if isinstance(spec.get(key), list)]
    if len(sweeps) > 1:
        raise BenchError(f"only one sweep axis allowed, got {sweeps}")
    spec["_sweep_axis"] = sweeps[0] if sweeps else None
    return spec


def run_custom(spec: Dict, scale: Scale = Scale.fast()) -> ExperimentResult:
    """Run a loaded spec; one row per (sweep point)."""
    workload_spec = dict(spec.get("workload", {}))
    systems: List[str] = spec["systems"]
    axis = spec.get("_sweep_axis")
    points = spec.get(axis, [None]) if axis else [None]
    window = float(spec.get("window_us", scale.window_us))
    base_settings = dict(_DEFAULTS)
    for key in _SWEEPABLE:
        if key in workload_spec:
            base_settings[key] = workload_spec.pop(key)
        if key in spec and not isinstance(spec[key], list):
            base_settings[key] = spec[key]
    rows = []
    for point in points:
        settings = dict(base_settings)
        if axis is not None:
            settings[axis] = point
        workload = WorkloadSpec(
            records=int(workload_spec.get("records", scale.records)),
            get_fraction=float(settings["get_fraction"]),
            distribution=workload_spec.get("distribution", "uniform"),
            value_sizes=FixedValues(int(settings["value_size"])),
            seed=int(workload_spec.get("seed", 42)),
        )
        row = [point if point is not None else "-"]
        for system in systems:
            result = run_kv(
                system,
                workload,
                server_threads=int(settings["server_threads"]),
                client_threads=int(settings["client_threads"]),
                scale=Scale(window_us=window, records=workload.records),
            )
            row.append(_fmt(result.throughput_mops))
        rows.append(row)
    return ExperimentResult(
        "custom",
        spec.get("title", "custom experiment"),
        [axis or "point"] + [f"{name}_mops" for name in systems],
        rows,
        paper_expectation="user-defined experiment",
    )
