"""One runner per evaluation figure/table of the paper.

Each ``run_*`` function regenerates the rows/series behind one figure and
returns an :class:`ExperimentResult` carrying the measured data plus the
paper's reported expectation, so EXPERIMENTS.md can be produced directly
from these runners.  Absolute numbers come from the calibrated simulator;
the claims under reproduction are the *shapes* (who wins, by what factor,
where crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.bench.calibration import (
    inbound_iops_curve,
    measured_fetch_round_trip_us,
    model_inbound_iops,
    outbound_iops_curve,
)
from repro.bench.harness import (
    KvRunResult,
    Scale,
    run_controlled_process_time,
    run_kv,
)
from repro.core.config import RfpConfig
from repro.core.params import derive_retry_bound, derive_size_bounds, select_parameters
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, CONNECTX2, ClusterSpec, MachineSpec
from repro.paradigms.server_bypass import SyntheticBypassClient
from repro.sim.core import Simulator
from repro.sim.monitor import ThroughputMeter
from repro.sim.random import seeded_rng
from repro.workloads.value_sizes import FixedValues, UniformValues
from repro.workloads.ycsb import WorkloadSpec

__all__ = ["ExperimentResult"]

#: The paper's 20 Gbps / 6-machine setup used for the Pilaf comparison.
CLUSTER_20GBPS = ClusterSpec(
    machine=MachineSpec(nic=CONNECTX2, cores=16, memory_gb=96), machines=6
)


@dataclass
class ExperimentResult:
    """Measured rows for one figure/table plus the paper's expectation."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List]
    paper_expectation: str
    observations: str = ""
    series: Dict[str, list] = field(default_factory=dict)


def _fmt(value) -> object:
    if isinstance(value, float):
        return round(value, 3)
    return value


def _spec(scale: Scale, **kwargs) -> WorkloadSpec:
    kwargs.setdefault("records", scale.records)
    return WorkloadSpec(**kwargs)


def _run_exp_spec(experiment_id: str, scale: Scale):
    """Expand and run one declared spec under the invariant observers.

    Imported lazily: :mod:`repro.exp` imports this module's package
    during its own initialization, so a top-level import here would
    bite its tail.
    """
    from repro.exp.library import SPECS
    from repro.exp.runner import ExperimentRunner, default_observers

    spec = SPECS[experiment_id]
    runner = ExperimentRunner(observers=default_observers())
    return spec, runner.run(spec, scale)


# ----------------------------------------------------------------------
# §2.2 microbenchmarks
# ----------------------------------------------------------------------


def run_fig3(scale: Scale) -> ExperimentResult:
    """Out-bound vs in-bound IOPS vs number of server threads (32 B)."""
    spec, result = _run_exp_spec("fig3", scale)
    inbound_peak = result.outcome("paradigm=inbound,client_threads=28").metrics[
        "mops"
    ]
    rows = [
        [
            outcome.condition.axis["server_threads"],
            _fmt(outcome.metrics["mops"]),
            _fmt(inbound_peak),
        ]
        for outcome in result.outcomes
        if "server_threads" in outcome.condition.axis
    ]
    peak_out = max(row[1] for row in rows)
    return ExperimentResult(
        "fig3",
        spec.title,
        ["server_threads", "outbound_mops", "inbound_mops"],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"measured out-bound peak {peak_out:.2f} MOPS, in-bound "
            f"{inbound_peak:.2f} MOPS, asymmetry {inbound_peak / peak_out:.1f}x"
        ),
    )


def run_fig4(scale: Scale) -> ExperimentResult:
    """Server in-bound IOPS vs number of client threads."""
    spec, result = _run_exp_spec("fig4", scale)
    rows = [
        [
            outcome.condition.axis["client_threads"],
            _fmt(outcome.metrics["mops"]),
        ]
        for outcome in result.outcomes
    ]
    peak = max(row[1] for row in rows)
    tail = rows[-1][1]
    return ExperimentResult(
        "fig4",
        spec.title,
        ["client_threads", "inbound_mops"],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=f"peak {peak:.2f} MOPS; at 70 threads {tail:.2f} MOPS",
    )


def run_fig5(scale: Scale) -> ExperimentResult:
    """IOPS of both directions vs payload size."""
    sizes = scale.sweep(
        [32, 128, 256, 512, 1024, 2048, 4096],
        [32, 64, 128, 256, 512, 1024, 2048, 4096],
    )
    window = scale.window_us * 0.8
    inbound = dict(inbound_iops_curve(sizes, window_us=window))
    outbound = dict(outbound_iops_curve(sizes, window_us=window))
    rows = [[s, _fmt(inbound[s]), _fmt(outbound[s])] for s in sizes]
    return ExperimentResult(
        "fig5",
        "IOPS vs payload size",
        ["size_bytes", "inbound_mops", "outbound_mops"],
        rows,
        paper_expectation=(
            "in-bound flat to ~256 B then falls to the bandwidth line; the "
            "two directions converge above ~2 KB"
        ),
        observations=(
            f"at 32 B: {inbound[32]:.2f} vs {outbound[32]:.2f}; at 2 KB+: "
            f"{inbound[2048]:.2f} vs {outbound[2048]:.2f}"
        ),
    )


def run_fig6(scale: Scale) -> ExperimentResult:
    """Server-bypass throughput vs RDMA operations per request."""
    ops_counts = scale.sweep([2, 4, 6, 8, 11, 15], list(range(2, 16)))
    window = scale.window_us
    rows = []
    for ops in ops_counts:
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        region = cluster.server.register_memory(1 << 20)
        warmup = window * 0.25
        meter = ThroughputMeter(window_start=warmup, window_end=window)

        def loop(sim, client):
            while True:
                yield from client.request()
                meter.record(sim.now)

        for index in range(21):  # the paper's 21 client threads
            client = SyntheticBypassClient(
                sim, cluster.client_machines[index % 7], cluster, region, ops
            )
            sim.process(loop(sim, client))
        sim.run(until=window)
        throughput = meter.mops(elapsed=window - warmup)
        inbound = cluster.server.rnic.in_pipeline.operations / window
        rows.append([ops, _fmt(throughput), _fmt(inbound)])
    return ExperimentResult(
        "fig6",
        "Bypass access amplification",
        ["rdma_ops_per_request", "throughput_mops", "inbound_iops_mops"],
        rows,
        paper_expectation=(
            "request throughput collapses ~1/k while the NIC stays at high "
            "in-bound IOPS; below 1 MOPS past ~12 ops/request"
        ),
        observations=(
            f"throughput {rows[0][1]} MOPS at k={rows[0][0]} down to "
            f"{rows[-1][1]} at k={rows[-1][0]}"
        ),
    )


# ----------------------------------------------------------------------
# §3.2 parameter mechanics
# ----------------------------------------------------------------------


def run_fig9(scale: Scale) -> ExperimentResult:
    """Repeated remote fetching vs server-reply across process time."""
    times = scale.sweep([1, 3, 5, 7, 8, 10, 12, 15], list(range(1, 16)))
    config = RfpConfig(fetch_size=16)  # F = S = tiny (1-byte results)
    rows = []
    for process_us in times:
        fetch = run_controlled_process_time(
            "rfp-no-switch",
            float(process_us),
            scale=scale,
            response_bytes=1,
            config=config,
        )
        reply = run_controlled_process_time(
            "serverreply", float(process_us), scale=scale, response_bytes=1
        )
        rows.append(
            [process_us, _fmt(fetch.throughput_mops), _fmt(reply.throughput_mops)]
        )
    crossover = next(
        (row[0] for row in rows if row[1] <= 1.10 * row[2]), rows[-1][0]
    )
    return ExperimentResult(
        "fig9",
        "Repeated remote fetching vs server-reply vs process time",
        ["process_time_us", "remote_fetch_mops", "server_reply_mops"],
        rows,
        paper_expectation=(
            "fetching wins below ~7 us of process time (within 10% above), "
            "server-reply flat at ~2.1 MOPS"
        ),
        observations=f"gain drops within 10% at P ≈ {crossover} µs",
    )


def run_params(scale: Scale) -> ExperimentResult:
    """The §3.2 selection: N, [L, H], and the chosen (R, F)."""
    sizes = [32, 64, 128, 192, 256, 384, 512, 640, 768, 1024, 2048, 4096, 8192]
    curve = inbound_iops_curve(sizes, window_us=scale.window_us * 0.6)
    lower, upper = derive_size_bounds([s for s, _ in curve], [r for _, r in curve])
    fig9 = run_fig9(scale)
    retry_bound, crossover = derive_retry_bound(
        [row[0] for row in fig9.rows],
        [row[1] for row in fig9.rows],
        [row[2] for row in fig9.rows],
        fetch_round_trip_us=measured_fetch_round_trip_us(),
    )
    iops_at = model_inbound_iops()
    small = select_parameters(
        [32 + 9] * 256, iops_at, retry_bound, lower, upper
    )
    mixed_sizes = list(seeded_rng(1).integers(32, 8193, size=512))
    mixed = select_parameters(
        [int(s) for s in mixed_sizes], iops_at, retry_bound, lower, upper
    )
    rows = [
        ["N (retry upper bound)", retry_bound],
        ["crossover process time (us)", _fmt(float(crossover))],
        ["L (bytes)", lower],
        ["H (bytes)", upper],
        ["chosen R, 32B values", small.retry_bound],
        ["chosen F, 32B values", small.fetch_size],
        ["chosen R, mixed 32B-8KB", mixed.retry_bound],
        ["chosen F, mixed 32B-8KB", mixed.fetch_size],
    ]
    return ExperimentResult(
        "params",
        "Parameter selection (R, F) per §3.2",
        ["quantity", "value"],
        rows,
        paper_expectation=(
            "N=5 at P≈7 µs; L=256, H=1024; R=5, F=256 for 32 B values "
            "(F=640 quoted for the mixed workload; Eq. 2 as published "
            "prefers the smaller F — see EXPERIMENTS.md)"
        ),
        observations=(
            f"N={retry_bound}, L={lower}, H={upper}, "
            f"(R,F)=({small.retry_bound},{small.fetch_size}) for 32 B"
        ),
    )


# ----------------------------------------------------------------------
# §4.3 / §4.4 system comparisons
# ----------------------------------------------------------------------


def run_fig10(scale: Scale) -> ExperimentResult:
    """Jakiro throughput vs number of client threads."""
    clients = scale.sweep([7, 21, 35, 49, 70], [7, 14, 21, 28, 35, 42, 49, 56, 63, 70])
    spec = _spec(scale)
    rows = []
    for count in clients:
        result = run_kv(
            "jakiro", spec, server_threads=6, client_threads=count, scale=scale
        )
        rows.append([count, _fmt(result.throughput_mops)])
    peak = max(row[1] for row in rows)
    return ExperimentResult(
        "fig10",
        "Jakiro throughput vs client threads (95% GET, 32 B)",
        ["client_threads", "jakiro_mops"],
        rows,
        paper_expectation="peak ~5.5 MOPS at 35 threads, slight decline after",
        observations=f"peak {peak:.2f} MOPS",
    )


def run_fig11(scale: Scale) -> ExperimentResult:
    """Jakiro vs Pilaf on the 20 Gbps cluster, 50% GET."""
    sizes = scale.sweep([32, 128, 256], [32, 64, 128, 256])
    rows = []
    for size in sizes:
        spec = _spec(scale, get_fraction=0.50, value_sizes=FixedValues(size))
        # Pre-run parameter selection: F grows to cover the fixed response
        # in one read (the paper re-selects F per workload, §3.2).
        fetch = max(256, min(1024, size + 48))
        jakiro = run_kv(
            "jakiro",
            spec,
            server_threads=6,
            client_threads=25,
            scale=scale,
            cluster_spec=CLUSTER_20GBPS,
            config=RfpConfig(fetch_size=fetch),
        )
        pilaf = run_kv(
            "pilaf",
            spec,
            server_threads=1,  # Pilaf's PUT server is single-threaded
            client_threads=25,
            scale=scale,
            cluster_spec=CLUSTER_20GBPS,
            value_limit=max(256, size),
        )
        rows.append(
            [size, _fmt(jakiro.throughput_mops), _fmt(pilaf.throughput_mops)]
        )
    factor = min(row[1] / row[2] for row in rows if row[2] > 0)
    return ExperimentResult(
        "fig11",
        "Jakiro vs Pilaf, uniform 50% GET, 20 Gbps NICs",
        ["value_bytes", "jakiro_mops", "pilaf_mops"],
        rows,
        paper_expectation=(
            "Jakiro ~5.4 MOPS vs Pilaf ~1.3 MOPS (about 4x) across "
            "32-256 B values"
        ),
        observations=f"Jakiro/Pilaf factor >= {factor:.1f}x across the sweep",
    )


def run_fig12(scale: Scale) -> ExperimentResult:
    """The three systems vs number of server threads."""
    threads = scale.sweep([1, 2, 4, 6, 10, 16], [1, 2, 4, 6, 8, 10, 12, 14, 16])
    spec = _spec(scale)
    rows = []
    for count in threads:
        jakiro = run_kv("jakiro", spec, server_threads=count, scale=scale)
        reply = run_kv("serverreply", spec, server_threads=count, scale=scale)
        memcached = run_kv("memcached", spec, server_threads=count, scale=scale)
        rows.append(
            [
                count,
                _fmt(jakiro.throughput_mops),
                _fmt(reply.throughput_mops),
                _fmt(memcached.throughput_mops),
            ]
        )
    peaks = [max(row[i] for row in rows) for i in (1, 2, 3)]
    return ExperimentResult(
        "fig12",
        "Throughput vs server threads (95% GET, 32 B)",
        ["server_threads", "jakiro_mops", "serverreply_mops", "memcached_mops"],
        rows,
        paper_expectation=(
            "Jakiro 5.5 MOPS from ~2 threads; ServerReply peaks 2.1 at 4-6 "
            "threads then declines; RDMA-Memcached CPU-bound, rising to "
            "~1.3 at 16 threads"
        ),
        observations=(
            f"peaks: jakiro {peaks[0]:.2f}, serverreply {peaks[1]:.2f}, "
            f"memcached {peaks[2]:.2f} MOPS"
        ),
    )


def _latency_cdf_rows(results: Dict[str, KvRunResult]) -> List[List]:
    percentiles = [5, 15, 25, 50, 75, 90, 95, 99]
    rows = []
    for p in percentiles:
        rows.append(
            [p] + [_fmt(results[name].percentile_latency(p)) for name in results]
        )
    rows.append(["mean"] + [_fmt(results[name].mean_latency()) for name in results])
    return rows


def _run_latency_cdf(scale: Scale, distribution: str) -> Dict[str, KvRunResult]:
    spec = _spec(scale, distribution=distribution)
    return {
        "jakiro": run_kv("jakiro", spec, server_threads=6, scale=scale),
        "serverreply": run_kv("serverreply", spec, server_threads=6, scale=scale),
        "memcached": run_kv("memcached", spec, server_threads=16, scale=scale),
    }


def run_fig13(scale: Scale) -> ExperimentResult:
    """Latency CDF at peak throughput, uniform 95% GET."""
    results = _run_latency_cdf(scale, "uniform")
    rows = _latency_cdf_rows(results)
    return ExperimentResult(
        "fig13",
        "Latency CDF at peak (uniform, 95% GET, 32 B)",
        ["percentile", "jakiro_us", "serverreply_us", "memcached_us"],
        rows,
        paper_expectation=(
            "Jakiro mean 5.78 µs (99% < 7 µs); ServerReply mean 12.06 µs "
            "but lower 15th percentile; Memcached mean 14.76 µs; all have "
            "tails, Jakiro's shortest"
        ),
        observations=(
            f"means: jakiro {results['jakiro'].mean_latency():.1f}, "
            f"serverreply {results['serverreply'].mean_latency():.1f}, "
            f"memcached {results['memcached'].mean_latency():.1f} µs"
        ),
        series={name: result.latency_us.tolist() for name, result in results.items()},
    )


def run_fig14(scale: Scale) -> ExperimentResult:
    """Jakiro vs ServerReply vs Jakiro-without-switch across process time."""
    times = scale.sweep([1, 3, 5, 7, 9, 12], list(range(1, 13)))
    rows = []
    for process_us in times:
        rfp = run_controlled_process_time("rfp", float(process_us), scale=scale)
        reply = run_controlled_process_time(
            "serverreply", float(process_us), scale=scale
        )
        pure = run_controlled_process_time(
            "rfp-no-switch", float(process_us), scale=scale
        )
        rows.append(
            [
                process_us,
                _fmt(rfp.throughput_mops),
                _fmt(reply.throughput_mops),
                _fmt(pure.throughput_mops),
            ]
        )
    return ExperimentResult(
        "fig14",
        "Hybrid switch: throughput vs request process time",
        ["process_time_us", "jakiro_mops", "serverreply_mops", "jakiro_no_switch_mops"],
        rows,
        paper_expectation=(
            "Jakiro 30-320% above ServerReply below 7 µs; comparable at and "
            "above 7 µs once RFP switches to server-reply"
        ),
        observations=(
            f"at P=1: {rows[0][1]} vs {rows[0][2]} MOPS; at P={rows[-1][0]}: "
            f"{rows[-1][1]} vs {rows[-1][2]} MOPS"
        ),
    )


def run_fig15(scale: Scale) -> ExperimentResult:
    """Client CPU utilization across process time (the hybrid's point)."""
    times = scale.sweep([1, 3, 5, 7, 9, 12], list(range(1, 13)))
    rows = []
    for process_us in times:
        rfp = run_controlled_process_time("rfp", float(process_us), scale=scale)
        rows.append(
            [
                process_us,
                _fmt(100.0 * rfp.client_cpu_utilization),
                int(rfp.extras.get("clients_in_reply_mode", 0)),
            ]
        )
    return ExperimentResult(
        "fig15",
        "Jakiro client CPU utilization vs process time",
        ["process_time_us", "client_cpu_percent", "clients_in_reply_mode"],
        rows,
        paper_expectation=(
            "~100% while remote fetching (P < 7 µs); drops below 30% once "
            "the client switches to server-reply"
        ),
        observations=(
            f"{rows[0][1]}% at P={rows[0][0]} µs vs {rows[-1][1]}% at "
            f"P={rows[-1][0]} µs"
        ),
    )


def _ratio_sweep(scale: Scale, distribution: str) -> List[List]:
    rows = []
    for get_percent in (95, 50, 5):
        spec = _spec(
            scale, get_fraction=get_percent / 100.0, distribution=distribution
        )
        jakiro = run_kv("jakiro", spec, server_threads=6, scale=scale)
        reply = run_kv("serverreply", spec, server_threads=6, scale=scale)
        memcached = run_kv("memcached", spec, server_threads=16, scale=scale)
        rows.append(
            [
                f"{get_percent}%",
                _fmt(jakiro.throughput_mops),
                _fmt(reply.throughput_mops),
                _fmt(memcached.throughput_mops),
            ]
        )
    return rows


def run_fig16(scale: Scale) -> ExperimentResult:
    """Throughput vs GET percentage, uniform."""
    rows = _ratio_sweep(scale, "uniform")
    return ExperimentResult(
        "fig16",
        "Throughput vs GET percentage (uniform, 32 B)",
        ["get_percent", "jakiro_mops", "serverreply_mops", "memcached_mops"],
        rows,
        paper_expectation=(
            "Jakiro ~5.5 MOPS at 95/50/5% GET; ServerReply ~2.1 throughout; "
            "Memcached degrades as writes grow (Jakiro ~14x at 95% PUT)"
        ),
        observations=(
            f"at 5% GET: jakiro {rows[-1][1]}, memcached {rows[-1][3]} MOPS "
            f"(factor {rows[-1][1] / max(rows[-1][3], 1e-9):.1f}x)"
        ),
    )


def run_fig17(scale: Scale) -> ExperimentResult:
    """Throughput vs value size (95% GET, F=640, R=5)."""
    sizes = scale.sweep(
        [32, 128, 512, 1024, 2048, 4096, 8192],
        [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192],
    )
    config = RfpConfig(fetch_size=640)
    rows = []
    for size in sizes:
        spec = _spec(scale, value_sizes=FixedValues(size))
        jakiro = run_kv(
            "jakiro", spec, server_threads=6, scale=scale, config=config
        )
        reply = run_kv("serverreply", spec, server_threads=6, scale=scale)
        memcached = run_kv("memcached", spec, server_threads=16, scale=scale)
        rows.append(
            [
                size,
                _fmt(jakiro.throughput_mops),
                _fmt(reply.throughput_mops),
                _fmt(memcached.throughput_mops),
            ]
        )
    mixed_spec = _spec(scale, value_sizes=UniformValues(32, 8192))
    mixed = [
        run_kv("jakiro", mixed_spec, server_threads=6, scale=scale, config=config),
        run_kv("serverreply", mixed_spec, server_threads=6, scale=scale),
        run_kv("memcached", mixed_spec, server_threads=16, scale=scale),
    ]
    rows.append(["32-8192 mix"] + [_fmt(r.throughput_mops) for r in mixed])
    return ExperimentResult(
        "fig17",
        "Throughput vs value size (uniform, 95% GET)",
        ["value_bytes", "jakiro_mops", "serverreply_mops", "memcached_mops"],
        rows,
        paper_expectation=(
            "Jakiro wins 60-280% up to 2 KB; all three converge at 4 KB+ "
            "(bandwidth); mixed 32B-8KB: 3.58 vs 1.49 vs 1.02 MOPS"
        ),
        observations=(
            f"at 32 B: {rows[0][1]} vs {rows[0][2]} vs {rows[0][3]}; "
            f"mixed: {rows[-1][1]} vs {rows[-1][2]} vs {rows[-1][3]} MOPS"
        ),
    )


def run_fig18(scale: Scale) -> ExperimentResult:
    """Jakiro throughput under different fetch sizes F."""
    fetch_sizes = [256, 512, 640, 748, 1024]
    value_sizes = scale.sweep(
        [32, 256, 512, 640, 1024, 2048],
        [32, 64, 128, 256, 384, 512, 640, 768, 1024, 2048],
    )
    rows = []
    for value_size in value_sizes:
        spec = _spec(scale, value_sizes=FixedValues(value_size))
        row = [value_size]
        for fetch in fetch_sizes:
            result = run_kv(
                "jakiro",
                spec,
                server_threads=6,
                scale=scale,
                config=RfpConfig(fetch_size=fetch),
            )
            row.append(_fmt(result.throughput_mops))
        rows.append(row)
    return ExperimentResult(
        "fig18",
        "Jakiro throughput vs fetch size F (uniform, 95% GET)",
        ["value_bytes"] + [f"F={f}" for f in fetch_sizes],
        rows,
        paper_expectation=(
            "F=640 holds good throughput across 32-640 B values; small F "
            "pays a second read for large values; F=1024 is bandwidth-bound"
        ),
        observations="see per-row optima",
    )


def run_fig19(scale: Scale) -> ExperimentResult:
    """Throughput vs GET percentage under Zipf(0.99)."""
    rows = _ratio_sweep(scale, "zipfian")
    return ExperimentResult(
        "fig19",
        "Throughput vs GET percentage (Zipf .99, 32 B)",
        ["get_percent", "jakiro_mops", "serverreply_mops", "memcached_mops"],
        rows,
        paper_expectation=(
            "Jakiro still ~5.5 MOPS; ServerReply ~2.1; Memcached benefits "
            "from locality and reaches ~2.1 at 95% GET"
        ),
        observations=(
            f"at 95% GET: jakiro {rows[0][1]}, memcached {rows[0][3]} MOPS"
        ),
    )


def run_fig20(scale: Scale) -> ExperimentResult:
    """Latency CDF under the skewed read-intensive workload."""
    results = _run_latency_cdf(scale, "zipfian")
    rows = _latency_cdf_rows(results)
    return ExperimentResult(
        "fig20",
        "Latency CDF (Zipf .99, 95% GET, 32 B)",
        ["percentile", "jakiro_us", "serverreply_us", "memcached_us"],
        rows,
        paper_expectation="Jakiro best mean latency under skew as well",
        observations=(
            f"means: jakiro {results['jakiro'].mean_latency():.1f}, "
            f"serverreply {results['serverreply'].mean_latency():.1f}, "
            f"memcached {results['memcached'].mean_latency():.1f} µs"
        ),
        series={name: result.latency_us.tolist() for name, result in results.items()},
    )


def run_tab3(scale: Scale) -> ExperimentResult:
    """Retry counts per workload (Table 3)."""
    rows = []
    for distribution in ("uniform", "zipfian"):
        for get_percent in (95, 5):
            spec = _spec(
                scale,
                distribution=distribution,
                get_fraction=get_percent / 100.0,
            )
            result = run_kv("jakiro", spec, server_threads=6, scale=scale)
            attempts = np.asarray(result.fetch_attempts, dtype=int)
            if len(attempts) == 0:
                rows.append([distribution, f"{get_percent}%", 0.0, 0])
                continue
            slow = float(np.mean(attempts > 1) * 100.0)
            rows.append(
                [distribution, f"{get_percent}%", _fmt(slow), int(attempts.max())]
            )
    return ExperimentResult(
        "tab3",
        "Fetch retries N per workload (Table 3)",
        ["distribution", "get_percent", "percent_N_gt_1", "largest_N"],
        rows,
        paper_expectation=(
            "N>1 for ~0.09-0.13% of requests; largest N between 4 and 9; "
            "never two consecutive slow calls (no spurious switches)"
        ),
        observations="percentages in the same sub-percent decade as the paper",
    )


#: Table 1 grid descriptors: paradigm -> (send, process, return) cells.
_TAB1_GRID = {
    "server-reply": ("in-bound", "server involved", "out-bound"),
    "server-bypass": ("in-bound", "server bypassed", "in-bound"),
    "RFP": ("in-bound", "server involved", "in-bound"),
    "meaningless": ("in-bound", "server bypassed", "out-bound"),
}


def run_tab1(scale: Scale) -> ExperimentResult:
    """The Table 1 paradigm grid, measured with a tiny echo RPC."""
    spec, result = _run_exp_spec("tab1", scale)
    rows = [
        [
            paradigm,
            *_TAB1_GRID[paradigm],
            _fmt(result.outcome(f"paradigm={paradigm}").metrics["mops"]),
        ]
        for paradigm in _TAB1_GRID
    ]
    return ExperimentResult(
        "tab1",
        spec.title,
        ["paradigm", "request_send", "request_process", "result_return", "mops"],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=f"RFP {rows[2][4]} MOPS tops the grid",
    )
