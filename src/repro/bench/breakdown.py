"""Per-phase latency decomposition of an RFP call.

Uses the tracing hooks to split each call's latency into:

- **send** — call start to the request write's completion (client post +
  write round trip, including any client-NIC queueing),
- **server** — request arrival to response publication (poll queueing +
  handler + stub),
- **fetch** — response publication to the result in the client's hands
  (fetch reads, including wasted retries).

This answers *why* a configuration is slow: a saturated in-bound
pipeline shows up in ``fetch``, an overloaded server in ``server``, and
client-side issue contention in ``send``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.bench.figures import ExperimentResult, _fmt
from repro.bench.harness import Scale
from repro.core.client import RfpClient
from repro.core.server import RfpServer
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

__all__ = ["PhaseBreakdown", "measure_breakdown", "run_breakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Mean per-phase times for one configuration (µs)."""

    send_us: float
    server_us: float
    fetch_us: float
    total_us: float
    calls: int


def measure_breakdown(
    process_us: float,
    client_threads: int = 35,
    server_threads: int = 6,
    scale: Scale = Scale.fast(),
    response_bytes: int = 32,
) -> PhaseBreakdown:
    """Run a controlled-process-time workload and decompose latency."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim)
    response = bytes(response_bytes)

    def handler(payload, ctx):
        return response, process_us

    server = RfpServer(
        sim, cluster, cluster.server, handler, server_threads, tracer=tracer
    )
    clients: List[RfpClient] = []

    def loop(sim, client):
        payload = bytes(16)
        while True:
            yield from client.call(payload)

    for index in range(client_threads):
        machine = cluster.client_machines[index % len(cluster.client_machines)]
        # Names key the trace stitching: they must be unique per client.
        client = RfpClient(
            sim, machine, server, tracer=tracer, name=f"bd-client-{index}"
        )
        clients.append(client)
        sim.process(loop(sim, client))
    sim.run(until=scale.window_us)

    # Stitch phases per (client, seq).  call_started is implicit: the
    # previous call's call_done (or 0 for seq 1) — we instead use the
    # latency recorded at call_done together with the two intermediate
    # marks, which is exact for sequential clients.
    sent: Dict[Tuple[str, int], float] = {}
    published: Dict[Tuple[int, int], float] = {}
    sends, servers, fetches, totals = [], [], [], []
    for event in tracer.events():
        if event.label == "request_sent":
            sent[(event.data["client"], event.data["seq"])] = event.at_us
        elif event.label == "response_published":
            published[(event.data["client"], event.data["seq"])] = event.at_us
    # Client ids on the server side differ from client names; align by
    # matching the k-th published response of channel c to the k-th sent
    # request of the client bound to that channel.
    channel_of = {
        client.name: client.channel.client_id for client in clients
    }
    for event in tracer.events(label="call_done"):
        name = event.data["client"]
        seq = event.data["seq"]
        latency = event.data["latency_us"]
        send_done = sent.get((name, seq))
        publish = published.get((channel_of[name], seq))
        if send_done is None or publish is None:
            continue
        done = event.at_us
        started = done - latency
        sends.append(send_done - started)
        servers.append(publish - send_done)
        fetches.append(done - publish)
        totals.append(latency)
    if not totals:
        raise RuntimeError("no complete calls traced")
    return PhaseBreakdown(
        send_us=float(np.mean(sends)),
        server_us=float(np.mean(servers)),
        fetch_us=float(np.mean(fetches)),
        total_us=float(np.mean(totals)),
        calls=len(totals),
    )


def run_breakdown(scale: Scale) -> ExperimentResult:
    """The ``breakdown`` experiment: phase decomposition across load."""
    rows = []
    for process_us in scale.sweep([0.2, 2.0, 5.0], [0.2, 1.0, 2.0, 3.0, 5.0]):
        breakdown = measure_breakdown(process_us, scale=scale)
        rows.append(
            [
                process_us,
                _fmt(breakdown.send_us),
                _fmt(breakdown.server_us),
                _fmt(breakdown.fetch_us),
                _fmt(breakdown.total_us),
            ]
        )
    return ExperimentResult(
        "breakdown",
        "Per-phase latency decomposition of an RFP call",
        ["process_time_us", "send_us", "server_us", "fetch_us", "total_us"],
        rows,
        paper_expectation=(
            "not a paper figure — explains Fig. 13: at peak load most of "
            "the latency sits in the server phase (queueing for worker "
            "threads), while send and fetch stay near their unloaded costs"
        ),
        observations=f"at P={rows[0][0]}: phases {rows[0][1]}/{rows[0][2]}/{rows[0][3]} µs",
    )
