"""Cluster-layer experiments: shard scaling and failover resilience.

- ``ext-cluster-scaling`` — aggregate throughput of an
  :class:`~repro.cluster.RfpCluster` as the shard count grows 1 → 6
  under a *fixed* client population.  §4.5's closing claim, taken past
  the three machines the paper had: the in-bound ceiling is per-NIC, so
  adding server NICs multiplies the aggregate until the client side
  becomes the limit.
- ``ext-cluster-failover`` — throughput through a single-shard crash
  with replication factor 2.  The paper's hybrid rule is what keeps the
  dip graceful: calls stuck on the dead shard degrade to server-reply
  (a cheap blocked wait) instead of spinning on remote fetches, routers
  re-route to the replica, and healthy shards keep their NICs
  in-bound-only throughout — both asserted by the invariant checkers.
  Primary-backup writes make the headline durability claim checkable:
  after the run, every acknowledged write must be readable from a
  surviving replica.
- ``ext-cluster-rejoin`` — extends failover past the takeover: the
  victim is repaired mid-window, streams its ranges back from the
  surviving replicas, catches up on writes acknowledged during its
  outage, and atomically re-enters the ring.
- ``ext-cluster-rebalance`` — no crash at all: a Zipf hot-set pinned
  onto one shard saturates its in-bound NIC while the others idle,
  and the load-aware :class:`~repro.cluster.migration.RebalanceController`
  migrates the hot vnodes off it live, through the same watermarked
  range-migration engine recovery uses.  Post-rebalance throughput
  must beat the no-rebalance baseline by >=1.5x with zero lost acked
  writes and donors in-bound-only throughout.
- ``ext-txn-structures`` — the paper's Table 1 verdict applied to a
  *data structure*: the same FIFO queue built with one-sided verbs
  (client-driven FAA/CAS on the host's memory) and as an RFP-style
  RPC service, swept over client contention, alongside RF=2 multi-key
  transactions on the same fabric.  The one-sided build's per-op verb
  count starts at ~3 and climbs with lost CAS races; the RPC build is
  pinned at exactly 1 request per op — so past the paper's ~2-3
  round-trip crossover the RPC queue wins outright, while the
  transaction audit certifies zero torn groups and zero lost acked
  writes under the full queue load.

The experiments themselves are declared in :mod:`repro.exp.library` and
measured by the shared ``cluster`` driver (topology build, tracing,
ledger workload, phase meters, fault plan, and the audit suites that
raise :class:`~repro.errors.BenchError` on any breach — a passing run
*is* the certificate).  These wrappers only shape the outcomes into the
original :class:`~repro.bench.figures.ExperimentResult` rows.
"""

from __future__ import annotations

from typing import List

from repro.bench.figures import ExperimentResult, _fmt
from repro.bench.harness import Scale
from repro.errors import BenchError

__all__ = [
    "run_ext_cluster_scaling",
    "run_ext_cluster_failover",
    "run_ext_cluster_rejoin",
    "run_ext_cluster_rebalance",
    "run_ext_txn_structures",
]

#: Columns shared by the two crash experiments' phase tables.
_PHASE_COLUMNS = [
    "phase",
    "start_us",
    "end_us",
    "mops",
    "fraction_of_pre",
    "lost_acked_writes",
    "acked_keys",
]


def _run_exp_spec(experiment_id: str, scale: Scale):
    """Lazy import: :mod:`repro.exp` initializes through this package."""
    from repro.exp.library import SPECS
    from repro.exp.runner import ExperimentRunner, default_observers

    spec = SPECS[experiment_id]
    runner = ExperimentRunner(observers=default_observers())
    return spec, runner.run(spec, scale)


def run_ext_cluster_scaling(scale: Scale) -> ExperimentResult:
    """Aggregate MOPS vs shard count (1 → 6) at fixed offered load."""
    spec, result = _run_exp_spec("ext-cluster-scaling", scale)
    rows = [
        [
            outcome.condition.axis["shards"],
            outcome.condition.topology.client_threads,
            _fmt(outcome.metrics["run_mops"]),
        ]
        for outcome in result.outcomes
    ]
    return ExperimentResult(
        "ext-cluster-scaling",
        spec.title,
        ["shards", "client_threads", "aggregate_mops"],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"{rows[0][2]} -> {rows[-1][2]} MOPS from "
            f"{rows[0][0]} to {rows[-1][0]} shards"
        ),
    )


def _phase_rows(condition, metrics) -> List[List]:
    """The crash experiments' phase table from one condition's metrics."""
    from repro.exp.spec import phases_of

    window = condition.scale.window_us
    phases = phases_of(condition)
    pre_mops = metrics[f"{phases[0].name}_mops"]
    return [
        [
            phase.name,
            window * phase.start_frac,
            window * phase.end_frac,
            _fmt(metrics[f"{phase.name}_mops"]),
            _fmt(metrics[f"{phase.name}_mops"] / max(pre_mops, 1e-9)),
            metrics["lost_acked_writes"],
            metrics["acked_keys"],
        ]
        for phase in phases
    ]


def run_ext_cluster_failover(scale: Scale) -> ExperimentResult:
    """Throughput through a single-shard crash (3 shards, RF=2).

    The run kills one shard mid-window and measures three phases:
    ``pre`` (steady state), ``dip`` (detection + takeover), ``post``
    (rebalanced steady state), then audits the durability and protocol
    claims (driver-side), so a passing run *is* the certificate.
    """
    spec, result = _run_exp_spec("ext-cluster-failover", scale)
    outcome = result.outcome("base")
    rows = _phase_rows(outcome.condition, outcome.metrics)
    return ExperimentResult(
        "ext-cluster-failover",
        spec.title,
        _PHASE_COLUMNS,
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"pre {rows[0][3]} MOPS, dip {rows[1][3]} "
            f"({rows[1][4]}x), post {rows[2][3]} ({rows[2][4]}x); "
            f"{outcome.metrics['acked_keys']} acked keys audited, "
            f"{outcome.metrics['lost_acked_writes']} lost"
        ),
    )


def run_ext_cluster_rejoin(scale: Scale) -> ExperimentResult:
    """Throughput through a full crash -> recover -> rejoin cycle.

    Five phases — ``pre``, ``dip`` (detection + takeover), ``outage``
    (two-shard steady state), ``rejoin`` (transfer traffic shares donor
    NICs), ``post`` (restored three-shard steady state) — with the
    driver-side audits that make rejoin safe: completed watermarked
    handoff restoring the pre-crash ring before the ``post`` window,
    per-replica durability of every acknowledged write, donors
    in-bound-only through the transfer, the rejoiner's out-bound verbs
    exactly its ranged reads, and post-rejoin throughput within 5% of
    pre-crash.
    """
    spec, result = _run_exp_spec("ext-cluster-rejoin", scale)
    outcome = result.outcome("base")
    metrics = outcome.metrics
    rows = _phase_rows(outcome.condition, metrics)
    return ExperimentResult(
        "ext-cluster-rejoin",
        spec.title,
        _PHASE_COLUMNS,
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"pre {rows[0][3]} MOPS, outage {rows[2][3]} "
            f"({rows[2][4]}x), post {rows[4][3]} ({rows[4][4]}x); "
            f"handoff at {metrics['handoff_at_us']:.0f}us moved "
            f"{metrics['transferred_keys']} keys "
            f"({metrics['catchup_keys']} catch-up) in "
            f"{metrics['batches']} batches; "
            f"{metrics['acked_keys']} acked keys audited, "
            f"{metrics['lost_acked_writes']} lost"
        ),
    )


def run_ext_cluster_rebalance(scale: Scale) -> ExperimentResult:
    """Live vnode rebalancing under a pinned Zipf hot-set (3 shards).

    Two conditions share one skewed workload — Zipf(1.2) GETs whose
    hottest ranks are all pinned onto ``shard1`` — differing only in
    whether the :class:`~repro.cluster.migration.RebalanceController`
    runs.  Three phases: ``pre`` (skewed steady state), ``spread``
    (the controller observes, picks hot vnodes, and migrates them
    live), ``post`` (rebalanced steady state).  The driver-side audit
    certifies the moves (clean cutovers, zero lost acked writes,
    donors in-bound-only); this wrapper additionally enforces the
    headline: rebalanced ``post`` throughput must be >=1.5x the
    no-rebalance baseline's.
    """
    spec, result = _run_exp_spec("ext-cluster-rebalance", scale)
    baseline = result.outcome("rebalance=False")
    rebalanced = result.outcome("rebalance=True")

    def condition_rows(outcome) -> List[List]:
        from repro.exp.spec import phases_of

        window = outcome.condition.scale.window_us
        return [
            [
                "on" if outcome.condition.settings.get("rebalance") else "off",
                phase.name,
                window * phase.start_frac,
                window * phase.end_frac,
                _fmt(outcome.metrics[f"{phase.name}_mops"]),
                outcome.metrics["moved_vnodes"],
                outcome.metrics["lost_acked_writes"],
                outcome.metrics["acked_keys"],
            ]
            for phase in phases_of(outcome.condition)
        ]

    rows = condition_rows(baseline) + condition_rows(rebalanced)
    base_post = baseline.metrics["post_mops"]
    rebal_post = rebalanced.metrics["post_mops"]
    speedup = rebal_post / max(base_post, 1e-9)
    if speedup < 1.5:
        raise BenchError(
            f"post-rebalance throughput {rebal_post:.3f} MOPS is only "
            f"{speedup:.2f}x the no-rebalance baseline {base_post:.3f} "
            "MOPS (bar: 1.5x)"
        )
    return ExperimentResult(
        "ext-cluster-rebalance",
        spec.title,
        [
            "rebalance",
            "phase",
            "start_us",
            "end_us",
            "mops",
            "moved_vnodes",
            "lost_acked_writes",
            "acked_keys",
        ],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"post {_fmt(base_post)} -> {_fmt(rebal_post)} MOPS "
            f"({speedup:.2f}x) after {rebalanced.metrics['migrations']} "
            f"migrations moved {rebalanced.metrics['moved_vnodes']} vnodes "
            f"({rebalanced.metrics['migrated_keys']} keys, "
            f"{rebalanced.metrics['catchup_keys']} catch-up); "
            f"{rebalanced.metrics['acked_keys']} acked keys audited, "
            f"{rebalanced.metrics['lost_acked_writes']} lost"
        ),
    )


#: The paper's crossover budget: a one-sided design beats RPC only
#: while it spends fewer remote round-trips than an RPC costs (~2-3,
#: §2-§3); past that, amplification hands the win to the RPC build.
_CROSSOVER_ROUND_TRIPS = 3.0


def run_ext_txn_structures(scale: Scale) -> ExperimentResult:
    """Multi-key transactions + the twice-built FIFO queue.

    Every condition runs the same bounded transactional ledger (RF=2
    multi-PUTs, one lock-contended group) next to one build of the
    FIFO queue — ``structure=one-sided`` (client FAA/CAS verbs against
    the host's memory) or ``structure=rfp`` (one RPC per op) — swept
    over ``queue_clients``.  The driver's audits already certify the
    hard claims (quiescence, conservation, host NIC in-bound-only,
    zero torn groups, zero lost acked writes, zero leaked lock
    leases); this wrapper enforces the headline *shape*: the RPC
    build's per-op cost is flat at 1, the one-sided build's grows with
    contention, and once it exceeds the ~3-round-trip crossover the
    RPC queue's throughput wins outright.
    """
    spec, result = _run_exp_spec("ext-txn-structures", scale)
    by_condition = {}
    for outcome in result.outcomes:
        settings = outcome.condition.settings
        key = (str(settings["structure"]), int(settings["queue_clients"]))
        by_condition[key] = outcome.metrics
    counts = sorted({clients for _, clients in by_condition})

    rows = [
        [
            structure,
            clients,
            _fmt(metrics["queue_mops"]),
            _fmt(metrics["remote_ops_per_op"]),
            metrics["cas_retries"],
            _fmt(metrics["txn_mops"]),
            metrics["txn_committed"],
            metrics["txn_aborted"],
            metrics["torn_groups"],
            metrics["lost_acked_writes"],
        ]
        for (structure, clients), metrics in sorted(
            by_condition.items(), key=lambda item: (item[0][1], item[0][0])
        )
    ]

    for clients in counts:
        # Integer form of "exactly 1 request per op, always".
        metrics = by_condition[("rfp", clients)]
        if metrics["queue_remote_ops"] != metrics["queue_ops"]:
            raise BenchError(
                f"RFP queue cost must be exactly 1 request/op at every "
                f"contention level; saw {metrics['queue_remote_ops']} "
                f"requests for {metrics['queue_ops']} ops at {clients} clients"
            )
    one_sided_costs = [
        by_condition[("one-sided", clients)]["remote_ops_per_op"]
        for clients in counts
    ]
    if one_sided_costs[-1] <= one_sided_costs[0]:
        raise BenchError(
            f"one-sided per-op verb count did not grow with contention: "
            f"{one_sided_costs}"
        )
    top = counts[-1]
    top_one_sided = by_condition[("one-sided", top)]
    top_rfp = by_condition[("rfp", top)]
    if top_one_sided["remote_ops_per_op"] <= _CROSSOVER_ROUND_TRIPS:
        raise BenchError(
            f"at {top} clients the one-sided build spent only "
            f"{top_one_sided['remote_ops_per_op']:.2f} round-trips/op — "
            f"never crossed the paper's ~{_CROSSOVER_ROUND_TRIPS:.0f} "
            "round-trip budget"
        )
    if top_rfp["queue_mops"] <= top_one_sided["queue_mops"]:
        raise BenchError(
            f"past the crossover the RFP queue must win: "
            f"{top_rfp['queue_mops']:.3f} vs "
            f"{top_one_sided['queue_mops']:.3f} MOPS at {top} clients"
        )
    return ExperimentResult(
        "ext-txn-structures",
        spec.title,
        [
            "structure",
            "queue_clients",
            "queue_mops",
            "remote_ops_per_op",
            "cas_retries",
            "txn_mops",
            "txn_committed",
            "txn_aborted",
            "torn_groups",
            "lost_acked_writes",
        ],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"one-sided cost grew {one_sided_costs[0]:.2f} -> "
            f"{one_sided_costs[-1]:.2f} round-trips/op over "
            f"{counts[0]} -> {top} clients while RFP held 1.00; at "
            f"{top} clients RFP wins "
            f"{top_rfp['queue_mops']:.3f} vs "
            f"{top_one_sided['queue_mops']:.3f} MOPS; "
            f"{top_rfp['txn_committed']} txns committed with 0 torn "
            "groups, 0 lost acked writes, 0 leaked leases"
        ),
    )
