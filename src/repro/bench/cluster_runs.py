"""Cluster-layer experiments: shard scaling and failover resilience.

- ``ext-cluster-scaling`` — aggregate throughput of an
  :class:`~repro.cluster.RfpCluster` as the shard count grows 1 → 6
  under a *fixed* client population.  §4.5's closing claim, taken past
  the three machines the paper had: the in-bound ceiling is per-NIC, so
  adding server NICs multiplies the aggregate until the client side
  becomes the limit.
- ``ext-cluster-failover`` — throughput through a single-shard crash
  with replication factor 2.  The paper's hybrid rule is what keeps the
  dip graceful: calls stuck on the dead shard degrade to server-reply
  (a cheap blocked wait) instead of spinning on remote fetches, routers
  re-route to the replica, and healthy shards keep their NICs
  in-bound-only throughout — both asserted by the invariant checkers.
  Primary-backup writes make the headline durability claim checkable:
  after the run, every acknowledged write must be readable from a
  surviving replica.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.bench.figures import ExperimentResult, _fmt
from repro.bench.harness import Scale
from repro.cluster import ClusterConfig, FaultPlan, RfpCluster
from repro.core.config import RfpConfig
from repro.errors import BenchError
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker, RfpInvariantChecker
from repro.sim.core import Simulator
from repro.sim.monitor import ThroughputMeter
from repro.sim.random import seeded_rng
from repro.sim.trace import Tracer
from repro.workloads.ycsb import WorkloadSpec, YcsbWorkload

__all__ = [
    "run_ext_cluster_scaling",
    "run_ext_cluster_failover",
    "run_ext_cluster_rejoin",
]

#: 18-port InfiniScale-IV switch — the largest cluster the testbed wires.
_CLUSTER18 = ClusterSpec(
    machine=CLUSTER_EUROSYS17.machine,
    machines=18,
    switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
)

_SEQ = struct.Struct("<Q")
_VALUE_BYTES = 64


def run_ext_cluster_scaling(scale: Scale) -> ExperimentResult:
    """Aggregate MOPS vs shard count (1 → 6) at fixed offered load."""
    shard_counts = scale.sweep([1, 3, 6], [1, 2, 3, 4, 6])
    # Fixed client population on the machines no shard configuration
    # uses, so every row offers the same load.
    client_machine_slots = range(max(shard_counts), _CLUSTER18.machines)
    client_threads = 5 * len(client_machine_slots)
    rows = []
    for shards in shard_counts:
        sim = Simulator()
        cluster = build_cluster(sim, _CLUSTER18)
        service = RfpCluster(
            sim,
            cluster,
            shards=shards,
            cluster_config=ClusterConfig(replication_factor=1, op_timeout_us=500.0),
        )
        workload = YcsbWorkload(WorkloadSpec(records=scale.records))
        service.preload(workload.dataset())
        window = scale.window_us
        warmup = window * 0.25
        meter = ThroughputMeter(window_start=warmup, window_end=window)

        def loop(sim, client, operations):
            for op in operations:
                if op.is_get:
                    yield from client.get(op.key)
                else:
                    yield from client.put(op.key, op.value)
                meter.record(sim.now)

        machines = [cluster.machines[slot] for slot in client_machine_slots]
        for index in range(client_threads):
            client = service.connect(machines[index % len(machines)], name=f"c{index}")
            sim.process(loop(sim, client, workload.operations(f"c{index}")))
        sim.run(until=window)
        rows.append([shards, client_threads, _fmt(meter.mops(elapsed=window - warmup))])
    return ExperimentResult(
        "ext-cluster-scaling",
        "Cluster: aggregate throughput vs shard count",
        ["shards", "client_threads", "aggregate_mops"],
        rows,
        paper_expectation=(
            "§4.5: the ~5.5 MOPS in-bound ceiling is per-NIC; sharding "
            "across server machines multiplies aggregate throughput until "
            "the fixed client population becomes the limit"
        ),
        observations=(
            f"{rows[0][2]} -> {rows[-1][2]} MOPS from "
            f"{rows[0][0]} to {rows[-1][0]} shards"
        ),
    )


def _failover_workload(
    records: int, clients: int
) -> Tuple[List[bytes], Dict[int, List[bytes]]]:
    """All keys, plus each client's disjoint set of *write* keys.

    Disjoint write ownership makes the acknowledged-write ledger exact:
    per key, the owner's latest acked sequence number is the durability
    obligation, with no cross-client ordering to reason about.
    """
    keys = [f"key{i:06d}".encode() for i in range(records)]
    per_client = max(1, records // clients)
    owned = {
        c: keys[c * per_client : (c + 1) * per_client] for c in range(clients)
    }
    return keys, owned


def _seq_value(seq: int) -> bytes:
    return _SEQ.pack(seq) + b"\x00" * (_VALUE_BYTES - _SEQ.size)


def _stored_seq(value: bytes) -> int:
    return _SEQ.unpack_from(value)[0]


def run_ext_cluster_failover(scale: Scale) -> ExperimentResult:
    """Throughput through a single-shard crash (3 shards, RF=2).

    The run kills one shard mid-window and measures three phases:
    ``pre`` (steady state), ``dip`` (detection + takeover), ``post``
    (rebalanced steady state).  It then audits the durability and
    protocol claims and raises :class:`BenchError` on any breach, so a
    passing run *is* the certificate.
    """
    shards = 3
    sim = Simulator()
    cluster = build_cluster(sim, _CLUSTER18)
    cluster_tracer = Tracer(sim, categories=["cluster"])
    shard_tracers = {f"shard{i}": Tracer(sim, capacity=1) for i in range(shards)}
    checkers = {
        name: RfpInvariantChecker(
            config=RfpConfig(consecutive_slow_calls=1)
        ).attach(tracer)
        for name, tracer in shard_tracers.items()
    }
    cluster_checker = ClusterInvariantChecker().attach(cluster_tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        # consecutive_slow_calls=1 lets a call stuck on the dead shard
        # degrade to server-reply after one slow call (§3.2's knob, tuned
        # for fast failover); zero store jitter keeps healthy shards from
        # ever triggering the same rule organically.
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=cluster_tracer,
        shard_tracers=shard_tracers,
    )
    # Client-limited load: 24 threads keep healthy shards below the NIC
    # ceiling, so the dip measures failover cost, not saturation noise.
    client_threads = 24
    records = min(scale.records, 240)
    keys, owned_writes = _failover_workload(records, client_threads)
    service.preload([(key, _seq_value(0)) for key in keys])

    window = scale.window_us
    warmup = window * 0.25
    kill_at = window * 0.5
    dip_end = window * 0.6
    victim = "shard1"
    pre = ThroughputMeter(window_start=warmup, window_end=kill_at, name="pre")
    dip = ThroughputMeter(window_start=kill_at, window_end=dip_end, name="dip")
    post = ThroughputMeter(window_start=dip_end, window_end=window, name="post")
    #: key -> highest acknowledged write sequence.
    acked: Dict[bytes, int] = {}

    def loop(sim, client, client_id):
        rng = seeded_rng(client_id)
        my_keys = owned_writes[client_id]
        sequence = 0
        while True:
            turn = sequence % 4
            if turn == 3:
                key = my_keys[(sequence // 4) % len(my_keys)]
                sequence += 1
                yield from client.put(key, _seq_value(sequence))
                acked[key] = max(acked.get(key, 0), sequence)
            else:
                sequence += 1
                key = keys[int(rng.integers(len(keys)))]
                yield from client.get(key)
            now = sim.now
            pre.record(now)
            dip.record(now)
            post.record(now)

    for index in range(client_threads):
        machine = cluster.machines[shards + index % (_CLUSTER18.machines - shards)]
        client = service.connect(machine, name=f"c{index}")
        sim.process(loop(sim, client, index))
    sim.schedule(kill_at, service.kill, victim)
    sim.run(until=window)

    pre_mops = pre.mops(elapsed=kill_at - warmup)
    dip_mops = dip.mops(elapsed=dip_end - kill_at)
    post_mops = post.mops(elapsed=window - dip_end)

    # --- Audit 1: zero lost acknowledged writes. ----------------------
    lost = 0
    for key, sequence in acked.items():
        stored = max(
            _stored_seq(service.peek(name, key) or _seq_value(0))
            for name in service.ring.lookup_replicas(key, 2)
        )
        if stored < sequence:
            lost += 1
    # --- Audit 2: protocol invariants, per shard and cluster-wide. ----
    cluster_checker.assert_clean()
    failed_over = {event.shard for event in service.failover.events}
    if failed_over != {victim}:
        raise BenchError(f"expected exactly one failover of {victim}: {failed_over}")
    for name, checker in checkers.items():
        handle = service.shards[name]
        # Every shard — dead included — must have stayed in-bound-only:
        # healthy shards because no client ever degraded them, the dead
        # one because a halted server cannot push replies.  Exact
        # in-bound matching is off because the open-loop clients leave
        # posted-but-unserved ops in the NIC pipeline at the window cut.
        checker.check_nic_accounting(
            handle.jakiro.server, expect_inbound_only=True, strict_inbound=False
        )
        checker.assert_clean()
    if lost:
        raise BenchError(f"{lost} acknowledged writes lost across failover")

    rows = [
        ["pre", warmup, kill_at, _fmt(pre_mops), 1.0, lost, len(acked)],
        [
            "dip",
            kill_at,
            dip_end,
            _fmt(dip_mops),
            _fmt(dip_mops / max(pre_mops, 1e-9)),
            lost,
            len(acked),
        ],
        [
            "post",
            dip_end,
            window,
            _fmt(post_mops),
            _fmt(post_mops / max(pre_mops, 1e-9)),
            lost,
            len(acked),
        ],
    ]
    return ExperimentResult(
        "ext-cluster-failover",
        "Cluster: throughput through a single-shard crash (RF=2)",
        [
            "phase",
            "start_us",
            "end_us",
            "mops",
            "fraction_of_pre",
            "lost_acked_writes",
            "acked_keys",
        ],
        rows,
        paper_expectation=(
            "the hybrid rule (§3.2) degrades calls stuck on the dead shard "
            "to a cheap blocked wait while routing falls over to replicas: "
            "the dip stays shallow, steady state recovers, no acked write "
            "is lost, and healthy shards stay in-bound-only"
        ),
        observations=(
            f"pre {rows[0][3]} MOPS, dip {rows[1][3]} "
            f"({rows[1][4]}x), post {rows[2][3]} ({rows[2][4]}x); "
            f"{len(acked)} acked keys audited, {lost} lost"
        ),
    )


def run_ext_cluster_rejoin(scale: Scale) -> ExperimentResult:
    """Throughput through a full crash -> recover -> rejoin cycle.

    Extends ``ext-cluster-failover`` past the takeover: the victim is
    *repaired* mid-window, streams its ranges back from the surviving
    replicas (rejoiner-pulled ranged reads, so donors stay
    in-bound-only), catches up on writes acknowledged during its outage,
    and atomically re-enters the ring.  Five phases are measured —
    ``pre``, ``dip`` (detection + takeover), ``outage`` (two-shard
    steady state), ``rejoin`` (transfer traffic shares donor NICs),
    ``post`` (restored three-shard steady state) — and the run audits
    the claims that make rejoin safe, raising :class:`BenchError` on any
    breach:

    - the handoff completes before the ``post`` window opens, and the
      restored ring equals the pre-crash ring;
    - zero acknowledged writes are lost, *per replica*: every key's
      latest acked sequence is readable from every final-ring replica,
      the rejoined shard included (no stale reads below the watermark);
    - cluster + per-shard protocol invariants hold, donors stay
      in-bound-only through the transfer traffic, and the rejoiner's
      only out-bound verbs are its ranged-read requests.
    """
    shards = 3
    sim = Simulator()
    cluster = build_cluster(sim, _CLUSTER18)
    cluster_tracer = Tracer(sim, categories=["cluster"])
    shard_tracers = {f"shard{i}": Tracer(sim, capacity=1) for i in range(shards)}
    checkers = {
        name: RfpInvariantChecker(
            config=RfpConfig(consecutive_slow_calls=1)
        ).attach(tracer)
        for name, tracer in shard_tracers.items()
    }
    cluster_checker = ClusterInvariantChecker().attach(cluster_tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=cluster_tracer,
        shard_tracers=shard_tracers,
    )
    client_threads = 24
    records = min(scale.records, 240)
    keys, owned_writes = _failover_workload(records, client_threads)
    service.preload([(key, _seq_value(0)) for key in keys])
    pre_crash_ring = list(service.ring.nodes)

    window = scale.window_us
    warmup = window * 0.25
    kill_at = window * 0.4
    dip_end = window * 0.5
    repair_at = window * 0.6
    post_start = window * 0.8
    victim = "shard1"
    pre = ThroughputMeter(window_start=warmup, window_end=kill_at, name="pre")
    dip = ThroughputMeter(window_start=kill_at, window_end=dip_end, name="dip")
    outage = ThroughputMeter(window_start=dip_end, window_end=repair_at, name="outage")
    rejoin = ThroughputMeter(
        window_start=repair_at, window_end=post_start, name="rejoin"
    )
    post = ThroughputMeter(window_start=post_start, window_end=window, name="post")
    meters = [pre, dip, outage, rejoin, post]
    acked: Dict[bytes, int] = {}

    def loop(sim, client, client_id):
        rng = seeded_rng(client_id)
        my_keys = owned_writes[client_id]
        sequence = 0
        while True:
            turn = sequence % 4
            if turn == 3:
                key = my_keys[(sequence // 4) % len(my_keys)]
                sequence += 1
                yield from client.put(key, _seq_value(sequence))
                acked[key] = max(acked.get(key, 0), sequence)
            else:
                sequence += 1
                key = keys[int(rng.integers(len(keys)))]
                yield from client.get(key)
            now = sim.now
            for meter in meters:
                meter.record(now)

    for index in range(client_threads):
        machine = cluster.machines[shards + index % (_CLUSTER18.machines - shards)]
        client = service.connect(machine, name=f"c{index}")
        sim.process(loop(sim, client, index))
    plan = FaultPlan.kill_then_repair(victim, kill_at, repair_at)
    plan.arm(sim, service)
    sim.run(until=window)

    pre_mops = pre.mops(elapsed=kill_at - warmup)
    phase_mops = [
        pre_mops,
        dip.mops(elapsed=dip_end - kill_at),
        outage.mops(elapsed=repair_at - dip_end),
        rejoin.mops(elapsed=post_start - repair_at),
        post.mops(elapsed=window - post_start),
    ]

    # --- Audit 1: the handoff completed and restored the ring. --------
    if len(plan.recoveries) != 1:
        raise BenchError(f"expected exactly one recovery: {plan.recoveries}")
    recovery = plan.recoveries[0]
    if recovery.active or recovery.aborted:
        raise BenchError(
            f"recovery of {victim} did not complete: {recovery!r}"
        )
    handoff_at = recovery.event.finished_at_us
    if handoff_at is None or handoff_at >= post_start:
        raise BenchError(
            f"handoff at {handoff_at} missed the post window ({post_start})"
        )
    if service.ring.nodes != pre_crash_ring:
        raise BenchError(
            f"rejoin did not restore the pre-crash ring: "
            f"{service.ring.nodes} != {pre_crash_ring}"
        )
    # --- Audit 2: zero lost acked writes, per final-ring replica. -----
    lost = 0
    for key, sequence in acked.items():
        for name in service.ring.lookup_replicas(key, 2):
            stored = _stored_seq(service.peek(name, key) or _seq_value(0))
            if stored < sequence:
                lost += 1
    # --- Audit 3: protocol invariants + NIC profiles. -----------------
    cluster_checker.assert_clean()
    for name, checker in checkers.items():
        handle = service.shards[name]
        if name == victim:
            # The rejoiner's only out-bound verbs are its ranged-read
            # requests — one per transfer batch.
            outbound = handle.machine.rnic.outbound_ops
            if outbound != recovery.event.batches:
                raise BenchError(
                    f"rejoiner posted {outbound} out-bound ops; expected "
                    f"{recovery.event.batches} ranged reads"
                )
        else:
            # Donors served the transfer stream *in-bound*, alongside
            # live traffic: the paper's server NIC profile survives
            # recovery.
            checker.check_nic_accounting(
                handle.jakiro.server, expect_inbound_only=True, strict_inbound=False
            )
        checker.assert_clean()
    if lost:
        raise BenchError(f"{lost} acknowledged writes lost across the cycle")
    if phase_mops[4] < 0.95 * pre_mops:
        raise BenchError(
            f"post-rejoin throughput {phase_mops[4]:.3f} MOPS fell below "
            f"95% of pre-crash {pre_mops:.3f} MOPS"
        )

    bounds = [warmup, kill_at, dip_end, repair_at, post_start, window]
    names = ["pre", "dip", "outage", "rejoin", "post"]
    rows = [
        [
            names[i],
            bounds[i],
            bounds[i + 1],
            _fmt(phase_mops[i]),
            _fmt(phase_mops[i] / max(pre_mops, 1e-9)),
            lost,
            len(acked),
        ]
        for i in range(5)
    ]
    return ExperimentResult(
        "ext-cluster-rejoin",
        "Cluster: crash, recovery transfer, and ring rejoin (RF=2)",
        [
            "phase",
            "start_us",
            "end_us",
            "mops",
            "fraction_of_pre",
            "lost_acked_writes",
            "acked_keys",
        ],
        rows,
        paper_expectation=(
            "recovery traffic rides the same in-bound NIC pipeline the "
            "paper's fetch path uses, so donors stay in-bound-only and "
            "the transfer coexists with live load; the watermarked "
            "handoff restores the pre-crash ring with zero lost acked "
            "writes and post-rejoin throughput within 5% of pre-crash"
        ),
        observations=(
            f"pre {rows[0][3]} MOPS, outage {rows[2][3]} "
            f"({rows[2][4]}x), post {rows[4][3]} ({rows[4][4]}x); "
            f"handoff at {handoff_at:.0f}us moved "
            f"{recovery.event.transferred_keys} keys "
            f"({recovery.event.catchup_keys} catch-up) in "
            f"{recovery.event.batches} batches; "
            f"{len(acked)} acked keys audited, {lost} lost"
        ),
    )
