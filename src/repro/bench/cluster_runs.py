"""Cluster-layer experiments: shard scaling and failover resilience.

- ``ext-cluster-scaling`` — aggregate throughput of an
  :class:`~repro.cluster.RfpCluster` as the shard count grows 1 → 6
  under a *fixed* client population.  §4.5's closing claim, taken past
  the three machines the paper had: the in-bound ceiling is per-NIC, so
  adding server NICs multiplies the aggregate until the client side
  becomes the limit.
- ``ext-cluster-failover`` — throughput through a single-shard crash
  with replication factor 2.  The paper's hybrid rule is what keeps the
  dip graceful: calls stuck on the dead shard degrade to server-reply
  (a cheap blocked wait) instead of spinning on remote fetches, routers
  re-route to the replica, and healthy shards keep their NICs
  in-bound-only throughout — both asserted by the invariant checkers.
  Primary-backup writes make the headline durability claim checkable:
  after the run, every acknowledged write must be readable from a
  surviving replica.
- ``ext-cluster-rejoin`` — extends failover past the takeover: the
  victim is repaired mid-window, streams its ranges back from the
  surviving replicas, catches up on writes acknowledged during its
  outage, and atomically re-enters the ring.
- ``ext-cluster-rebalance`` — no crash at all: a Zipf hot-set pinned
  onto one shard saturates its in-bound NIC while the others idle,
  and the load-aware :class:`~repro.cluster.migration.RebalanceController`
  migrates the hot vnodes off it live, through the same watermarked
  range-migration engine recovery uses.  Post-rebalance throughput
  must beat the no-rebalance baseline by >=1.5x with zero lost acked
  writes and donors in-bound-only throughout.

The experiments themselves are declared in :mod:`repro.exp.library` and
measured by the shared ``cluster`` driver (topology build, tracing,
ledger workload, phase meters, fault plan, and the audit suites that
raise :class:`~repro.errors.BenchError` on any breach — a passing run
*is* the certificate).  These wrappers only shape the outcomes into the
original :class:`~repro.bench.figures.ExperimentResult` rows.
"""

from __future__ import annotations

from typing import List

from repro.bench.figures import ExperimentResult, _fmt
from repro.bench.harness import Scale
from repro.errors import BenchError

__all__ = [
    "run_ext_cluster_scaling",
    "run_ext_cluster_failover",
    "run_ext_cluster_rejoin",
    "run_ext_cluster_rebalance",
]

#: Columns shared by the two crash experiments' phase tables.
_PHASE_COLUMNS = [
    "phase",
    "start_us",
    "end_us",
    "mops",
    "fraction_of_pre",
    "lost_acked_writes",
    "acked_keys",
]


def _run_exp_spec(experiment_id: str, scale: Scale):
    """Lazy import: :mod:`repro.exp` initializes through this package."""
    from repro.exp.library import SPECS
    from repro.exp.runner import ExperimentRunner, default_observers

    spec = SPECS[experiment_id]
    runner = ExperimentRunner(observers=default_observers())
    return spec, runner.run(spec, scale)


def run_ext_cluster_scaling(scale: Scale) -> ExperimentResult:
    """Aggregate MOPS vs shard count (1 → 6) at fixed offered load."""
    spec, result = _run_exp_spec("ext-cluster-scaling", scale)
    rows = [
        [
            outcome.condition.axis["shards"],
            outcome.condition.topology.client_threads,
            _fmt(outcome.metrics["run_mops"]),
        ]
        for outcome in result.outcomes
    ]
    return ExperimentResult(
        "ext-cluster-scaling",
        spec.title,
        ["shards", "client_threads", "aggregate_mops"],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"{rows[0][2]} -> {rows[-1][2]} MOPS from "
            f"{rows[0][0]} to {rows[-1][0]} shards"
        ),
    )


def _phase_rows(condition, metrics) -> List[List]:
    """The crash experiments' phase table from one condition's metrics."""
    from repro.exp.spec import phases_of

    window = condition.scale.window_us
    phases = phases_of(condition)
    pre_mops = metrics[f"{phases[0].name}_mops"]
    return [
        [
            phase.name,
            window * phase.start_frac,
            window * phase.end_frac,
            _fmt(metrics[f"{phase.name}_mops"]),
            _fmt(metrics[f"{phase.name}_mops"] / max(pre_mops, 1e-9)),
            metrics["lost_acked_writes"],
            metrics["acked_keys"],
        ]
        for phase in phases
    ]


def run_ext_cluster_failover(scale: Scale) -> ExperimentResult:
    """Throughput through a single-shard crash (3 shards, RF=2).

    The run kills one shard mid-window and measures three phases:
    ``pre`` (steady state), ``dip`` (detection + takeover), ``post``
    (rebalanced steady state), then audits the durability and protocol
    claims (driver-side), so a passing run *is* the certificate.
    """
    spec, result = _run_exp_spec("ext-cluster-failover", scale)
    outcome = result.outcome("base")
    rows = _phase_rows(outcome.condition, outcome.metrics)
    return ExperimentResult(
        "ext-cluster-failover",
        spec.title,
        _PHASE_COLUMNS,
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"pre {rows[0][3]} MOPS, dip {rows[1][3]} "
            f"({rows[1][4]}x), post {rows[2][3]} ({rows[2][4]}x); "
            f"{outcome.metrics['acked_keys']} acked keys audited, "
            f"{outcome.metrics['lost_acked_writes']} lost"
        ),
    )


def run_ext_cluster_rejoin(scale: Scale) -> ExperimentResult:
    """Throughput through a full crash -> recover -> rejoin cycle.

    Five phases — ``pre``, ``dip`` (detection + takeover), ``outage``
    (two-shard steady state), ``rejoin`` (transfer traffic shares donor
    NICs), ``post`` (restored three-shard steady state) — with the
    driver-side audits that make rejoin safe: completed watermarked
    handoff restoring the pre-crash ring before the ``post`` window,
    per-replica durability of every acknowledged write, donors
    in-bound-only through the transfer, the rejoiner's out-bound verbs
    exactly its ranged reads, and post-rejoin throughput within 5% of
    pre-crash.
    """
    spec, result = _run_exp_spec("ext-cluster-rejoin", scale)
    outcome = result.outcome("base")
    metrics = outcome.metrics
    rows = _phase_rows(outcome.condition, metrics)
    return ExperimentResult(
        "ext-cluster-rejoin",
        spec.title,
        _PHASE_COLUMNS,
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"pre {rows[0][3]} MOPS, outage {rows[2][3]} "
            f"({rows[2][4]}x), post {rows[4][3]} ({rows[4][4]}x); "
            f"handoff at {metrics['handoff_at_us']:.0f}us moved "
            f"{metrics['transferred_keys']} keys "
            f"({metrics['catchup_keys']} catch-up) in "
            f"{metrics['batches']} batches; "
            f"{metrics['acked_keys']} acked keys audited, "
            f"{metrics['lost_acked_writes']} lost"
        ),
    )


def run_ext_cluster_rebalance(scale: Scale) -> ExperimentResult:
    """Live vnode rebalancing under a pinned Zipf hot-set (3 shards).

    Two conditions share one skewed workload — Zipf(1.2) GETs whose
    hottest ranks are all pinned onto ``shard1`` — differing only in
    whether the :class:`~repro.cluster.migration.RebalanceController`
    runs.  Three phases: ``pre`` (skewed steady state), ``spread``
    (the controller observes, picks hot vnodes, and migrates them
    live), ``post`` (rebalanced steady state).  The driver-side audit
    certifies the moves (clean cutovers, zero lost acked writes,
    donors in-bound-only); this wrapper additionally enforces the
    headline: rebalanced ``post`` throughput must be >=1.5x the
    no-rebalance baseline's.
    """
    spec, result = _run_exp_spec("ext-cluster-rebalance", scale)
    baseline = result.outcome("rebalance=False")
    rebalanced = result.outcome("rebalance=True")

    def condition_rows(outcome) -> List[List]:
        from repro.exp.spec import phases_of

        window = outcome.condition.scale.window_us
        return [
            [
                "on" if outcome.condition.settings.get("rebalance") else "off",
                phase.name,
                window * phase.start_frac,
                window * phase.end_frac,
                _fmt(outcome.metrics[f"{phase.name}_mops"]),
                outcome.metrics["moved_vnodes"],
                outcome.metrics["lost_acked_writes"],
                outcome.metrics["acked_keys"],
            ]
            for phase in phases_of(outcome.condition)
        ]

    rows = condition_rows(baseline) + condition_rows(rebalanced)
    base_post = baseline.metrics["post_mops"]
    rebal_post = rebalanced.metrics["post_mops"]
    speedup = rebal_post / max(base_post, 1e-9)
    if speedup < 1.5:
        raise BenchError(
            f"post-rebalance throughput {rebal_post:.3f} MOPS is only "
            f"{speedup:.2f}x the no-rebalance baseline {base_post:.3f} "
            "MOPS (bar: 1.5x)"
        )
    return ExperimentResult(
        "ext-cluster-rebalance",
        spec.title,
        [
            "rebalance",
            "phase",
            "start_us",
            "end_us",
            "mops",
            "moved_vnodes",
            "lost_acked_writes",
            "acked_keys",
        ],
        rows,
        paper_expectation=spec.paper_expectation,
        observations=(
            f"post {_fmt(base_post)} -> {_fmt(rebal_post)} MOPS "
            f"({speedup:.2f}x) after {rebalanced.metrics['migrations']} "
            f"migrations moved {rebalanced.metrics['moved_vnodes']} vnodes "
            f"({rebalanced.metrics['migrated_keys']} keys, "
            f"{rebalanced.metrics['catchup_keys']} catch-up); "
            f"{rebalanced.metrics['acked_keys']} acked keys audited, "
            f"{rebalanced.metrics['lost_acked_writes']} lost"
        ),
    )
