"""Engine speed benchmarks — the repo's perf-trajectory artifact.

``python -m repro.bench speed --json`` times the fast engine against the
retained pre-PR engine (``Simulator(reference=True)``) on four scenarios
and writes ``BENCH_sim_speed.json`` at the repo root:

- ``event-churn`` — a zero-delay completion cascade under a large
  parked-timer backlog.  This is the regime the ready deque exists for:
  the reference engine pays two ``O(log n)`` heap operations per
  same-timestamp dispatch with ``n`` in the hundreds of thousands (real
  cluster runs hold one armed deadline timer per in-flight op), the fast
  engine pays two deque operations.
- ``timeout-storm`` — thousands of concurrent processes sleeping on
  staggered timers: the slotted :class:`~repro.sim.core.Timeout` fast
  path versus the reference engine's Event + callbacks list + zero-delay
  heap round trip per wake.
- ``fig03-replay`` — the full §2.2 in-bound IOPS microbenchmark replay
  (35 client threads of synchronous RDMA Reads), timed end to end.
- ``cluster-replay`` — an end-to-end ``RfpCluster`` failover run (3
  shards, RF=2, mid-run shard kill) in the two configurations that
  bracket this PR: the *pre-PR* shape (reference engine, tracing on,
  invariant checkers subscribed — the only shape the old engine
  offered) versus the *post-PR* default perf shape (fast engine, cold
  tracers; invariant checking is opt-in and exercised by the tier-1
  failover bench and the golden-trace test instead of being paid on
  every op here).

Every scenario is deterministic in simulated time: the dispatched-event
counts and the modeled throughput are bit-for-bit reproducible and are
pinned by ``tests/bench/test_speed_bench.py``.  Wall-clock seconds and
events/sec depend on the host and are recorded, never asserted.

Methodology: each (scenario, engine) cell is run ``repetitions`` times
in-process and the best wall time is kept — standard microbenchmark
practice to suppress scheduler/cache noise; the dispatch count must be
identical across repetitions or the run aborts.
"""

from __future__ import annotations

import json
import struct
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import BenchError
from repro.sim.core import Event, Simulator

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_NAME",
    "SpeedResult",
    "run_speed_suite",
    "format_speed_report",
    "write_artifact",
]

SCHEMA_VERSION = "repro.bench.speed/v2"
ARTIFACT_NAME = "BENCH_sim_speed.json"

#: Best-of-N wall-clock repetitions per (scenario, engine) cell.
REPETITIONS = 3

#: The cluster-replay scenario measured at the seed commit, before any of
#: this PR's engine or hot-path work existed.  The in-process reference
#: cell above runs the *current* model code under the old engine shape,
#: which understates the end-to-end win (the hot-path restructuring —
#: ``occupy()`` verbs, header helpers, direct delays — speeds both cells
#: up); this block records the honest end-to-end comparator.  Measured on
#: the same container as the checked-in artifact, best-of-N of the
#: identical scenario (same constants, same seeds, same modeled result:
#: the seed tree reproduces modeled_mops bit-for-bit).  Wall seconds are
#: host-dependent: comparisons against this number are only meaningful
#: for artifacts regenerated on comparable hardware.
FROZEN_BASELINE = {
    "scenario": "cluster-replay",
    "commit": "460b18c",
    "wall_s": 4.165,
    "modeled_mops": 6.694,
    "shape": (
        "seed-commit engine (pure heap, no ready deque, Event-based "
        "timeouts) with always-on tracing and subscribed invariant "
        "checkers — the only configuration the seed tree offered"
    ),
    "protocol": "best-of-N sim.run wall time, same scenario constants",
}

# Scenario sizing — deliberately module-level constants so the pinned
# dispatch counts in the artifact and the tier-1 gate have one source.
CHURN_ROUNDS = 400_000
CHURN_BACKLOG = 1_000_000
STORM_PROCESSES = 2_000
STORM_WINDOW_US = 300.0
FIG03_THREADS = 35
FIG03_WINDOW_US = 3_000.0
CLUSTER_CLIENTS = 24
CLUSTER_RECORDS = 240
CLUSTER_WINDOW_US = 2_500.0


@dataclass
class SpeedResult:
    """One scenario's measurement (both engines)."""

    name: str
    description: str
    repetitions: int
    dispatched_fast: int
    dispatched_reference: int
    wall_s_fast: float
    wall_s_reference: float
    #: Deterministic scenario fingerprint beyond the dispatch count
    #: (modeled MOPS for the replays, 0.0 for pure microbenches).
    modeled_mops: float

    @property
    def speedup(self) -> float:
        if self.wall_s_fast <= 0:
            return 0.0
        return self.wall_s_reference / self.wall_s_fast

    @property
    def events_per_sec_fast(self) -> float:
        if self.wall_s_fast <= 0:
            return 0.0
        return self.dispatched_fast / self.wall_s_fast

    @property
    def events_per_sec_reference(self) -> float:
        if self.wall_s_reference <= 0:
            return 0.0
        return self.dispatched_reference / self.wall_s_reference

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "repetitions": self.repetitions,
            "dispatched_fast": self.dispatched_fast,
            "dispatched_reference": self.dispatched_reference,
            "modeled_mops": round(self.modeled_mops, 6),
            "wall_s_fast": round(self.wall_s_fast, 4),
            "wall_s_reference": round(self.wall_s_reference, 4),
            "events_per_sec_fast": round(self.events_per_sec_fast),
            "events_per_sec_reference": round(self.events_per_sec_reference),
            "speedup": round(self.speedup, 2),
        }


def _timed_run(sim: Simulator, until: float) -> float:
    """Time exactly the ``sim.run`` call — setup (cluster build, parked
    backlog arming, preload) is excluded so the measurement is the
    dispatch loop, not scenario construction."""
    # Host wall time measuring the benchmark itself — never feeds the
    # model.
    started = time.perf_counter()  # lint: disable=no-wall-clock
    sim.run(until=until)
    return time.perf_counter() - started  # lint: disable=no-wall-clock


def _time_cell(
    build_and_run: Callable[[bool], Tuple[float, int, float]],
    reference: bool,
    repetitions: int,
) -> Tuple[float, int, float]:
    """Best-of-N wall time for one (scenario, engine) cell.

    ``build_and_run(reference)`` constructs a fresh simulator, runs the
    scenario timing its own ``sim.run`` window (via :func:`_timed_run`),
    and returns ``(wall_s, dispatched, modeled_mops)``.
    """
    best = float("inf")
    dispatched = -1
    mops = 0.0
    for _ in range(repetitions):
        elapsed, got_dispatched, got_mops = build_and_run(reference)
        if dispatched >= 0 and got_dispatched != dispatched:
            raise BenchError(
                f"non-deterministic dispatch count: {dispatched} then "
                f"{got_dispatched}"
            )
        dispatched = got_dispatched
        mops = got_mops
        best = min(best, elapsed)
    return best, dispatched, mops


def _measure(
    name: str,
    description: str,
    build_and_run: Callable[[bool], Tuple[float, int, float]],
    repetitions: int = REPETITIONS,
    require_equal_dispatch: bool = True,
) -> SpeedResult:
    wall_fast, dispatched_fast, mops_fast = _time_cell(
        build_and_run, False, repetitions
    )
    wall_ref, dispatched_ref, mops_ref = _time_cell(
        build_and_run, True, repetitions
    )
    if require_equal_dispatch and dispatched_fast != dispatched_ref:
        raise BenchError(
            f"{name}: engines dispatched different event counts "
            f"({dispatched_fast} fast vs {dispatched_ref} reference) — "
            "ordering equivalence is broken"
        )
    if mops_fast != mops_ref:
        raise BenchError(
            f"{name}: engines disagree on modeled throughput "
            f"({mops_fast} vs {mops_ref})"
        )
    return SpeedResult(
        name=name,
        description=description,
        repetitions=repetitions,
        dispatched_fast=dispatched_fast,
        dispatched_reference=dispatched_ref,
        wall_s_fast=wall_fast,
        wall_s_reference=wall_ref,
        modeled_mops=mops_fast,
    )


# ----------------------------------------------------------------------
# Scenario 1: zero-delay event churn under a parked-timer backlog
# ----------------------------------------------------------------------


def _run_event_churn(reference: bool) -> Tuple[float, int, float]:
    sim = Simulator(reference=reference)
    # Parked backlog: armed timers resident in the heap for the whole
    # run, the way a cluster run holds one deadline timer per in-flight
    # op.  They never fire inside the window; their only effect is the
    # heap depth every reference-engine zero-delay entry must traverse.
    for index in range(CHURN_BACKLOG):
        sim.timeout(1e9 + index)
    done = Event(sim).trigger()
    remaining = [CHURN_ROUNDS]

    def fire(event: Event) -> None:
        left = remaining[0]
        if left > 0:
            remaining[0] = left - 1
            done.wait(fire)

    done.wait(fire)
    wall = _timed_run(sim, until=1.0)
    return wall, sim.dispatched, 0.0


# ----------------------------------------------------------------------
# Scenario 2: timeout storm
# ----------------------------------------------------------------------


def _run_timeout_storm(reference: bool) -> Tuple[float, int, float]:
    sim = Simulator(reference=reference)

    def sleeper(delay: float):
        while True:
            yield sim.timeout(delay)

    for index in range(STORM_PROCESSES):
        # Staggered periods keep the heap mixed instead of firing in
        # lockstep waves.
        sim.process(sleeper(0.5 + (index % 16) * 0.25))
    wall = _timed_run(sim, until=STORM_WINDOW_US)
    return wall, sim.dispatched, 0.0


# ----------------------------------------------------------------------
# Scenario 3: full fig03 in-bound IOPS replay
# ----------------------------------------------------------------------


def _run_fig03_replay(reference: bool) -> Tuple[float, int, float]:
    from repro.bench.calibration import measure_inbound_iops

    # Host wall time measuring the benchmark itself — never feeds the
    # model.  The whole measurement is timed (cluster build included);
    # it is dominated by the run loop at this thread count.
    started = time.perf_counter()  # lint: disable=no-wall-clock
    mops, dispatched = measure_inbound_iops(
        FIG03_THREADS,
        window_us=FIG03_WINDOW_US,
        reference=reference,
        return_dispatched=True,
    )
    wall = time.perf_counter() - started  # lint: disable=no-wall-clock
    return wall, dispatched, mops


# ----------------------------------------------------------------------
# Scenario 4: end-to-end cluster failover replay
# ----------------------------------------------------------------------

_SEQ = struct.Struct("<Q")


def _seq_value(sequence: int) -> bytes:
    return _SEQ.pack(sequence) + b"\x00" * 56


def _run_cluster_replay(reference: bool) -> Tuple[float, int, float]:
    from repro.cluster import ClusterConfig, RfpCluster
    from repro.core.config import RfpConfig
    from repro.hw.cluster import build_cluster
    from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
    from repro.kv.store import StoreCostModel
    from repro.lint.invariants import ClusterInvariantChecker, RfpInvariantChecker
    from repro.sim.monitor import ThroughputMeter
    from repro.sim.random import seeded_rng
    from repro.sim.trace import Tracer

    shards = 3
    spec = ClusterSpec(
        machine=CLUSTER_EUROSYS17.machine,
        machines=18,
        switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
    )
    sim = Simulator(reference=reference)
    cluster = build_cluster(sim, spec)
    if reference:
        # Pre-PR configuration: the old engine had no tracer opt-out, so
        # every cluster bench paid full tracing plus subscribed
        # invariant checkers on every op.
        cluster_tracer = Tracer(sim, categories=["cluster"])
        shard_tracers = {
            f"shard{i}": Tracer(sim, capacity=1) for i in range(shards)
        }
        for tracer in shard_tracers.values():
            RfpInvariantChecker(
                config=RfpConfig(consecutive_slow_calls=1)
            ).attach(tracer)
        ClusterInvariantChecker().attach(cluster_tracer)
    else:
        # Post-PR perf configuration: no tracers at all — every record
        # site is gated on ``tracer is not None`` so the perf loop pays
        # nothing.  Invariant checking still runs at 100% coverage where
        # it matters — the tier-1 failover bench and the golden-trace
        # test — instead of inside the perf loop.
        cluster_tracer = None
        shard_tracers = None
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=cluster_tracer,
        shard_tracers=shard_tracers,
    )
    keys = [f"key{i:06d}".encode() for i in range(CLUSTER_RECORDS)]
    per_client = max(1, CLUSTER_RECORDS // CLUSTER_CLIENTS)
    owned = {
        c: keys[c * per_client : (c + 1) * per_client]
        for c in range(CLUSTER_CLIENTS)
    }
    service.preload([(key, _seq_value(0)) for key in keys])
    window = CLUSTER_WINDOW_US
    meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

    def loop(sim: Simulator, client: Any, client_id: int):
        rng = seeded_rng(client_id)
        mine = owned[client_id]
        sequence = 0
        while True:
            if sequence % 4 == 3:
                key = mine[(sequence // 4) % len(mine)]
                sequence += 1
                yield from client.put(key, _seq_value(sequence))
            else:
                sequence += 1
                key = keys[int(rng.integers(len(keys)))]
                yield from client.get(key)
            meter.record(sim.now)

    for index in range(CLUSTER_CLIENTS):
        machine = cluster.machines[shards + index % (spec.machines - shards)]
        client = service.connect(machine, name=f"c{index}")
        sim.process(loop(sim, client, index))
    sim.schedule(window * 0.5, service.kill, "shard1")
    wall = _timed_run(sim, until=window)
    return wall, sim.dispatched, meter.mops(elapsed=window * 0.75)


# ----------------------------------------------------------------------
# Suite driver, report, artifact
# ----------------------------------------------------------------------


def run_speed_suite(repetitions: int = REPETITIONS) -> List[SpeedResult]:
    """Run all scenarios; returns one :class:`SpeedResult` each."""
    return [
        _measure(
            "event-churn",
            "zero-delay completion cascade under a "
            f"{CHURN_BACKLOG // 1000}k parked-timer backlog",
            _run_event_churn,
            repetitions,
        ),
        _measure(
            "timeout-storm",
            f"{STORM_PROCESSES} concurrent processes on staggered timers",
            _run_timeout_storm,
            repetitions,
        ),
        _measure(
            "fig03-replay",
            f"full fig3 in-bound IOPS replay ({FIG03_THREADS} client threads)",
            _run_fig03_replay,
            repetitions,
        ),
        _measure(
            "cluster-replay",
            "end-to-end RfpCluster failover replay: pre-PR shape "
            "(reference engine, always-on tracing + checkers) vs post-PR "
            "perf shape (fast engine, tracing off)",
            _run_cluster_replay,
            repetitions,
        ),
    ]


def format_speed_report(results: List[SpeedResult]) -> str:
    lines = [
        "sim speed suite (best of "
        f"{results[0].repetitions if results else REPETITIONS}; "
        "wall seconds are host-dependent)",
        f"{'scenario':16s} {'events':>9s} {'fast s':>8s} {'ref s':>8s} "
        f"{'fast ev/s':>11s} {'speedup':>8s}",
    ]
    for result in results:
        lines.append(
            f"{result.name:16s} {result.dispatched_fast:9d} "
            f"{result.wall_s_fast:8.3f} {result.wall_s_reference:8.3f} "
            f"{result.events_per_sec_fast:11.0f} {result.speedup:7.2f}x"
        )
    return "\n".join(lines)


def write_artifact(results: List[SpeedResult], path: str = ARTIFACT_NAME) -> str:
    """Write the perf-trajectory artifact; returns the path written.

    Schema v2 stamps provenance: the git SHA/dirty flag the suite ran at
    and the scale of the headline (cluster-replay) scenario, so two
    artifacts can be compared knowing they measured the same tree at the
    same scenario size.
    """
    from repro.provenance import git_provenance

    payload = {
        "schema": SCHEMA_VERSION,
        "note": (
            "dispatched counts and modeled_mops are deterministic and "
            "pinned by tests/bench/test_speed_bench.py; wall_s/events_per_sec"
            "/speedup are host-dependent and recorded for trajectory only"
        ),
        "provenance": {
            **git_provenance(),
            "scale": {
                "window_us": CLUSTER_WINDOW_US,
                "warmup_fraction": 0.25,
                "records": CLUSTER_RECORDS,
                "full": False,
            },
        },
        "repetitions": results[0].repetitions if results else REPETITIONS,
        "scenarios": [result.to_json() for result in results],
        "frozen_baseline": dict(FROZEN_BASELINE),
    }
    for result in results:
        if result.name == FROZEN_BASELINE["scenario"] and result.wall_s_fast > 0:
            payload["frozen_baseline"]["speedup_vs_fast"] = round(
                FROZEN_BASELINE["wall_s"] / result.wall_s_fast, 2
            )
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2, sort_keys=False)
        sink.write("\n")
    return path
