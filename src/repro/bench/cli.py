"""Command-line entry point: regenerate the paper's figures/tables.

Usage::

    python -m repro.bench                 # run everything, fast scale
    python -m repro.bench fig12 tab3      # run a subset
    python -m repro.bench --full          # report-quality windows
    python -m repro.bench --list          # show the registry
    python -m repro.bench --out out.txt   # also write the report to a file
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import Scale
from repro.bench.report import format_result, write_csv

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the evaluation of 'RFP' (EuroSys 2017).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use report-quality measurement windows (slower)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the ~30s calibration self-check instead of experiments",
    )
    parser.add_argument("--out", help="also append the report to this file")
    parser.add_argument("--csv", help="also write per-experiment CSVs to this directory")
    parser.add_argument(
        "--spec", help="run a user-defined experiment from this JSON spec file"
    )
    parser.add_argument(
        "--chart", action="store_true", help="also render terminal bar charts"
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_sim_speed.json",
        default=None,
        metavar="PATH",
        help="with 'speed': also write the perf-trajectory artifact "
        "(default BENCH_sim_speed.json in the current directory)",
    )
    args = parser.parse_args(argv)

    if args.list:
        try:
            for experiment_id in sorted(EXPERIMENTS):
                print(f"{experiment_id:20s} {EXPERIMENTS[experiment_id].title}")
        except BrokenPipeError:  # piped into head/less that closed early
            pass
        return 0

    if args.validate:
        from repro.bench.validation import format_validation, run_validation

        checks = run_validation()
        print(format_validation(checks))
        return 0 if all(check.passed for check in checks) else 1

    if args.spec:
        import json

        from repro.bench.custom import load_spec, run_custom
        from repro.errors import ReproError

        scale = Scale.full_scale() if args.full else Scale.fast()
        try:
            result = run_custom(load_spec(args.spec), scale)
        except json.JSONDecodeError as error:
            print(f"error: {args.spec} is not valid JSON: {error}", file=sys.stderr)
            return 2
        except (ReproError, OSError) as error:
            # Malformed or unreadable spec: one clear line, no traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2
        section = format_result(result)
        print(section)
        if args.csv:
            write_csv(result, args.csv)
        if args.out:
            with open(args.out, "a", encoding="utf-8") as sink:
                sink.write(section + "\n")
        return 0

    if args.experiments == ["speed"]:
        from repro.bench.speed import format_speed_report, run_speed_suite, write_artifact

        results = run_speed_suite()
        print(format_speed_report(results))
        if args.json:
            path = write_artifact(results, args.json)
            print(f"[wrote {path}]")
        return 0

    selected = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    scale = Scale.full_scale() if args.full else Scale.fast()
    sections = []
    for experiment_id in selected:
        # Host wall time for CLI progress output only — never feeds a model.
        started = time.time()  # lint: disable=no-wall-clock
        result = run_experiment(experiment_id, scale)
        elapsed = time.time() - started  # lint: disable=no-wall-clock
        section = format_result(result)
        sections.append(section)
        print(section)
        if args.chart:
            from repro.bench.charts import render_bars

            print()
            print(render_bars(result))
        print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
        if args.csv:
            write_csv(result, args.csv)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as sink:
            sink.write("\n\n".join(sections) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
