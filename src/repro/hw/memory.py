"""RNIC-registered memory regions.

RDMA verbs may only touch memory that has been registered with the NIC
(the real ibverbs restriction the paper's ``malloc_buf``/``free_buf`` APIs
wrap).  A :class:`MemoryRegion` owns a real ``bytearray``; one-sided verbs
copy real bytes between regions, so data-integrity machinery above (CRC64
in Pilaf, RFP response headers) operates on genuine data rather than
token placeholders.

:func:`staged_write` models a *non-atomic* local write by the host CPU:
the first half of the payload lands when the write begins and the second
half when it ends.  A concurrent one-sided RDMA Read that samples the
region mid-write therefore observes a genuinely torn value — exactly the
race Pilaf's per-entry checksums exist to detect (§2.3).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator

from repro.errors import RegistrationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.hw.machine import Machine
    from repro.sim.core import Simulator

__all__ = ["MemoryRegion", "staged_write"]

_MR_IDS = itertools.count(1)


class MemoryRegion:
    """A contiguous region of RNIC-registered memory on one machine.

    Created via :meth:`repro.hw.machine.Machine.register_memory`; direct
    construction is allowed for tests.  Deregistered regions reject all
    access, mirroring ibverbs semantics.
    """

    __slots__ = ("machine", "size", "name", "mr_id", "_data", "_registered")

    def __init__(self, machine: "Machine", size: int, name: str = "") -> None:
        if size <= 0:
            raise RegistrationError(f"region size must be positive, got {size}")
        self.machine = machine
        self.size = size
        self.mr_id = next(_MR_IDS)
        self.name = name or f"mr{self.mr_id}"
        self._data = bytearray(size)
        self._registered = True

    @property
    def registered(self) -> bool:
        return self._registered

    def deregister(self) -> None:
        """Invalidate the region; further access raises."""
        self._registered = False

    def _check(self, offset: int, length: int) -> None:
        if not self._registered:
            raise RegistrationError(f"{self.name}: access to deregistered region")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise RegistrationError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"region of {self.size} bytes"
            )

    def read_local(self, offset: int, length: int) -> bytes:
        """Host-CPU read of ``length`` bytes (no simulated time charged)."""
        # The bounds check is inlined (not delegated to _check): these two
        # accessors run several times per simulated op across every bench.
        if offset < 0 or length < 0 or offset + length > self.size or not self._registered:
            self._check(offset, length)
        return bytes(self._data[offset : offset + length])

    def write_local(self, offset: int, data: bytes) -> None:
        """Host-CPU write (atomic at the current instant)."""
        length = len(data)
        if offset < 0 or offset + length > self.size or not self._registered:
            self._check(offset, length)
        self._data[offset : offset + length] = data

    def fill(self, offset: int, length: int, byte: int = 0) -> None:
        """Zero/fill a range (buffer recycling)."""
        self._check(offset, length)
        self._data[offset : offset + length] = bytes([byte]) * length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryRegion({self.name}, {self.size}B on {self.machine.name})"


def staged_write(
    sim: "Simulator",
    region: MemoryRegion,
    offset: int,
    data: bytes,
    duration: float,
) -> Generator:
    """Process body: write ``data`` non-atomically over ``duration`` µs.

    The first half of the payload is visible immediately, the second half
    only after ``duration``; a concurrent RDMA Read lands on torn bytes.
    Yield from this inside a process::

        yield sim.process(staged_write(sim, region, off, payload, 0.2))
    """
    half = len(data) // 2
    region.write_local(offset, data[:half])
    yield sim.timeout(duration)
    region.write_local(offset + half, data[half:])
    return None
