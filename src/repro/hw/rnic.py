"""The two-pipeline RNIC model.

Each NIC owns two independent single-server FIFO pipelines:

- the **out-bound pipeline** processes operations this NIC *issues*
  (posting, WQE fetch, doorbell handling — hardware/software interaction),
- the **in-bound pipeline** processes operations this NIC *serves*
  (pure hardware DMA path).

Per-operation pipeline time is a soft maximum of the pipeline's base cost
and wire serialization time, :func:`pipeline_service_time`.  This single
formula produces the paper's Figure 5: at small payloads the in-bound
pipeline is ~5× faster (11.26 vs 2.11 MOPS); above ~2 KB both directions
collapse onto the 40 Gbps bandwidth line.

One contention effect (paper §2.2) is modeled as out-bound service-time
inflation: issuing threads beyond a knee contend on locks, QPs, and CQs
at the *sender*.  The penalty is steeper for Reads (which hold more
in-NIC state) than for Writes — the read penalty produces the aggregate
in-bound sag with 50+ client threads (Figs. 4 and 10, clients issuing
Reads), the write penalty the ServerReply decline past ~6 server threads
(Figs. 3 and 12, the server issuing Writes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HardwareModelError
from repro.sim.core import Event, Simulator
from repro.sim.resources import ServiceStation
from repro.hw.specs import NicSpec

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["pipeline_service_time", "RNIC"]


def pipeline_service_time(
    base_us: float, size_bytes: int, bandwidth_bytes_per_us: float, order: float = 4.0
) -> float:
    """Per-op pipeline occupancy: soft-max of base cost and serialization.

    ``(base^p + (size/bw)^p)^(1/p)`` — smooth knee between the IOPS-limited
    regime (small payloads, flat at ``1/base``) and the bandwidth-limited
    regime (large payloads, ``bw/size``).  ``order`` controls knee
    sharpness; 4 matches the gradual roll-off of Fig. 5.
    """
    if size_bytes < 0:
        raise HardwareModelError(f"negative payload size: {size_bytes}")
    if size_bytes == 0:
        return base_us
    wire = size_bytes / bandwidth_bytes_per_us
    return (base_us**order + wire**order) ** (1.0 / order)


class RNIC:
    """One simulated RDMA NIC attached to a machine.

    The verbs layer drives the NIC through :meth:`submit_outbound` and
    :meth:`submit_inbound`; thread/QP registration feeds the contention
    penalties.
    """

    def __init__(self, sim: Simulator, spec: NicSpec, owner_name: str) -> None:
        self.sim = sim
        self.spec = spec
        self.owner_name = owner_name
        self.out_pipeline = ServiceStation(sim, servers=1, name=f"{owner_name}.out")
        self.in_pipeline = ServiceStation(sim, servers=1, name=f"{owner_name}.in")
        self._issuing_threads = 0
        self._active_qps = 0
        # Memoized pipeline occupancies: benches submit a handful of
        # distinct payload sizes millions of times, and the soft-max in
        # pipeline_service_time costs three float pows.  The out-bound
        # cache folds in the contention penalty, so it must be dropped
        # whenever the issuing-thread count changes.
        self._out_service_cache: dict = {}
        self._in_service_cache: dict = {}
        #: Lifetime op/byte tallies per direction.  The invariant checker
        #: (:mod:`repro.lint.invariants`) reconciles these against the
        #: traced protocol — an RFP server whose clients all remote-fetch
        #: must show zero out-bound ops (§2.2).
        self.outbound_ops = 0
        self.inbound_ops = 0
        self.outbound_bytes = 0
        self.inbound_bytes = 0

    # ------------------------------------------------------------------
    # Contention bookkeeping
    # ------------------------------------------------------------------

    @property
    def issuing_threads(self) -> int:
        return self._issuing_threads

    @property
    def active_qps(self) -> int:
        return self._active_qps

    def register_issuer(self) -> None:
        """Declare one more thread actively issuing verbs via this NIC."""
        self._issuing_threads += 1
        self._out_service_cache.clear()

    def unregister_issuer(self) -> None:
        if self._issuing_threads <= 0:
            raise HardwareModelError(f"{self.owner_name}: issuer underflow")
        self._issuing_threads -= 1
        self._out_service_cache.clear()

    def register_qp(self) -> None:
        """Declare one more connected queue pair terminating at this NIC."""
        self._active_qps += 1

    def unregister_qp(self) -> None:
        if self._active_qps <= 0:
            raise HardwareModelError(f"{self.owner_name}: QP underflow")
        self._active_qps -= 1

    def issue_penalty(self, kind: str = "write") -> float:
        """Out-bound service multiplier from sender-side contention.

        ``kind`` is ``"read"`` for RDMA Read requests (steeper penalty —
        reads keep per-op state in the NIC) and ``"write"`` for
        Writes/Sends.
        """
        if kind == "read":
            knee, coeff = self.spec.read_issue_knee, self.spec.read_issue_coeff
        elif kind in ("write", "ud_send"):
            knee, coeff = self.spec.write_issue_knee, self.spec.write_issue_coeff
        else:
            raise HardwareModelError(f"unknown issue kind: {kind!r}")
        excess = max(0, self._issuing_threads - knee)
        return 1.0 + coeff * excess

    # ------------------------------------------------------------------
    # Service-time model
    # ------------------------------------------------------------------

    def outbound_service_us(self, size_bytes: int, kind: str = "write") -> float:
        """Out-bound pipeline occupancy for one op carrying ``size_bytes``.

        UD Sends (``kind="ud_send"``) issue cheaper: no connection state
        to track, so their small-payload base cost scales down by
        ``spec.ud_send_scale``.
        """
        base = self.spec.outbound_base_us
        if kind == "ud_send":
            base *= self.spec.ud_send_scale
        return self.issue_penalty(kind) * pipeline_service_time(
            base,
            size_bytes,
            self.spec.effective_bandwidth_bytes_per_us,
            self.spec.softmax_order,
        )

    def inbound_service_us(self, size_bytes: int) -> float:
        """In-bound pipeline occupancy for one op carrying ``size_bytes``."""
        return pipeline_service_time(
            self.spec.inbound_base_us,
            size_bytes,
            self.spec.effective_bandwidth_bytes_per_us,
            self.spec.softmax_order,
        )

    # ------------------------------------------------------------------
    # Pipeline entry points (used by the verbs layer)
    # ------------------------------------------------------------------

    def occupy_outbound(self, size_bytes: int, kind: str = "write") -> float:
        """Enqueue one issued op; returns the instant the NIC has sent it."""
        self.outbound_ops += 1
        self.outbound_bytes += size_bytes
        service = self._out_service_cache.get((size_bytes, kind))
        if service is None:
            service = self._out_service_cache[(size_bytes, kind)] = (
                self.outbound_service_us(size_bytes, kind)
            )
        return self.out_pipeline.occupy(service)

    def occupy_inbound(self, size_bytes: int) -> float:
        """Enqueue one served op; returns the instant the NIC has handled it."""
        self.inbound_ops += 1
        self.inbound_bytes += size_bytes
        service = self._in_service_cache.get(size_bytes)
        if service is None:
            service = self._in_service_cache[size_bytes] = self.inbound_service_us(
                size_bytes
            )
        return self.in_pipeline.occupy(service)

    def submit_outbound(self, size_bytes: int, kind: str = "write") -> Event:
        """Enqueue one issued op; event fires when the NIC has sent it."""
        done_at = self.occupy_outbound(size_bytes, kind)
        return self.sim.timeout(done_at - self.sim.now)

    def submit_inbound(self, size_bytes: int) -> Event:
        """Enqueue one served op; event fires when the NIC has handled it."""
        done_at = self.occupy_inbound(size_bytes)
        return self.sim.timeout(done_at - self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RNIC({self.spec.name} on {self.owner_name})"
