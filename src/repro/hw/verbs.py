"""Queue pairs and RDMA verbs.

A :class:`QueuePair` connects two machines and exposes one symmetric
:class:`Endpoint` per side.  Endpoints carry the operations the paper's
paradigms are written against:

- ``post_read`` — one-sided RDMA Read (RC only).  The remote CPU is never
  involved: the op consumes only the remote NIC's *in-bound* pipeline.
- ``post_write`` — one-sided RDMA Write (RC/UC).  Payload becomes visible
  in remote memory when the remote in-bound pipeline delivers it, *before*
  the issuer's completion fires — exactly the property RFP's request path
  relies on.
- ``post_send`` / ``recv`` — two-sided messaging (all QP types).  Delivery
  requires the receiving *software* to consume the message; receiving
  threads must charge ``spec.recv_cpu_us`` per message, which is why
  Send/Recv shows none of the one-sided asymmetry (§2.2).

Timing anatomy of a one-sided op (constants from :class:`NicSpec`):

``post_cpu`` (issuing thread, charged by the caller) → out-bound pipeline
(issuer NIC) → propagation → in-bound pipeline (target NIC; data copied
here) → propagation back → [``read_extra`` for reads] → completion event.

Reads carry only a ~16-byte request on the issuing side and ``size`` bytes
on the serving side; writes carry ``size`` bytes outbound.  This is what
makes the *server-sends-nothing* design of RFP pay off: a server that only
ever serves in-bound traffic runs at the in-bound pipeline rate.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import TransportError
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion
from repro.hw.network import Network
from repro.sim.core import Event, Simulator
from repro.sim.random import seeded_rng
from repro.sim.resources import Store

__all__ = ["QPType", "QueuePair", "Endpoint", "READ_REQUEST_WIRE_BYTES"]

#: Wire size of the request half of an RDMA Read (header only).
READ_REQUEST_WIRE_BYTES = 16
#: Wire size of an atomic request (header + operands).
ATOMIC_WIRE_BYTES = 28


class QPType(enum.Enum):
    """InfiniBand queue-pair transport types (§5, Related Work).

    - ``RC`` (Reliable Connection): supports Read, Write, Send — required
      by RFP and all server-bypass designs.
    - ``UC`` (Unreliable Connection): Write and Send only.
    - ``UD`` (Unreliable Datagram): Send only.
    """

    RC = "RC"
    UC = "UC"
    UD = "UD"


class QueuePair:
    """A connected queue pair; use :attr:`a` and :attr:`b` endpoints.

    By convention :meth:`connect` returns ``(initiator_endpoint,
    target_endpoint)``.

    ``loss_probability`` models the fabric dropping packets.  RC recovers
    transparently (the NIC retransmits; we charge no extra time for the
    rare case), so losses only affect **UC and UD** traffic — those
    messages vanish silently while the sender's completion still fires,
    exactly the hazard §5 holds against UC/UD-based designs ("corrupted
    and silently dropped are both possible").
    """

    def __init__(
        self,
        sim: Simulator,
        machine_a: Machine,
        machine_b: Machine,
        network: Network,
        qp_type: QPType = QPType.RC,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise TransportError(
                f"loss probability must be in [0, 1): {loss_probability}"
            )
        self.sim = sim
        self.network = network
        self.qp_type = qp_type
        self.loss_probability = loss_probability
        self._loss_rng = (
            seeded_rng(loss_seed) if loss_probability > 0.0 else None
        )
        self.messages_lost = 0
        self._open = True
        self.a = Endpoint(self, machine_a, machine_b)
        self.b = Endpoint(self, machine_b, machine_a)
        self.a._peer, self.b._peer = self.b, self.a
        machine_a.rnic.register_qp()
        machine_b.rnic.register_qp()

    def _drops_unreliable_message(self) -> bool:
        """Decide the fate of one UC/UD message in flight."""
        if self._loss_rng is None or self.qp_type is QPType.RC:
            return False
        if self._loss_rng.random() < self.loss_probability:
            self.messages_lost += 1
            return True
        return False

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        """Disconnect; further verbs raise :class:`TransportError`."""
        if self._open:
            self._open = False
            self.a.machine.rnic.unregister_qp()
            self.b.machine.rnic.unregister_qp()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueuePair({self.qp_type.value}: {self.a.machine.name} <-> "
            f"{self.b.machine.name})"
        )


class Endpoint:
    """One side of a :class:`QueuePair`: all verbs are issued from here."""

    def __init__(self, qp: QueuePair, machine: Machine, remote: Machine) -> None:
        self.qp = qp
        self.sim = qp.sim
        self.machine = machine
        self.remote = remote
        self._inbox: Store = Store(qp.sim)
        self._peer: Optional["Endpoint"] = None
        # Single-switch fabric: propagation between a fixed machine pair
        # never changes, so hoist both directions out of the verb paths.
        self._forward_us = qp.network.propagation_us(machine.name, remote.name)
        self._backward_us = qp.network.propagation_us(remote.name, machine.name)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if not self.qp._open:
            raise TransportError("verb posted on a closed queue pair")

    def _check_regions(
        self,
        local_mr: MemoryRegion,
        local_offset: int,
        remote_mr: MemoryRegion,
        remote_offset: int,
        size: int,
    ) -> None:
        if local_mr.machine is not self.machine:
            raise TransportError(
                f"local region {local_mr.name!r} lives on "
                f"{local_mr.machine.name}, endpoint is on {self.machine.name}"
            )
        if remote_mr.machine is not self.remote:
            raise TransportError(
                f"remote region {remote_mr.name!r} lives on "
                f"{remote_mr.machine.name}, peer is {self.remote.name}"
            )
        local_mr._check(local_offset, size)
        remote_mr._check(remote_offset, size)

    # ------------------------------------------------------------------
    # One-sided verbs
    # ------------------------------------------------------------------

    def post_read(
        self,
        local_mr: MemoryRegion,
        local_offset: int,
        remote_mr: MemoryRegion,
        remote_offset: int,
        size: int,
    ) -> Event:
        """One-sided RDMA Read: remote bytes -> local region.

        Remote bytes are *sampled* when the remote in-bound pipeline serves
        the op (that is when the DMA engine reads host memory) and land in
        the local region when the completion fires — a concurrent remote
        CPU write is therefore observable torn.
        """
        self._check_open()
        if self.qp.qp_type is not QPType.RC:
            raise TransportError(
                f"RDMA Read requires RC, not {self.qp.qp_type.value}"
            )
        self._check_regions(local_mr, local_offset, remote_mr, remote_offset, size)

        sim = self.sim
        read_extra = self.machine.rnic.spec.read_extra_us
        forward = self._forward_us
        backward = self._backward_us
        completion = Event(sim)

        # Pipeline occupancy is deterministic, so each stage schedules
        # the next one directly against its known completion instant —
        # no intermediate events.  The in-bound submission still happens
        # *at arrival time* (at_remote): remote queueing depends on the
        # arrival order of ops from every issuer.
        def at_remote() -> None:
            done_in = self.remote.rnic.occupy_inbound(size)
            sim.schedule(done_in - sim.now, after_serve)

        def after_serve() -> None:
            snapshot = remote_mr.read_local(remote_offset, size)
            sim.schedule(backward + read_extra, deliver, snapshot)

        def deliver(snapshot: bytes) -> None:
            local_mr.write_local(local_offset, snapshot)
            completion.trigger(size)

        done_out = self.machine.rnic.occupy_outbound(
            READ_REQUEST_WIRE_BYTES, kind="read"
        )
        sim.schedule(done_out - sim.now + forward, at_remote)
        return completion

    def post_write(
        self,
        local_mr: MemoryRegion,
        local_offset: int,
        remote_mr: MemoryRegion,
        remote_offset: int,
        size: int,
        on_delivery: Optional[Callable[[], None]] = None,
    ) -> Event:
        """One-sided RDMA Write: local bytes -> remote region.

        ``on_delivery`` runs at the instant the payload lands in remote
        memory (used by upper layers to model a memory poller noticing the
        write without simulating each poll iteration).  On RC the
        completion fires after the hardware ACK returns; on UC it fires
        once the issuing NIC has sent the payload (no reliability).
        """
        self._check_open()
        if self.qp.qp_type is QPType.UD:
            raise TransportError("RDMA Write requires RC or UC, not UD")
        self._check_regions(local_mr, local_offset, remote_mr, remote_offset, size)

        sim = self.sim
        forward = self._forward_us
        backward = self._backward_us
        completion = Event(sim)
        payload = local_mr.read_local(local_offset, size)
        reliable = self.qp.qp_type is QPType.RC

        def after_issue() -> None:
            # Unreliable transports complete at issue time and may drop
            # the message on the wire.
            completion.trigger(size)
            if self.qp._drops_unreliable_message():
                return  # vanished on the wire; the sender never knows
            sim.schedule(forward, at_remote)

        def at_remote() -> None:
            done_in = self.remote.rnic.occupy_inbound(size)
            sim.schedule(done_in - sim.now, after_serve)

        def after_serve() -> None:
            remote_mr.write_local(remote_offset, payload)
            if on_delivery is not None:
                on_delivery()
            if reliable:
                sim.schedule(backward, completion.trigger, size)

        done_out = self.machine.rnic.occupy_outbound(size)
        if reliable:
            sim.schedule(done_out - sim.now + forward, at_remote)
        else:
            sim.schedule(done_out - sim.now, after_issue)
        return completion

    # ------------------------------------------------------------------
    # Atomic verbs
    # ------------------------------------------------------------------

    def post_atomic_cas(
        self,
        remote_mr: MemoryRegion,
        remote_offset: int,
        expected: int,
        swap: int,
    ) -> Event:
        """One-sided 64-bit compare-and-swap (RC only).

        Completes with the *original* value at the remote address; the
        swap happened iff ``original == expected``.  Atomicity comes for
        free in the model: the target NIC's in-bound pipeline serializes
        every operation touching its memory.
        """
        return self._post_atomic(
            remote_mr,
            remote_offset,
            lambda original: swap if original == expected else original,
        )

    def post_atomic_faa(
        self, remote_mr: MemoryRegion, remote_offset: int, delta: int
    ) -> Event:
        """One-sided 64-bit fetch-and-add (RC only); completes with the
        original value."""
        return self._post_atomic(
            remote_mr,
            remote_offset,
            lambda original: (original + delta) & 0xFFFFFFFFFFFFFFFF,
        )

    def _post_atomic(
        self, remote_mr: MemoryRegion, remote_offset: int, update
    ) -> Event:
        self._check_open()
        if self.qp.qp_type is not QPType.RC:
            raise TransportError(
                f"RDMA atomics require RC, not {self.qp.qp_type.value}"
            )
        if remote_mr.machine is not self.remote:
            raise TransportError(
                f"remote region {remote_mr.name!r} lives on "
                f"{remote_mr.machine.name}, peer is {self.remote.name}"
            )
        if remote_offset % 8 != 0:
            raise TransportError(
                f"atomics require 8-byte alignment, offset {remote_offset}"
            )
        remote_mr._check(remote_offset, 8)

        sim = self.sim
        spec = self.machine.rnic.spec
        forward = self._forward_us
        backward = self._backward_us
        completion = Event(sim)

        def at_remote() -> None:
            done_in = self.remote.rnic.occupy_inbound(8)
            sim.schedule(done_in - sim.now, after_serve)

        def after_serve() -> None:
            original = int.from_bytes(
                remote_mr.read_local(remote_offset, 8), "little"
            )
            remote_mr.write_local(
                remote_offset, update(original).to_bytes(8, "little")
            )
            # Atomics keep read-like state in the issuing NIC.
            sim.schedule(backward + spec.read_extra_us, completion.trigger, original)

        done_out = self.machine.rnic.occupy_outbound(ATOMIC_WIRE_BYTES, kind="read")
        sim.schedule(done_out - sim.now + forward, at_remote)
        return completion

    # ------------------------------------------------------------------
    # Two-sided verbs
    # ------------------------------------------------------------------

    def post_send(self, payload: bytes) -> Event:
        """Two-sided Send toward the peer endpoint.

        The message lands in the peer's inbox once the peer NIC's in-bound
        pipeline delivers it.  The *receiving thread* must charge
        ``spec.recv_cpu_us`` per message — reception is a software path.
        """
        self._check_open()
        sim = self.sim
        size = len(payload)
        forward = self._forward_us
        backward = self._backward_us
        completion = Event(sim)
        reliable = self.qp.qp_type is QPType.RC
        issue_kind = "ud_send" if self.qp.qp_type is QPType.UD else "write"
        peer = self._peer

        def after_issue() -> None:
            # Unreliable transports complete at issue time and may drop
            # the message on the wire.
            completion.trigger(size)
            if self.qp._drops_unreliable_message():
                return  # vanished on the wire; the sender never knows
            sim.schedule(forward, at_remote)

        def at_remote() -> None:
            done_in = self.remote.rnic.occupy_inbound(size)
            sim.schedule(done_in - sim.now, after_serve)

        def after_serve() -> None:
            peer._inbox.put(payload)
            if reliable:
                sim.schedule(backward, completion.trigger, size)

        done_out = self.machine.rnic.occupy_outbound(size, kind=issue_kind)
        if reliable:
            sim.schedule(done_out - sim.now + forward, at_remote)
        else:
            sim.schedule(done_out - sim.now, after_issue)
        return completion

    def recv(self) -> Event:
        """Event yielding the next Send payload addressed to this endpoint."""
        self._check_open()
        return self._inbox.get()

    @property
    def pending_messages(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._inbox)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Endpoint({self.machine.name} -> {self.remote.name})"
