"""A simulated machine: cores, registered memory, and one RNIC."""

from __future__ import annotations

from typing import List

from repro.errors import RegistrationError
from repro.hw.memory import MemoryRegion
from repro.hw.rnic import RNIC
from repro.hw.specs import MachineSpec
from repro.sim.core import Simulator

__all__ = ["Machine"]


class Machine:
    """One host of the simulated cluster.

    Threads (simulated processes) are not scheduled onto cores explicitly —
    the paper never oversubscribes cores (at most 16 threads on 16 cores) —
    but :attr:`cores` bounds how many server threads a system may launch.
    """

    def __init__(self, sim: Simulator, spec: MachineSpec, name: str) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self.rnic = RNIC(sim, spec.nic, owner_name=name)
        self._regions: List[MemoryRegion] = []
        # Running tally for the budget check; summing per registration
        # turns region-heavy setups (cluster rejoin) quadratic.
        self._in_use_bytes = 0

    @property
    def cores(self) -> int:
        return self.spec.cores

    def register_memory(self, size: int, name: str = "") -> MemoryRegion:
        """Allocate and register ``size`` bytes with the RNIC.

        Mirrors ``malloc_buf`` in the RFP API (Table 2): RDMA verbs only
        accept registered regions.
        """
        budget = self.spec.memory_gb * (1 << 30)
        if self._in_use_bytes + size > budget:
            raise RegistrationError(
                f"{self.name}: registering {size} B exceeds {self.spec.memory_gb} GB"
            )
        region = MemoryRegion(self, size, name=name)
        self._regions.append(region)
        self._in_use_bytes += size
        return region

    def release_memory(self, region: MemoryRegion) -> None:
        """Deregister a region (``free_buf``)."""
        if region.machine is not self:
            raise RegistrationError(
                f"{self.name}: cannot release region owned by {region.machine.name}"
            )
        if region.registered:
            self._in_use_bytes -= region.size
        region.deregister()

    def registered_bytes(self) -> int:
        """Total bytes currently registered with the RNIC."""
        return sum(r.size for r in self._regions if r.registered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.name}, {self.cores} cores, {self.rnic.spec.name})"
