"""Cluster composition: machines + network + connection helper."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import HardwareModelError
from repro.hw.machine import Machine
from repro.hw.network import Network
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.hw.verbs import Endpoint, QPType, QueuePair
from repro.sim.core import Simulator

__all__ = ["Cluster", "build_cluster"]


class Cluster:
    """A set of identical machines behind one switch.

    By convention ``machines[0]`` plays the server in the paper's
    client–server experiments and the remaining machines host clients.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.network = Network(spec.switch_hop_us)
        self.machines: List[Machine] = [
            Machine(sim, spec.machine, name=f"m{i}") for i in range(spec.machines)
        ]
        self._qps: List[QueuePair] = []

    @property
    def server(self) -> Machine:
        """The conventional server machine (``m0``)."""
        return self.machines[0]

    @property
    def client_machines(self) -> List[Machine]:
        """All machines except the server."""
        return self.machines[1:]

    def connect(
        self,
        initiator: Machine,
        target: Machine,
        qp_type: QPType = QPType.RC,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ) -> Tuple[Endpoint, Endpoint]:
        """Create a QP between two machines; returns both endpoints.

        The first endpoint issues from ``initiator``, the second from
        ``target``.  ``loss_probability`` drops UC/UD messages silently
        (RC recovers transparently); see :class:`~repro.hw.verbs.QueuePair`.
        """
        if initiator is target:
            raise HardwareModelError("cannot connect a machine to itself")
        if initiator not in self.machines or target not in self.machines:
            raise HardwareModelError("both machines must belong to this cluster")
        qp = QueuePair(
            self.sim,
            initiator,
            target,
            self.network,
            qp_type,
            loss_probability=loss_probability,
            loss_seed=loss_seed,
        )
        self._qps.append(qp)
        return qp.a, qp.b

    def close_all(self) -> None:
        """Tear down every connection created through :meth:`connect`."""
        for qp in self._qps:
            qp.close()
        self._qps.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({len(self.machines)} x {self.spec.machine.nic.name})"


def build_cluster(sim: Simulator, spec: ClusterSpec = CLUSTER_EUROSYS17) -> Cluster:
    """Build the paper's 8-machine testbed (or any :class:`ClusterSpec`)."""
    return Cluster(sim, spec)
