"""Hardware specifications and calibrated presets.

The ConnectX-3 preset encodes every constant the paper reports for its
testbed (Sections 2.2 and 4.2):

- in-bound peak ≈ 11.26 MOPS, out-bound peak ≈ 2.11 MOPS (32-byte ops),
- 40 Gbps links; IOPS of both directions converge above ~2 KB,
- RDMA Write completes faster than RDMA Read (§4.4.2, HERD's observation),
- out-bound issuing stops scaling past a handful of threads (Fig. 3),
- aggregate in-bound declines once too many client QPs are active (Fig. 4).

All times are microseconds, rates are MOPS (ops/µs), sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import HardwareModelError

__all__ = [
    "NicSpec",
    "MachineSpec",
    "ClusterSpec",
    "CONNECTX2",
    "CONNECTX3",
    "CONNECTX4",
    "CLUSTER_EUROSYS17",
]


@dataclass(frozen=True)
class NicSpec:
    """Performance model of one RDMA NIC.

    Attributes
    ----------
    name:
        Human-readable model name.
    bandwidth_gbps:
        Raw link speed; the effective payload rate used by the pipelines is
        ``effective_bandwidth_bytes_per_us``.
    inbound_peak_mops:
        Peak rate at which the NIC *serves* one-sided operations (pure
        hardware path).
    outbound_peak_mops:
        Peak rate at which the NIC *issues* operations (software/hardware
        interaction on the send side).
    post_cpu_us:
        CPU time an issuing thread spends posting a work request (doorbell
        write) plus polling the completion — charged to the thread.
    read_extra_us:
        Additional completion-path latency of RDMA Read over RDMA Write
        (reads keep more state in the RNIC).
    recv_cpu_us:
        Receiver-side software cost to consume one two-sided Send — this is
        why Send/Recv shows no in/out asymmetry (§2.2).
    softmax_order:
        Sharpness of the base-cost/bandwidth knee in
        :func:`repro.hw.rnic.pipeline_service_time`.
    read_issue_knee / read_issue_coeff:
        Out-bound penalty for *issuing RDMA Reads*: each issuing thread
        beyond the knee inflates the out-bound service time by the given
        fraction.  Reads hold more in-NIC state than writes, so their
        issuing side congests earlier — this is the mutex + QP/CQ
        contention the paper blames for the Fig. 4 roll-off ("clients
        experience software contentions ... and hardware contentions ...
        when issuing the RDMA operations").
    write_issue_knee / write_issue_coeff:
        The same penalty for issuing Writes/Sends; milder, producing the
        gentle ServerReply decline past ~6 server threads (Fig. 12).
    """

    name: str
    bandwidth_gbps: float
    inbound_peak_mops: float
    outbound_peak_mops: float
    post_cpu_us: float = 0.15
    read_extra_us: float = 0.40
    recv_cpu_us: float = 0.30
    softmax_order: float = 4.0
    read_issue_knee: int = 5
    read_issue_coeff: float = 0.15
    write_issue_knee: int = 6
    write_issue_coeff: float = 0.012
    #: Out-bound service multiplier for UD Sends.  Datagram sends carry no
    #: connection/reliability state in the NIC, so issuing them is cheaper
    #: than RC verbs — the effect HERD/FaSST exploit (§5).
    ud_send_scale: float = 0.55
    bandwidth_efficiency: float = 0.96

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise HardwareModelError(f"bandwidth must be positive: {self.bandwidth_gbps}")
        if self.inbound_peak_mops <= 0 or self.outbound_peak_mops <= 0:
            raise HardwareModelError("pipeline peaks must be positive")
        if self.inbound_peak_mops < self.outbound_peak_mops:
            raise HardwareModelError(
                "model assumes in-bound >= out-bound peak (the paper's asymmetry)"
            )

    @property
    def effective_bandwidth_bytes_per_us(self) -> float:
        """Usable payload bytes per microsecond on one link direction."""
        # 1 Gbps == 125 bytes/us.
        return self.bandwidth_gbps * 125.0 * self.bandwidth_efficiency

    @property
    def inbound_base_us(self) -> float:
        """Per-op in-bound pipeline time at tiny payloads."""
        return 1.0 / self.inbound_peak_mops

    @property
    def outbound_base_us(self) -> float:
        """Per-op out-bound pipeline time at tiny payloads."""
        return 1.0 / self.outbound_peak_mops

    def scaled(self, bandwidth_gbps: float, name: str = "") -> "NicSpec":
        """A copy of this spec at a different link speed (e.g. 20 Gbps)."""
        return replace(self, bandwidth_gbps=bandwidth_gbps, name=name or self.name)


@dataclass(frozen=True)
class MachineSpec:
    """One server machine: cores, memory, and its NIC."""

    nic: NicSpec
    cores: int = 16
    memory_gb: int = 96

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise HardwareModelError(f"cores must be >= 1: {self.cores}")


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of identical machines behind one switch."""

    machine: MachineSpec
    machines: int = 8
    switch_hop_us: float = 0.10

    def __post_init__(self) -> None:
        if self.machines < 2:
            raise HardwareModelError("a cluster needs at least two machines")
        if self.switch_hop_us < 0:
            raise HardwareModelError("switch hop latency cannot be negative")


#: Mellanox ConnectX-3 MT27500 (40 Gbps) — the paper's NIC, calibrated to
#: the measured 11.26 / 2.11 MOPS peaks.
CONNECTX3 = NicSpec(
    name="ConnectX-3 MT27500",
    bandwidth_gbps=40.0,
    inbound_peak_mops=11.26,
    outbound_peak_mops=2.11,
)

#: ConnectX-2 (20 Gbps) — used for the like-for-like Pilaf comparison
#: (Fig. 11; Pilaf's testbed had 20 Gbps NICs).  Asymmetry persists on all
#: three NIC generations per §2.2; small-payload IOPS of this generation
#: is close to the CX-3 (Jakiro reaches ~5.4 MOPS on it in Fig. 11), only
#: the link is half as fast.
CONNECTX2 = NicSpec(
    name="ConnectX-2",
    bandwidth_gbps=20.0,
    inbound_peak_mops=11.0,
    outbound_peak_mops=2.0,
)

#: ConnectX-4 (100 Gbps) — faster generation; asymmetry persists (§2.2).
CONNECTX4 = NicSpec(
    name="ConnectX-4",
    bandwidth_gbps=100.0,
    inbound_peak_mops=18.0,
    outbound_peak_mops=3.5,
)

#: The paper's testbed: 8 machines, dual 8-core E5-2640v2, ConnectX-3,
#: InfiniScale-IV switch.
CLUSTER_EUROSYS17 = ClusterSpec(
    machine=MachineSpec(nic=CONNECTX3, cores=16, memory_gb=96),
    machines=8,
)
