"""Switch and propagation model.

The paper's testbed has a single 18-port InfiniScale-IV switch, so every
machine pair is exactly two links apart.  Serialization time is already
charged by the NIC pipelines (:mod:`repro.hw.rnic`), so the network
contributes pure propagation delay: ``2 × switch_hop_us`` per direction.
"""

from __future__ import annotations

from repro.errors import HardwareModelError

__all__ = ["Network"]


class Network:
    """One-switch fabric: constant propagation delay between distinct hosts."""

    def __init__(self, switch_hop_us: float = 0.10) -> None:
        if switch_hop_us < 0:
            raise HardwareModelError("switch hop latency cannot be negative")
        self.switch_hop_us = switch_hop_us

    def propagation_us(self, src_name: str, dst_name: str) -> float:
        """One-way propagation delay from ``src`` to ``dst``.

        Loopback (same machine) is free: the NIC short-circuits it.
        """
        if src_name == dst_name:
            return 0.0
        return 2.0 * self.switch_hop_us
