"""Simulated RDMA cluster hardware.

This package substitutes for the paper's physical testbed (8 machines, dual
8-core Xeon E5-2640v2, Mellanox ConnectX-3 InfiniBand, one InfiniScale-IV
switch).  The model is calibrated so that the two phenomena the paper's
design rests on emerge from first principles:

1. **In-bound vs out-bound asymmetry** — each RNIC has two independent
   pipelines.  The *in-bound* pipeline (serving one-sided ops, pure
   hardware) peaks at ~11.26 MOPS; the *out-bound* pipeline (issuing ops,
   hardware/software interaction) peaks at ~2.11 MOPS.
2. **Bandwidth crossover** — per-op pipeline time follows a soft-max of the
   per-op base cost and wire serialization ``size / bandwidth``, so IOPS of
   both pipelines converge onto the 40 Gbps bandwidth line above ~2 KB
   (paper Fig. 5).

Layers:

- :mod:`~repro.hw.specs` — frozen dataclass specs with ConnectX-2/3/4 presets,
- :mod:`~repro.hw.memory` — RNIC-registered memory regions (real bytes),
- :mod:`~repro.hw.rnic` — the two-pipeline NIC model + contention penalties,
- :mod:`~repro.hw.verbs` — queue pairs and one/two-sided verbs,
- :mod:`~repro.hw.network` — switch propagation model,
- :mod:`~repro.hw.machine` / :mod:`~repro.hw.cluster` — composition.
"""

from repro.hw.cluster import Cluster, build_cluster
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, staged_write
from repro.hw.network import Network
from repro.hw.rnic import RNIC, pipeline_service_time
from repro.hw.specs import (
    CLUSTER_EUROSYS17,
    CONNECTX2,
    CONNECTX3,
    CONNECTX4,
    ClusterSpec,
    MachineSpec,
    NicSpec,
)
from repro.hw.verbs import QPType, QueuePair

__all__ = [
    "CLUSTER_EUROSYS17",
    "CONNECTX2",
    "CONNECTX3",
    "CONNECTX4",
    "Cluster",
    "ClusterSpec",
    "Machine",
    "MachineSpec",
    "MemoryRegion",
    "Network",
    "NicSpec",
    "QPType",
    "QueuePair",
    "RNIC",
    "build_cluster",
    "pipeline_service_time",
    "staged_write",
]
