"""Closed-form throughput predictions.

Notation (times in µs, rates in MOPS):

- ``s_in(b)`` / ``s_out(b, kind)`` — per-op pipeline occupancy of the
  in-/out-bound NIC pipelines for a ``b``-byte payload
  (:func:`repro.hw.rnic.pipeline_service_time` plus issue penalties);
- a *closed loop* of ``n`` synchronous clients can never exceed
  ``n / latency`` (Little's law), so the client population itself is
  always one of the candidate bottlenecks.

Each predictor returns every candidate bottleneck with its rate; the
prediction is their minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import RfpConfig
from repro.core.fetch import plan_fetch
from repro.core.headers import REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES
from repro.errors import ReproError
from repro.hw.rnic import pipeline_service_time
from repro.hw.specs import NicSpec

__all__ = [
    "BottleneckPrediction",
    "predict_inbound_peak",
    "predict_outbound_peak",
    "predict_server_reply_throughput",
    "predict_rfp_throughput",
    "predict_server_bypass_throughput",
]


@dataclass(frozen=True)
class BottleneckPrediction:
    """A predicted throughput and the bottleneck that sets it."""

    mops: float
    bottleneck: str
    candidates: Dict[str, float]

    def margin_over(self, runner_up: str) -> float:
        """How much headroom the binding bottleneck has over another."""
        return self.candidates[runner_up] / self.mops


def _service(nic: NicSpec, base_us: float, size: int) -> float:
    return pipeline_service_time(
        base_us, size, nic.effective_bandwidth_bytes_per_us, nic.softmax_order
    )


def _issue_penalty(nic: NicSpec, threads: int, kind: str) -> float:
    if kind == "read":
        knee, coeff = nic.read_issue_knee, nic.read_issue_coeff
    else:
        knee, coeff = nic.write_issue_knee, nic.write_issue_coeff
    return 1.0 + coeff * max(0, threads - knee)


def predict_inbound_peak(nic: NicSpec, size: int = 32) -> float:
    """Peak rate at which one NIC serves one-sided ops of ``size``."""
    return 1.0 / _service(nic, nic.inbound_base_us, size)


def predict_outbound_peak(
    nic: NicSpec, size: int = 32, issuing_threads: int = 1, kind: str = "write"
) -> float:
    """Peak rate at which one NIC issues ops of ``size``."""
    base = nic.outbound_base_us
    if kind == "ud_send":
        base *= nic.ud_send_scale
    penalty = _issue_penalty(nic, issuing_threads, kind)
    return 1.0 / (penalty * _service(nic, base, size))


def _request_wire_bytes(request_payload: int) -> int:
    return REQUEST_HEADER_BYTES + request_payload


def _response_wire_bytes(response_payload: int) -> int:
    return RESPONSE_HEADER_BYTES + response_payload


def _server_cpu_per_request(
    config: RfpConfig, process_us: float, reply_bytes: Optional[int]
) -> float:
    """Thread time one request consumes on the server."""
    cpu = (
        config.server_poll_cpu_us
        + process_us
        + config.server_sw_us
        + config.server_sw_jitter_us / 2.0
    )
    if reply_bytes is not None:
        # The reply post: doorbell + per-byte staging (§4.4.3).
        cpu += 0.15 + reply_bytes * config.reply_send_per_byte_us
    return cpu


def predict_server_reply_throughput(
    nic: NicSpec,
    server_threads: int,
    client_threads: int,
    process_us: float,
    request_payload: int = 16,
    response_payload: int = 32,
    config: Optional[RfpConfig] = None,
    propagation_us: float = 0.2,
) -> BottleneckPrediction:
    """Steady-state server-reply throughput (the Fig. 12/14 curves)."""
    config = config if config is not None else RfpConfig()
    request = _request_wire_bytes(request_payload)
    response = _response_wire_bytes(response_payload)

    out_rate = 1.0 / (
        _issue_penalty(nic, server_threads, "write")
        * _service(nic, nic.outbound_base_us, response)
    )
    cpu_rate = server_threads / _server_cpu_per_request(config, process_us, response)
    inbound_rate = 1.0 / _service(nic, nic.inbound_base_us, request)
    latency = (
        config.client_post_cpu_us
        + _service(nic, nic.outbound_base_us, request)
        + propagation_us
        + _service(nic, nic.inbound_base_us, request)
        + _server_cpu_per_request(config, process_us, response)
        + _service(nic, nic.outbound_base_us, response)
        + propagation_us
        + _service(nic, nic.inbound_base_us, response)
        + config.client_wake_cpu_us
    )
    client_rate = client_threads / latency
    candidates = {
        "server-outbound-pipeline": out_rate,
        "server-cpu": cpu_rate,
        "server-inbound-pipeline": inbound_rate,
        "closed-loop-clients": client_rate,
    }
    bottleneck = min(candidates, key=candidates.get)
    return BottleneckPrediction(candidates[bottleneck], bottleneck, candidates)


def predict_rfp_throughput(
    nic: NicSpec,
    server_threads: int,
    client_threads: int,
    process_us: float,
    request_payload: int = 16,
    response_payload: int = 32,
    config: Optional[RfpConfig] = None,
    propagation_us: float = 0.2,
    client_machines: int = 7,
) -> BottleneckPrediction:
    """Steady-state RFP throughput in remote-fetch mode.

    The server NIC serves one in-bound write (the request) plus one or
    two in-bound reads (the fetch) per call; the server CPU does no
    networking; the client machines pay the out-bound posts.
    """
    config = config if config is not None else RfpConfig()
    request = _request_wire_bytes(request_payload)
    plan = plan_fetch(response_payload, config.fetch_size)
    fetch_reads = [config.fetch_size]
    if not plan.complete_after_first:
        fetch_reads.append(plan.remainder_bytes)

    in_time = _service(nic, nic.inbound_base_us, request) + sum(
        _service(nic, nic.inbound_base_us, size) for size in fetch_reads
    )
    inbound_rate = 1.0 / in_time

    cpu_rate = server_threads / _server_cpu_per_request(config, process_us, None)

    threads_per_machine = max(1, client_threads // client_machines)
    out_per_request = _issue_penalty(nic, threads_per_machine, "write") * _service(
        nic, nic.outbound_base_us, request
    ) + len(fetch_reads) * _issue_penalty(nic, threads_per_machine, "read") * _service(
        nic, nic.outbound_base_us, 16
    )
    client_out_rate = client_machines / out_per_request

    fetch_rtt = (
        config.client_post_cpu_us
        + _service(nic, nic.outbound_base_us, 16)
        + propagation_us
        + _service(nic, nic.inbound_base_us, config.fetch_size)
        + propagation_us
        + nic.read_extra_us
        + config.client_parse_cpu_us
    )
    latency = (
        config.client_post_cpu_us
        + _service(nic, nic.outbound_base_us, request)
        + propagation_us
        + _service(nic, nic.inbound_base_us, request)
        + _server_cpu_per_request(config, process_us, None)
        + len(fetch_reads) * fetch_rtt
    )
    client_rate = client_threads / latency
    candidates = {
        "server-inbound-pipeline": inbound_rate,
        "server-cpu": cpu_rate,
        "client-outbound-pipelines": client_out_rate,
        "closed-loop-clients": client_rate,
    }
    bottleneck = min(candidates, key=candidates.get)
    return BottleneckPrediction(candidates[bottleneck], bottleneck, candidates)


def predict_server_bypass_throughput(
    nic: NicSpec,
    operations_per_request: int,
    client_threads: int,
    op_size: int = 32,
    post_cpu_us: float = 0.15,
    propagation_us: float = 0.2,
    client_machines: int = 7,
) -> BottleneckPrediction:
    """Steady-state synthetic server-bypass throughput (Fig. 6)."""
    if operations_per_request < 1:
        raise ReproError("a request needs at least one operation")
    inbound_rate = 1.0 / (
        operations_per_request * _service(nic, nic.inbound_base_us, op_size)
    )
    threads_per_machine = max(1, client_threads // client_machines)
    read_rtt = (
        post_cpu_us
        + _issue_penalty(nic, threads_per_machine, "read")
        * _service(nic, nic.outbound_base_us, 16)
        + propagation_us
        + _service(nic, nic.inbound_base_us, op_size)
        + propagation_us
        + nic.read_extra_us
    )
    client_rate = client_threads / (operations_per_request * read_rtt)
    candidates = {
        "server-inbound-pipeline": inbound_rate,
        "closed-loop-clients": client_rate,
    }
    bottleneck = min(candidates, key=candidates.get)
    return BottleneckPrediction(candidates[bottleneck], bottleneck, candidates)
