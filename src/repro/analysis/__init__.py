"""Closed-form performance models of the RDMA RPC paradigms.

The discrete-event simulator *measures*; this package *predicts*.  Each
paradigm's steady-state throughput is the minimum over its candidate
bottlenecks (a pipeline, a lock, a CPU pool, the closed-loop client
population), every one of which has a closed form in terms of the NIC
spec and software costs.  The test suite cross-validates these
predictions against full simulations — when model and simulator agree
within a few percent from independent derivations, both are probably
right.

This is also the fastest way to answer "what if" questions (how would
RFP do on a 200 Gbps NIC with 3× asymmetry?) without running anything.
"""

from repro.analysis.models import (
    BottleneckPrediction,
    predict_inbound_peak,
    predict_outbound_peak,
    predict_rfp_throughput,
    predict_server_bypass_throughput,
    predict_server_reply_throughput,
)

__all__ = [
    "BottleneckPrediction",
    "predict_inbound_peak",
    "predict_outbound_peak",
    "predict_rfp_throughput",
    "predict_server_bypass_throughput",
    "predict_server_reply_throughput",
]
