"""Tests for the server-reply paradigm."""

import pytest

from repro.core import Mode, RfpClient, RfpConfig, RfpServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.paradigms import ServerReplyClient, ServerReplyServer
from repro.sim import Simulator, ThroughputMeter


def echo(payload, ctx):
    return payload, 0.2


def make_rig(threads=6, client_count=1, handler=echo):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = ServerReplyServer(sim, cluster, cluster.server, handler, threads)
    clients = [
        ServerReplyClient(sim, cluster.client_machines[i % 7], server)
        for i in range(client_count)
    ]
    return sim, cluster, server, clients


class TestServerReplyBasics:
    def test_round_trip(self):
        sim, _, _, (client,) = make_rig()

        def body(sim):
            return (yield from client.call(b"ping"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"ping"

    def test_every_response_is_pushed(self):
        sim, _, server, (client,) = make_rig()

        def body(sim):
            for i in range(25):
                yield from client.call(f"m{i}".encode())

        sim.process(body(sim))
        sim.run()
        assert server.stats.replies_sent.value == 25
        # The client never fetched anything.
        assert client.stats.remote_reads.value == 0

    def test_mode_never_leaves_server_reply(self):
        sim, _, _, (client,) = make_rig(handler=lambda p, c: (p, 0.0))

        def body(sim):
            for _ in range(20):
                yield from client.call(b"fast")

        sim.process(body(sim))
        sim.run()
        # Even with a fast server, server-reply never switches.
        assert client.mode is Mode.SERVER_REPLY
        assert client.policy.switches_to_fetch == 0

    def test_many_clients(self):
        sim, _, _, clients = make_rig(client_count=10)
        results = []

        def body(sim, client, tag):
            response = yield from client.call(tag)
            results.append(response)

        for i, client in enumerate(clients):
            sim.process(body(sim, client, f"t{i}".encode()))
        sim.run()
        assert sorted(results) == sorted(f"t{i}".encode() for i in range(10))


def measure_peak(system, server_threads, client_threads, window=4000.0):
    """Closed-loop peak throughput for one of the two paradigms."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    handler = lambda p, c: (bytes(32), 0.2)
    if system == "reply":
        server = ServerReplyServer(sim, cluster, cluster.server, handler, server_threads)
        client_cls = ServerReplyClient
    else:
        server = RfpServer(sim, cluster, cluster.server, handler, server_threads)
        client_cls = RfpClient
    meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

    def loop(sim, client):
        while True:
            yield from client.call(bytes(16))
            meter.record(sim.now)

    for i in range(client_threads):
        client = client_cls(sim, cluster.client_machines[i % 7], server)
        sim.process(loop(sim, client))
    sim.run(until=window)
    return meter.mops(elapsed=window * 0.75)


class TestServerReplyThroughputCeiling:
    def test_capped_by_outbound_pipeline(self):
        """§2.2: server-reply peaks at ~2.1 MOPS, the out-bound limit."""
        mops = measure_peak("reply", server_threads=6, client_threads=35)
        assert mops == pytest.approx(2.1, rel=0.15)

    def test_rfp_beats_server_reply_for_small_values(self):
        """The headline claim at small payloads: RFP >> server-reply."""
        reply = measure_peak("reply", server_threads=6, client_threads=35)
        rfp = measure_peak("rfp", server_threads=6, client_threads=35)
        assert rfp > 2.0 * reply

    def test_excess_server_threads_hurt_server_reply(self):
        """Fig. 12: out-bound issue contention degrades >6 threads."""
        at_6 = measure_peak("reply", server_threads=6, client_threads=35)
        at_16 = measure_peak("reply", server_threads=16, client_threads=35)
        assert at_16 < at_6
