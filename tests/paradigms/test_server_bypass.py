"""Tests for the synthetic server-bypass client (Fig. 6 machinery)."""

import pytest

from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.paradigms import SyntheticBypassClient
from repro.sim import Simulator, ThroughputMeter


def make_client(sim, cluster, ops, machine_index=1, op_size=32):
    region = cluster.server.register_memory(1 << 16)
    return SyntheticBypassClient(
        sim,
        cluster.client_machines[machine_index - 1],
        cluster,
        region,
        operations_per_request=ops,
        op_size=op_size,
    )


class TestSyntheticBypassClient:
    def test_counts_reads_per_request(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        client = make_client(sim, cluster, ops=4)
        proc = sim.process(client.request())
        sim.run()
        assert proc.finished
        assert client.stats.requests.value == 1
        assert client.stats.rdma_reads.value == 4
        assert client.stats.reads_per_request() == pytest.approx(4.0)

    def test_latency_grows_with_amplification(self):
        def request_latency(ops):
            sim = Simulator()
            cluster = build_cluster(sim, CLUSTER_EUROSYS17)
            client = make_client(sim, cluster, ops=ops)
            sim.process(client.request())
            sim.run()
            return client.stats.latency_us.mean()

        assert request_latency(6) > 2.5 * request_latency(2)

    def test_validation(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ProtocolError):
            make_client(sim, cluster, ops=0)
        with pytest.raises(ProtocolError):
            make_client(sim, cluster, ops=2, op_size=0)

    def test_offsets_stay_in_region(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        client = make_client(sim, cluster, ops=15)
        region_size = client.server_region.size
        for offset in client._offsets:
            assert 0 <= offset <= region_size - client.op_size


def bypass_throughput(ops_per_request, client_threads=21, window=4000.0):
    """Fig. 6 measurement: throughput vs amplification factor."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    region = cluster.server.register_memory(1 << 20)
    meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

    def loop(sim, client):
        while True:
            yield from client.request()
            meter.record(sim.now)

    for i in range(client_threads):
        client = SyntheticBypassClient(
            sim,
            cluster.client_machines[i % 7],
            cluster,
            region,
            operations_per_request=ops_per_request,
        )
        sim.process(loop(sim, client))
    sim.run(until=window)
    return meter.mops(elapsed=window * 0.75)


class TestFig6Amplification:
    def test_throughput_collapses_with_more_ops(self):
        """Fig. 6: request throughput ~ in-bound IOPS / k."""
        at_2 = bypass_throughput(2)
        at_8 = bypass_throughput(8)
        assert at_2 > 3.0 * at_8

    def test_heavy_amplification_below_one_mops(self):
        """Paper: with ~15 ops per request throughput sinks below 1 MOPS."""
        assert bypass_throughput(15) < 1.0

    def test_inbound_stays_saturated_while_throughput_drops(self):
        """The NIC serves ~the same IOPS; the *requests* get slower."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        region = cluster.server.register_memory(1 << 20)

        def loop(sim, client):
            while True:
                yield from client.request()

        for i in range(21):
            client = SyntheticBypassClient(
                sim, cluster.client_machines[i % 7], cluster, region, 8
            )
            sim.process(loop(sim, client))
        sim.run(until=3000.0)
        served = cluster.server.rnic.in_pipeline.operations
        assert served / sim.now > 5.0  # still many MOPS of in-bound service
