"""Tests for the tracing subsystem and its RFP instrumentation."""

import pytest

from repro.core import Mode, RfpClient, RfpServer
from repro.errors import ReproError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator, Tracer


class TestTracerUnit:
    def test_records_with_simulated_timestamps(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.schedule(5.0, tracer.record, "cat", "event")
        sim.run()
        (event,) = tracer.events()
        assert event.at_us == 5.0
        assert event.category == "cat"
        assert event.label == "event"

    def test_category_filter_drops_at_source(self):
        sim = Simulator()
        tracer = Tracer(sim, categories=["keep"])
        tracer.record("keep", "a")
        tracer.record("drop", "b")
        assert len(tracer) == 1
        assert tracer.wants("keep")
        assert not tracer.wants("drop")

    def test_ring_buffer_caps_events_but_counts_all(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=10)
        for i in range(25):
            tracer.record("cat", f"e{i}")
        assert len(tracer) == 10
        assert tracer.counts() == {"cat": 25}
        assert tracer.events()[0].label == "e15"

    def test_filtered_views(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x", n=1)
        sim.schedule(10.0, tracer.record, "b", "x")
        sim.run()
        assert len(tracer.events(category="a")) == 1
        assert len(tracer.events(label="x")) == 2
        assert len(tracer.events(since_us=5.0)) == 1

    def test_format_lines(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("rfp.client", "call_done", seq=3, latency_us=2.5)
        (line,) = tracer.format_lines()
        assert "rfp.client" in line
        assert "call_done" in line
        assert "seq=3" in line

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            Tracer(Simulator(), capacity=0)


class TestRfpInstrumentation:
    def make_rig(self, process_us=0.2):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim)
        server = RfpServer(
            sim,
            cluster,
            cluster.server,
            lambda p, c: (p, process_us),
            threads=2,
            tracer=tracer,
        )
        client = RfpClient(
            sim, cluster.client_machines[0], server, tracer=tracer
        )
        return sim, tracer, client

    def test_fast_call_produces_expected_phases(self):
        sim, tracer, client = self.make_rig()

        def body(sim):
            yield from client.call(b"hello")

        sim.process(body(sim))
        sim.run()
        labels = [e.label for e in tracer.events()]
        assert labels == [
            "request_sent",
            "fetch_read",
            "response_published",
            "fetch_success",
            "call_done",
        ]
        # Phases are causally ordered in time.
        times = [e.at_us for e in tracer.events()]
        assert times == sorted(times)

    def test_slow_calls_trace_the_mode_switch(self):
        sim, tracer, client = self.make_rig(process_us=30.0)

        def body(sim):
            for _ in range(3):
                yield from client.call(b"x")

        sim.process(body(sim))
        sim.run()
        switches = tracer.events(label="mode_switch")
        assert len(switches) == 1
        assert switches[0].data["to"] == "SERVER_REPLY"
        assert client.mode is Mode.SERVER_REPLY
        assert tracer.events(label="reply_pushed")

    def test_untraced_run_records_nothing(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        server = RfpServer(
            sim, cluster, cluster.server, lambda p, c: (p, 0.1), threads=2
        )
        client = RfpClient(sim, cluster.client_machines[0], server)

        def body(sim):
            yield from client.call(b"x")

        sim.process(body(sim))
        sim.run()  # must simply not crash without a tracer
        assert client.stats.calls.value == 1
