"""Unit tests for measurement instruments."""

import numpy as np
import pytest

from repro.sim import Counter, Tally, ThroughputMeter, UtilizationMeter


class TestCounter:
    def test_increment_and_reset(self):
        counter = Counter("ops")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestTally:
    def test_mean_and_extremes(self):
        tally = Tally()
        for sample in [1.0, 2.0, 3.0, 4.0]:
            tally.record(sample)
        assert tally.mean() == pytest.approx(2.5)
        assert tally.minimum() == 1.0
        assert tally.maximum() == 4.0
        assert tally.count == 4

    def test_percentile_exact(self):
        tally = Tally()
        for sample in range(101):
            tally.record(float(sample))
        assert tally.percentile(50) == pytest.approx(50.0)
        assert tally.percentile(99) == pytest.approx(99.0)

    def test_empty_tally_raises(self):
        with pytest.raises(ValueError):
            Tally().mean()
        with pytest.raises(ValueError):
            Tally().percentile(50)
        with pytest.raises(ValueError):
            Tally().minimum()
        with pytest.raises(ValueError):
            Tally().maximum()

    def test_empty_tally_default_readout(self):
        # Reporting code that must survive idle instruments (an unloaded
        # cluster shard) passes an explicit default instead of crashing.
        tally = Tally("idle")
        assert np.isnan(tally.mean(default=float("nan")))
        assert np.isnan(tally.percentile(99, default=float("nan")))
        assert tally.minimum(default=0.0) == 0.0
        assert tally.maximum(default=-1.0) == -1.0

    def test_default_ignored_when_samples_exist(self):
        tally = Tally()
        tally.record(7.0)
        assert tally.mean(default=float("nan")) == pytest.approx(7.0)
        assert tally.percentile(50, default=0.0) == pytest.approx(7.0)

    def test_cdf_monotone_and_normalized(self):
        tally = Tally()
        rng = np.random.default_rng(1)
        for sample in rng.exponential(5.0, size=500):
            tally.record(float(sample))
        values, probs = tally.cdf(points=50)
        assert len(values) == 50
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_histogram(self):
        tally = Tally()
        for sample in [0.5, 1.5, 1.6, 2.5]:
            tally.record(sample)
        counts = tally.histogram([0, 1, 2, 3])
        assert list(counts) == [1, 2, 1]


class TestThroughputMeter:
    def test_ignores_warmup_completions(self):
        meter = ThroughputMeter(window_start=100.0, window_end=200.0)
        meter.record(50.0)
        meter.record(150.0)
        meter.record(250.0)
        assert meter.completions == 1

    def test_mops_over_window(self):
        meter = ThroughputMeter(window_start=0.0, window_end=100.0)
        for at in np.linspace(1, 100, 200):
            meter.record(float(at))
        assert meter.mops() == pytest.approx(2.0)

    def test_open_window_uses_last_completion(self):
        meter = ThroughputMeter(window_start=0.0)
        meter.record(10.0)
        meter.record(20.0)
        assert meter.mops() == pytest.approx(2 / 20.0)

    def test_empty_meter_reports_zero(self):
        assert ThroughputMeter().mops() == 0.0


class TestUtilizationMeter:
    def test_busy_integration(self):
        meter = UtilizationMeter("cpu")
        meter.begin_busy(0.0)
        meter.end_busy(30.0)
        meter.begin_busy(50.0)
        meter.end_busy(70.0)
        assert meter.utilization(100.0) == pytest.approx(0.5)

    def test_add_busy_direct(self):
        meter = UtilizationMeter()
        meter.add_busy(25.0)
        assert meter.utilization(100.0) == pytest.approx(0.25)

    def test_mismatched_begin_end_rejected(self):
        meter = UtilizationMeter()
        with pytest.raises(ValueError):
            meter.end_busy(1.0)
        meter.begin_busy(0.0)
        with pytest.raises(ValueError):
            meter.begin_busy(2.0)

    def test_utilization_capped_at_one(self):
        meter = UtilizationMeter()
        meter.add_busy(500.0)
        assert meter.utilization(100.0) == 1.0


class TestRandomStreams:
    def test_same_name_same_stream(self):
        from repro.sim import RandomStreams

        streams = RandomStreams(seed=3)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        from repro.sim import RandomStreams

        first = RandomStreams(seed=3).stream("keys").integers(0, 1000, size=10)
        second = RandomStreams(seed=3).stream("keys").integers(0, 1000, size=10)
        assert list(first) == list(second)

    def test_distinct_names_distinct_draws(self):
        from repro.sim import RandomStreams

        streams = RandomStreams(seed=3)
        a = streams.stream("a").integers(0, 2**31, size=8)
        b = streams.stream("b").integers(0, 2**31, size=8)
        assert list(a) != list(b)

    def test_fork_independent(self):
        from repro.sim import RandomStreams

        base = RandomStreams(seed=3)
        fork = base.fork(1)
        a = base.stream("x").integers(0, 2**31, size=8)
        b = fork.stream("x").integers(0, 2**31, size=8)
        assert list(a) != list(b)
