"""Runtime half of the atomic-section contract (`repro.sim.atomic`)."""

import pytest

from repro.sim import (
    SimulationError,
    Simulator,
    atomic_guard_enabled,
    atomic_section,
    current_atomic_section,
    enable_atomic_guard,
    is_atomic_section,
)


@pytest.fixture
def guard():
    """Enable the runtime guard for one test, always restoring it."""
    enable_atomic_guard(True)
    yield
    enable_atomic_guard(False)


class TestDecorator:
    def test_marks_the_wrapper(self):
        @atomic_section
        def surgery():
            return 42

        assert is_atomic_section(surgery)
        assert surgery() == 42

    def test_plain_function_is_not_marked(self):
        def f():
            return 1

        assert not is_atomic_section(f)

    def test_generator_function_raises_at_decoration(self):
        with pytest.raises(SimulationError, match="generator function"):

            @atomic_section
            def bad(sim):
                yield sim.timeout(1.0)

    def test_bound_method_identity_survives_for_unsubscribe(self):
        # Membership.unsubscribe relies on list.remove over bound
        # methods: two bound-method objects of the same wrapper must
        # compare equal, or detach would silently leak the listener.
        class Listener:
            @atomic_section
            def on_change(self, node, status):
                return None

        listener = Listener()
        registry = [listener.on_change]
        registry.remove(listener.on_change)
        assert registry == []


class TestGuard:
    def test_flag_roundtrip(self):
        assert not atomic_guard_enabled()
        enable_atomic_guard(True)
        try:
            assert atomic_guard_enabled()
        finally:
            enable_atomic_guard(False)
        assert not atomic_guard_enabled()

    def test_stack_tracks_sections_only_while_enabled(self, guard):
        seen = []

        @atomic_section
        def surgery():
            seen.append(current_atomic_section())

        surgery()
        assert len(seen) == 1 and seen[0].endswith("surgery")
        assert current_atomic_section() == ""

    def test_disabled_guard_pushes_nothing(self):
        @atomic_section
        def surgery():
            return current_atomic_section()

        assert surgery() == ""

    def test_returned_generator_is_rejected(self, guard):
        def sneaky_gen():
            yield None

        @atomic_section
        def launders():
            return sneaky_gen()

        with pytest.raises(SimulationError, match="returned a generator"):
            launders()

    def test_returned_generator_allowed_with_guard_off(self):
        # Off by default: hot paths pay only a flag check, no inspection.
        def sneaky_gen():
            yield None

        @atomic_section
        def launders():
            return sneaky_gen()

        assert launders() is not None

    def test_stack_unwinds_after_an_exception(self, guard):
        @atomic_section
        def explodes():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            explodes()
        assert current_atomic_section() == ""

    def test_process_step_inside_atomic_section_refused(self, guard):
        # A re-entrant sim.run() from inside an atomic region would pass
        # simulated time mid-surgery; the engine must refuse to step.
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc(), name="proc")

        @atomic_section
        def sneaky():
            sim.run(until=10.0)

        with pytest.raises(SimulationError, match="stepped inside atomic section"):
            sneaky()

    def test_process_step_allowed_outside_sections(self, guard):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(1.0)
            done.append(sim.now)

        sim.process(proc(), name="proc")
        sim.run(until=10.0)
        assert done == [1.0]
