"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(9.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_timestamp_is_fifo():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.schedule(3.0, seen.append, tag)
    sim.run()
    assert seen == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "early")
    sim.schedule(20.0, seen.append, "late")
    sim.run(until=10.0)
    assert seen == ["early"]
    assert sim.peek() == 20.0
    sim.run()
    assert seen == ["early", "late"]


def test_timeout_process_roundtrip():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(3.5)
        return sim.now

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == 3.5


def test_process_return_value_none_by_default():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value is None


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)


def test_event_trigger_value_passed_to_waiter():
    sim = Simulator()
    event = sim.event()

    def waiter(sim):
        value = yield event
        return value

    proc = sim.process(waiter(sim))
    sim.schedule(4.0, event.trigger, "payload")
    sim.run()
    assert proc.value == "payload"


def test_wait_on_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.trigger(42)

    def waiter(sim):
        value = yield event
        return value

    proc = sim.process(waiter(sim))
    sim.run()
    assert proc.value == 42


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_process_join_returns_child_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return "done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (result, sim.now)

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == ("done", 2.0)


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as error:
            return str(error)

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == "boom"


def test_unjoined_failure_raises_at_run():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.process(child(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def body(sim):
        yield "not a waitable"

    sim.process(body(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_number_is_a_timeout():
    # ``yield <float>`` (ints accepted too) is the delay fast path.
    sim = Simulator()
    seen = {}

    def body(sim):
        yield 2.5
        seen["float_at"] = sim.now
        yield 3
        seen["int_at"] = sim.now
        yield 0.0
        seen["zero_at"] = sim.now

    sim.process(body(sim))
    sim.run()
    assert seen == {"float_at": 2.5, "int_at": 5.5, "zero_at": 5.5}


def test_yielding_negative_delay_fails_process():
    sim = Simulator()

    def body(sim):
        yield -1.0

    sim.process(body(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_anyof_returns_first_completion():
    sim = Simulator()
    first = sim.timeout(5.0, "slow")
    second = sim.timeout(2.0, "fast")

    def body(sim):
        index, value = yield AnyOf(sim, [first, second])
        return (index, value, sim.now)

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == (1, "fast", 2.0)


def test_anyof_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_allof_collects_in_input_order():
    sim = Simulator()
    events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]

    def body(sim):
        values = yield AllOf(sim, events)
        return (values, sim.now)

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == (["c", "a", "b"], 3.0)


def test_allof_empty_triggers_immediately():
    sim = Simulator()

    def body(sim):
        values = yield AllOf(sim, [])
        return values

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == []


def test_anyof_late_failure_is_defused():
    sim = Simulator()
    ok = sim.timeout(1.0, "ok")
    failing = sim.event()

    def fail_later():
        failing.fail(ValueError("late"))

    sim.schedule(2.0, fail_later)

    def body(sim):
        index, value = yield AnyOf(sim, [ok, failing])
        yield sim.timeout(5.0)
        return (index, value)

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == (0, "ok")


def test_nested_processes_compose():
    sim = Simulator()

    def leaf(sim, delay):
        yield sim.timeout(delay)
        return delay

    def mid(sim):
        total = 0.0
        for delay in (1.0, 2.0):
            total += yield sim.process(leaf(sim, delay))
        return total

    def root(sim):
        value = yield sim.process(mid(sim))
        return value * 2

    proc = sim.process(root(sim))
    sim.run()
    assert proc.value == 6.0
    assert sim.now == 3.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def body(sim):
        sim.run()
        yield sim.timeout(1.0)

    sim.process(body(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_many_processes_deterministic():
    def run_once():
        sim = Simulator()
        log = []

        def body(sim, tag, delay):
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        for tag in range(50):
            sim.process(body(sim, tag, (tag * 7) % 13 + 0.5))
        sim.run()
        return log

    assert run_once() == run_once()
