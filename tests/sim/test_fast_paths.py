"""Fast-engine machinery: ready deque, merge rule, no-heap-growth paths.

These tests pin the *mechanisms* the speed work relies on — which queue
each operation rides, and that the fast engine's dispatch order and
count are bit-for-bit those of ``Simulator(reference=True)``.  Semantic
coverage of events/processes lives in ``test_core.py``; this file is
allowed to peek at private engine state (``_heap``/``_ready``) because
queue placement *is* the contract under test.
"""

import pytest

from repro.sim.core import AllOf, Event, Process, Simulator, Timeout


def run_both(make_scenario):
    """Run one scenario under both engines; return (trace, trace, sims)."""
    traces = []
    sims = []
    for reference in (False, True):
        sim = Simulator(reference=reference)
        trace = []
        make_scenario(sim, trace)
        sim.run()
        traces.append(trace)
        sims.append(sim)
    return traces[0], traces[1], sims


# ----------------------------------------------------------------------
# Queue placement: what rides the ready deque, what rides the heap
# ----------------------------------------------------------------------


class TestQueuePlacement:
    def test_zero_delay_schedule_skips_heap(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        assert len(sim._heap) == 0
        assert len(sim._ready) == 1

    def test_positive_delay_schedule_uses_heap(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert len(sim._heap) == 1
        assert len(sim._ready) == 0

    def test_wait_on_done_event_skips_heap(self):
        sim = Simulator()
        done = Event(sim).trigger(7)
        done.wait(lambda event: None)
        assert len(sim._heap) == 0
        assert len(sim._ready) == 1

    def test_empty_allof_skips_heap(self):
        sim = Simulator()
        AllOf(sim, [])
        assert len(sim._heap) == 0
        assert len(sim._ready) == 1

    def test_trigger_waiters_skip_heap(self):
        sim = Simulator()
        event = Event(sim)
        event.wait(lambda e: None)
        event.wait(lambda e: None)
        event.trigger()
        assert len(sim._heap) == 0
        assert len(sim._ready) == 2

    def test_zero_delay_timeout_skips_heap(self):
        sim = Simulator()
        sim.timeout(0.0)
        assert len(sim._heap) == 0
        assert len(sim._ready) == 1

    def test_positive_timeout_is_one_heap_entry(self):
        sim = Simulator()
        timeout = sim.timeout(2.0)
        assert isinstance(timeout, Timeout)
        assert len(sim._heap) == 1
        assert len(sim._ready) == 0

    def test_yield_zero_delay_skips_heap(self):
        sim = Simulator()
        steps = []

        def proc():
            steps.append("before")
            yield 0.0
            steps.append("after")
            assert len(sim._heap) == 0

        sim.process(proc())
        sim.run()
        assert steps == ["before", "after"]

    def test_reference_mode_routes_everything_through_heap(self):
        sim = Simulator(reference=True)
        sim.schedule(0.0, lambda: None)
        Event(sim).trigger().wait(lambda e: None)
        timeout = sim.timeout(1.0)
        assert not isinstance(timeout, Timeout)
        assert len(sim._ready) == 0
        assert len(sim._heap) == 3


# ----------------------------------------------------------------------
# The (time, seq) merge rule
# ----------------------------------------------------------------------


class TestMergeRule:
    def test_due_heap_entry_with_smaller_seq_preempts_ready(self):
        # Arm a heap timer for t=1 (seq 1), then at t=1 have a callback
        # append ready work (seq 3).  A second heap timer armed at t=1
        # *before* the ready append (seq 2) must dispatch between them.
        def scenario(sim, trace):
            sim.schedule(1.0, lambda: trace.append("first"))  # seq 1
            sim.schedule(1.0, lambda: trace.append("armed-early"))  # seq 2

            # Rebind: "first" also enqueues zero-delay work (seq 3+).
            def first_fires():
                trace.append("first")
                sim.schedule(0.0, lambda: trace.append("ready-late"))

            sim._heap[0] = (1.0, 1, first_fires, ())

        fast, reference, (sim_fast, sim_ref) = run_both(scenario)
        assert fast == ["first", "armed-early", "ready-late"]
        assert fast == reference
        assert sim_fast.dispatched == sim_ref.dispatched

    def test_ready_fifo_order_is_stable(self):
        def scenario(sim, trace):
            for index in range(5):
                sim.schedule(0.0, trace.append, index)

        fast, reference, _ = run_both(scenario)
        assert fast == [0, 1, 2, 3, 4]
        assert fast == reference

    def test_peek_with_pending_ready_work_is_now(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.peek() is None
        sim.schedule(0.0, lambda: None)
        assert sim.peek() == sim.now == 3.0

    def test_peek_heap_only_reports_deadline(self):
        sim = Simulator()
        sim.schedule(4.5, lambda: None)
        assert sim.peek() == 4.5


# ----------------------------------------------------------------------
# Engine equivalence on a mixed workload
# ----------------------------------------------------------------------


def _mixed_scenario(sim, trace):
    """Timers, zero delays, events, processes, direct delays — entwined."""
    gate = Event(sim)

    def worker(worker_id, delay):
        yield sim.timeout(delay)
        trace.append(("woke", worker_id, sim.now))
        yield 0.0
        trace.append(("stepped", worker_id, sim.now))
        value = yield gate
        trace.append(("gated", worker_id, value, sim.now))
        return worker_id

    def opener():
        yield 1.5
        gate.trigger("open")
        trace.append(("opened", sim.now))

    workers = [sim.process(worker(i, 0.5 + 0.5 * (i % 3))) for i in range(6)]

    def joiner():
        results = yield AllOf(sim, workers)
        trace.append(("joined", tuple(results), sim.now))

    sim.process(opener())
    sim.process(joiner())


class TestEngineEquivalence:
    def test_dispatch_order_and_count_match_reference(self):
        fast, reference, (sim_fast, sim_ref) = run_both(_mixed_scenario)
        assert fast == reference
        assert sim_fast.dispatched == sim_ref.dispatched > 0
        assert sim_fast.now == sim_ref.now

    def test_direct_delay_matches_reference(self):
        def scenario(sim, trace):
            def proc(delays):
                for delay in delays:
                    yield delay
                    trace.append(round(sim.now, 6))

            sim.process(proc([0.5, 0, 1.5, 0.0, 2]))
            sim.process(proc([1.0, 1.0]))

        fast, reference, (sim_fast, sim_ref) = run_both(scenario)
        assert fast == reference
        assert sim_fast.dispatched == sim_ref.dispatched

    def test_direct_delay_failure_matches_reference(self):
        def scenario(sim, trace):
            def proc():
                try:
                    yield -0.5
                except Exception as exc:  # noqa: BLE001 - recording type
                    trace.append(type(exc).__name__)
                    raise

            process = sim.process(proc())
            process.done.wait(lambda event: trace.append(event.ok))

        fast, reference, _ = run_both(scenario)
        assert fast == reference == ["SimulationError", False]


# ----------------------------------------------------------------------
# Timeout fast-path semantics
# ----------------------------------------------------------------------


class TestTimeoutSemantics:
    def test_manual_trigger_then_fire_raises(self):
        sim = Simulator()
        timeout = sim.timeout(1.0)
        timeout.trigger("early")
        with pytest.raises(Exception, match="triggered twice"):
            sim.run()

    def test_multiple_waiters_resume_in_wait_order(self):
        sim = Simulator()
        timeout = sim.timeout(1.0, value="v")
        order = []
        timeout.wait(lambda e: order.append(("a", e.value)))
        timeout.wait(lambda e: order.append(("b", e.value)))
        timeout.wait(lambda e: order.append(("c", e.value)))
        sim.run()
        assert order == [("a", "v"), ("b", "v"), ("c", "v")]

    def test_wait_after_fire_resumes_via_ready(self):
        sim = Simulator()
        timeout = sim.timeout(1.0)
        sim.run()
        assert timeout.triggered
        timeout.wait(lambda e: None)
        assert len(sim._heap) == 0
        assert len(sim._ready) == 1
